"""The concurrent serving front door.

:class:`ServingFrontend` turns the library into a service: many client
threads submit SQL concurrently, a bounded admission queue absorbs
bursts, per-tenant token buckets meter cost, and an
:class:`~repro.serving.overload.OverloadController` sheds *accuracy*
(by shrinking the resilience ladder's entry rung fleet-wide) before it
sheds *work*. The pipeline per query:

1. **admission** (caller thread): estimate the query's cost from the
   catalog (full-scan bound), charge the tenant's token bucket, and
   reserve a queue slot — either step can fail with a typed
   :class:`~repro.core.exceptions.QueryRejected` (``reason="budget"`` /
   ``"overload"``) *before any work happens*;
2. **queueing**: entries are ordered by (priority class, seeded
   tie-break, sequence) — interactive beats batch, ties broken by a
   splitmix64 draw keyed on the query id so two runs of the same
   workload drain in the same order regardless of submission jitter;
3. **service** (worker thread): a query that waited past the configured
   ``queue_deadline_s`` is rejected typed (``reason="queue_deadline"``)
   instead of running doomed; otherwise it runs through the
   :class:`~repro.resilience.ladder.ResilientEngine` under the ambient
   deadline/budget scope (which also reaches scatter-gather shards) and
   inside a :func:`~repro.resilience.faults.query_scope`, so fault
   injection and retry jitter stay deterministic per query no matter
   the interleaving;
4. **settlement**: the admission charge is reconciled against the
   measured :class:`~repro.engine.executor.ExecutionStats` actuals, and
   the query's fate (deadline miss? refusal?) feeds the overload
   controller's sliding window.

Every submitted query therefore ends in exactly one of: an answer
(possibly from a shed rung, with ``shed_to`` provenance), a typed
:class:`~repro.core.exceptions.QueryRefused`, or a typed
:class:`QueryRejected` — the invariant the concurrent chaos suite
sweeps. With no overload, no budgets, and no faults, the frontend is a
pass-through: answers are bitwise-identical to the unwrapped
:class:`~repro.engine.database.Database` path.
"""

from __future__ import annotations

import threading
import time
import zlib
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional

from ..core.exceptions import QueryRejected, QueryRefused, ReproError
from ..core.options import QueryOptions, resolve_options
from ..engine.database import Database
from ..obs.metrics import get_metrics
from ..obs.trace import span
from ..resilience.deadline import Deadline, deadline_scope
from ..resilience.faults import query_scope, splitmix64
from ..resilience.ladder import ResilientEngine
from ..storage.cost import scan_cost
from .budgets import TenantBudgets
from .overload import OverloadController

__all__ = ["ServingFrontend", "QueryTicket", "PRIORITY_CLASSES"]

#: priority classes in service order (lower value served first)
PRIORITY_CLASSES: Dict[str, int] = {"interactive": 0, "batch": 1}


class QueryTicket:
    """Handle for one submitted query; fulfilled by a worker thread."""

    def __init__(
        self, query_id: int, tenant: str, priority: str, query: str
    ) -> None:
        self.query_id = query_id
        self.tenant = tenant
        self.priority = priority
        self.query = query
        #: seconds spent in the admission queue (set at dequeue)
        self.queue_wait: Optional[float] = None
        #: entry rung the overload controller imposed, if any
        self.shed_to: Optional[str] = None
        #: "ok" | "refused" | "rejected" once done
        self.outcome: Optional[str] = None
        self._result: object = None
        self._error: Optional[BaseException] = None
        self._done = threading.Event()

    # ------------------------------------------------------------------
    def _fulfill(self, result: object) -> None:
        self._result = result
        self.outcome = "ok"
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        if isinstance(error, QueryRejected):
            self.outcome = "rejected"
        elif isinstance(error, QueryRefused):
            self.outcome = "refused"
        else:
            self.outcome = "refused"  # typed ReproError ~= refusal
        self._done.set()

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query {self.query_id} not finished within {timeout}s"
            )
        return self._error

    def result(self, timeout: Optional[float] = None):
        """Block for the answer; re-raises typed refusals/rejections."""
        error = self.exception(timeout)
        if error is not None:
            raise error
        return self._result


class _QueueEntry:
    """One queued query plus everything its service needs."""

    __slots__ = (
        "ticket",
        "sort_key",
        "enqueued_at",
        "estimate",
        "options",
        "no_shed",
    )

    def __init__(self, ticket: QueryTicket, sort_key: tuple) -> None:
        self.ticket = ticket
        self.sort_key = sort_key

    def __lt__(self, other: "_QueueEntry") -> bool:
        return self.sort_key < other.sort_key


class ServingFrontend:
    """Thread-safe admission-controlled serving over a Database.

    Parameters
    ----------
    database:
        The :class:`Database` to serve (wrapped in a
        :class:`ResilientEngine` unless ``engine`` is given).
    engine:
        A prebuilt :class:`ResilientEngine` (custom retry/breaker
        policy) to serve through instead.
    workers:
        Service threads draining the admission queue.
    max_queue:
        Bound on queued (admitted, not yet running) queries; submissions
        beyond it are rejected typed with ``reason="overload"``.
    queue_deadline_s:
        If set, a query that *waited* longer than this is rejected at
        dequeue (``reason="queue_deadline"``) instead of running: under
        sustained overload the queue sheds its tail deterministically
        rather than serving every query late.
    budgets:
        Per-tenant :class:`TenantBudgets`; defaults to unlimited.
    controller:
        The :class:`OverloadController`; defaults to one sized to
        ``max_queue``. Pass ``None`` explicitly configured controllers
        for different thresholds.
    default_deadline_s:
        Per-query execution deadline applied when the caller does not
        pass one.
    seed:
        Seed for queue tie-breaking and derived query ids.
    clock:
        Time source for queue waits and bucket refills (tests inject a
        manual clock).
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        engine: Optional[ResilientEngine] = None,
        workers: int = 4,
        max_queue: int = 64,
        queue_deadline_s: Optional[float] = None,
        budgets: Optional[TenantBudgets] = None,
        controller: Optional[OverloadController] = None,
        default_deadline_s: Optional[float] = None,
        warn_on_degrade: bool = False,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if database is None and engine is None:
            raise ValueError("pass a database or a prebuilt engine")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.engine = engine or ResilientEngine(
            database, warn_on_degrade=warn_on_degrade
        )
        self.database: Database = self.engine.database
        self.workers = workers
        self.max_queue = max_queue
        self.queue_deadline_s = queue_deadline_s
        self.budgets = budgets or TenantBudgets(clock=clock)
        self.controller = controller or OverloadController(max_queue)
        self.default_deadline_s = default_deadline_s
        self.seed = seed
        self.clock = clock

        self._queue: List[_QueueEntry] = []
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._seq = 0
        self._in_flight = 0
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work and join the workers.

        Queued-but-unserved queries are rejected typed so no ticket is
        left hanging.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            doomed = list(self._queue)
            self._queue.clear()
            self._work_ready.notify_all()
            self._idle.notify_all()
        for entry in doomed:
            entry.ticket._fail(
                QueryRejected(
                    "serving frontend closed before this query ran",
                    reason="overload",
                    tenant=entry.ticket.tenant,
                )
            )
        for thread in self._threads:
            thread.join(timeout=timeout)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and nothing is in flight."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._queue or self._in_flight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(timeout=remaining)
        return True

    # ------------------------------------------------------------------
    # Admission (caller thread)
    # ------------------------------------------------------------------
    def estimate_cost(self, query: str) -> float:
        """A-priori cost estimate: the full-scan bound over the query's
        tables, in simulated cost units.

        Deliberately the *exact* plan's scan cost, not the approximate
        one: admission meters what the query could cost if every
        approximation fell through, and reconciliation refunds the
        difference afterwards. Unparseable queries estimate 0 (they will
        fail typed at execution; admission is not the SQL front-end).
        """
        from ..sql.binder import bind_sql

        try:
            bound = bind_sql(query, self.database)
        except ReproError:
            return 0.0
        total = 0.0
        for bt in bound.tables:
            table = self.database.table(bt.name)
            total += scan_cost(
                table.num_blocks, table.num_rows, self.database.cost_params
            ).total
        return total

    def submit(
        self,
        query: str,
        options: Optional[QueryOptions] = None,
        query_id: Optional[int] = None,
        no_shed: bool = False,
        **kwargs,
    ) -> QueryTicket:
        """Admit one query; returns a :class:`QueryTicket` immediately.

        ``options`` is a :class:`~repro.core.options.QueryOptions`
        (tenant and priority live there now); legacy per-field keywords
        (``tenant=...``, ``spec=...``) still work via the deprecation
        shim. *Unknown* keywords raise :class:`TypeError` right here in
        the caller's thread — never as a late ticket exception inside a
        worker.

        Raises :class:`QueryRejected` *synchronously* when the tenant's
        budget has no room (``reason="budget"``) or the admission queue
        is full (``reason="overload"``) — rejection costs nothing, which
        is the point. ``no_shed=True`` exempts this query from the
        overload controller's entry-rung override (operator escape
        hatch; it still pays admission).
        """
        options = resolve_options(
            options, kwargs, entry="ServingFrontend.submit()"
        )
        tenant, priority = options.tenant, options.priority
        if priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority {priority!r} "
                f"(expected one of {sorted(PRIORITY_CLASSES)})"
            )
        metrics = get_metrics()
        with self._lock:
            if self._closed:
                raise QueryRejected(
                    "serving frontend is closed", reason="overload",
                    tenant=tenant,
                )
            seq = self._seq
            self._seq += 1
        if query_id is None:
            query_id = splitmix64(self.seed, zlib.crc32(tenant.encode()), seq)
        ticket = QueryTicket(query_id, tenant, priority, query)
        with span(
            "admission", tenant=tenant, priority=priority, outcome="pending"
        ) as asp:
            estimate = self.estimate_cost(query)
            if not self.budgets.admit(tenant, estimate):
                asp.set(outcome="rejected:budget")
                metrics.inc(
                    "queries_rejected_total", reason="budget", tenant=tenant
                )
                raise QueryRejected(
                    f"tenant {tenant!r} budget cannot cover estimated cost "
                    f"{estimate:.1f} (available "
                    f"{self.budgets.available(tenant):.1f})",
                    reason="budget",
                    tenant=tenant,
                )
            entry = _QueueEntry(
                ticket,
                sort_key=(
                    PRIORITY_CLASSES[priority],
                    splitmix64(self.seed, query_id),
                    seq,
                ),
            )
            entry.enqueued_at = self.clock()
            entry.estimate = estimate
            entry.options = options
            entry.no_shed = no_shed
            with self._lock:
                if self._closed or len(self._queue) >= self.max_queue:
                    depth = len(self._queue)
                    overloaded = True
                else:
                    heappush(self._queue, entry)
                    depth = len(self._queue)
                    overloaded = False
                    self._work_ready.notify()
            if overloaded:
                # Give the admission charge back: the query never ran.
                self.budgets.reconcile(tenant, estimate, 0.0)
                self.controller.note_queue_depth(depth)
                asp.set(outcome="rejected:overload", queue_depth=depth)
                metrics.inc(
                    "queries_rejected_total", reason="overload", tenant=tenant
                )
                raise QueryRejected(
                    f"admission queue full ({depth}/{self.max_queue})",
                    reason="overload",
                    tenant=tenant,
                )
            self.controller.note_queue_depth(depth)
            asp.set(outcome="enqueued", queue_depth=depth)
            metrics.inc(
                "queries_admitted_total", tenant=tenant, priority=priority
            )
        return ticket

    def sql(
        self,
        query: str,
        options: Optional[QueryOptions] = None,
        timeout: Optional[float] = None,
        **kwargs,
    ):
        """Blocking convenience: submit + wait for the answer.

        Unknown keywords raise :class:`TypeError` here, at submit time
        in the caller's thread — not as a late ticket exception.
        """
        options = resolve_options(
            options, kwargs, entry="ServingFrontend.sql()"
        )
        return self.submit(query, options=options).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Service (worker threads)
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._work_ready.wait()
                if self._closed and not self._queue:
                    return
                entry = heappop(self._queue)
                self._in_flight += 1
                depth = len(self._queue)
            self.controller.note_queue_depth(depth)
            try:
                self._serve(entry)
            finally:
                with self._lock:
                    self._in_flight -= 1
                    self._idle.notify_all()

    def _serve(self, entry: _QueueEntry) -> None:
        metrics = get_metrics()
        ticket = entry.ticket
        wait = max(self.clock() - entry.enqueued_at, 0.0)
        ticket.queue_wait = wait
        metrics.observe(
            "admission_wait_seconds", wait, tenant=ticket.tenant
        )
        if self.queue_deadline_s is not None and wait > self.queue_deadline_s:
            # Waited too long already: running now would only miss its
            # deadline and push everyone behind it later. Shed typed.
            self.budgets.reconcile(ticket.tenant, entry.estimate, 0.0)
            self.controller.record_outcome(deadline_missed=True)
            metrics.inc(
                "queries_rejected_total",
                reason="queue_deadline",
                tenant=ticket.tenant,
            )
            ticket._fail(
                QueryRejected(
                    f"queued {wait:.3f}s, past the queue deadline "
                    f"{self.queue_deadline_s:.3f}s",
                    reason="queue_deadline",
                    tenant=ticket.tenant,
                )
            )
            return
        entry_rung = None if entry.no_shed else self.controller.entry_rung()
        ticket.shed_to = entry_rung
        options = entry.options
        deadline = options.deadline
        if deadline is None and self.default_deadline_s is not None:
            deadline = Deadline(self.default_deadline_s, clock=self.clock)
        options = options.replace(deadline=deadline, entry_rung=entry_rung)
        result = None
        error: Optional[BaseException] = None
        try:
            with query_scope(ticket.query_id):
                with deadline_scope(deadline, options.budget):
                    result = self.engine.sql(ticket.query, options=options)
        except ReproError as exc:
            error = exc
        except Exception as exc:  # noqa: BLE001 — never hang a ticket
            error = exc
        # Settlement: measured actuals replace the a-priori estimate.
        if result is not None:
            actual = result.stats.simulated_cost(
                self.database.cost_params
            ).total
            self.budgets.reconcile(ticket.tenant, entry.estimate, actual)
        missed = bool(
            (deadline is not None and deadline.expired)
            or isinstance(error, QueryRefused)
        )
        self.controller.record_outcome(deadline_missed=missed)
        if error is not None:
            ticket._fail(error)
        else:
            ticket._fulfill(result)

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, object]:
        """Serving-layer health: queue, shed level, budgets."""
        with self._lock:
            depth = len(self._queue)
            in_flight = self._in_flight
        return {
            "queue_depth": depth,
            "queue_capacity": self.max_queue,
            "in_flight": in_flight,
            "shed_level": self.controller.level,
            "miss_rate": round(self.controller.miss_rate(), 4),
            "budgets": self.budgets.snapshot(),
        }
