"""Concurrent serving front-end: admission, budgets, overload shedding.

The serving layer answers the operational question the degradation
ladder alone cannot: what happens when *many* queries arrive at once?
:class:`ServingFrontend` bounds concurrency with an admission queue,
meters tenants with token-bucket cost budgets, and under overload
shrinks the ladder's entry rung fleet-wide — trading accuracy for
availability before dropping any work (DESIGN.md §2.14).
"""

from .budgets import TenantBudgets, TokenBucket
from .frontend import PRIORITY_CLASSES, QueryTicket, ServingFrontend
from .overload import OverloadController

__all__ = [
    "ServingFrontend",
    "QueryTicket",
    "PRIORITY_CLASSES",
    "TenantBudgets",
    "TokenBucket",
    "OverloadController",
]
