"""Adaptive overload control: shed accuracy, not queries.

The paper's contract is accuracy-for-resources; under overload a system
that honors it should *spend the accuracy budget first* and drop work
only at the very front door. This controller implements that policy as
a small, deterministic state machine over two pressure signals:

* **queue pressure** — admission-queue depth as a fraction of capacity,
  reported by the frontend on every enqueue/dequeue;
* **deadline-miss rate** — the fraction of recently served queries that
  blew their deadline or were refused, over a fixed sliding window.

The output is a **shed level** 0–3 mapping onto the resilience ladder's
entry rung:

====== =====================  =============================================
level  entry rung             meaning
====== =====================  =============================================
0      requested              normal serving, ladder unchanged
1      stale_synopsis         skip fresh-synopsis work, widen bars instead
2      cheaper_technique      skip synopsis rungs, sample at query time
3      partial_ola            serve whatever snapshot fits the deadline
====== =====================  =============================================

Stepping **up** is immediate (one level per evaluation) whenever either
signal crosses its threshold; stepping **down** requires
``recovery_patience`` consecutive calm evaluations (hysteresis, so the
level does not flap around the threshold). Every decision is a pure
function of the observation sequence — no wall clock, no RNG — which
keeps overload tests deterministic.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Optional

from ..obs.metrics import get_metrics
from ..resilience.ladder import LADDER_RUNGS

__all__ = ["OverloadController"]

#: shed level -> ladder entry rung (level 0 = no override)
SHED_RUNGS = LADDER_RUNGS[:4]


class OverloadController:
    """Maps queue pressure + deadline misses to a ladder entry rung."""

    def __init__(
        self,
        queue_capacity: int,
        shed_up_at: float = 0.75,
        shed_down_at: float = 0.25,
        miss_rate_threshold: float = 0.25,
        window: int = 32,
        recovery_patience: int = 8,
        max_level: int = 3,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if not (0.0 <= shed_down_at <= shed_up_at <= 1.0):
            raise ValueError("need 0 <= shed_down_at <= shed_up_at <= 1")
        if not (0 <= max_level < len(SHED_RUNGS)):
            raise ValueError(f"max_level must be in [0, {len(SHED_RUNGS) - 1}]")
        self.queue_capacity = queue_capacity
        self.shed_up_at = shed_up_at
        self.shed_down_at = shed_down_at
        self.miss_rate_threshold = miss_rate_threshold
        self.max_level = max_level
        self.recovery_patience = recovery_patience
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._level = 0
        self._calm_streak = 0
        self._depth = 0
        self._lock = threading.Lock()
        #: lifetime decision counters (reports/tests)
        self.steps_up = 0
        self.steps_down = 0

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    def entry_rung(self) -> Optional[str]:
        """The ladder entry-rung override for the next admitted query.

        ``None`` at level 0: the ladder must run exactly as if no
        controller existed, which is what keeps no-overload serving
        bitwise-identical to the unwrapped engine.
        """
        with self._lock:
            return None if self._level == 0 else SHED_RUNGS[self._level]

    def miss_rate(self) -> float:
        with self._lock:
            return self._miss_rate_locked()

    def _miss_rate_locked(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    # ------------------------------------------------------------------
    def note_queue_depth(self, depth: int) -> None:
        """Report the admission queue's depth (called on enqueue/dequeue)."""
        with self._lock:
            self._depth = int(depth)
            self._evaluate_locked()
        get_metrics().set_gauge("serving_queue_depth", depth)

    def record_outcome(self, deadline_missed: bool) -> None:
        """Report one served query's fate into the sliding window."""
        with self._lock:
            self._outcomes.append(bool(deadline_missed))
            self._evaluate_locked()

    # ------------------------------------------------------------------
    def _evaluate_locked(self) -> None:
        pressure = self._depth / self.queue_capacity
        miss_rate = self._miss_rate_locked()
        hot = (
            pressure >= self.shed_up_at
            or miss_rate >= self.miss_rate_threshold
        )
        calm = (
            pressure <= self.shed_down_at
            and miss_rate <= self.miss_rate_threshold / 2.0
        )
        if hot:
            self._calm_streak = 0
            if self._level < self.max_level:
                self._level += 1
                self.steps_up += 1
                self._announce_locked("up")
        elif calm and self._level > 0:
            self._calm_streak += 1
            if self._calm_streak >= self.recovery_patience:
                self._level -= 1
                self._calm_streak = 0
                self.steps_down += 1
                self._announce_locked("down")
        else:
            self._calm_streak = 0

    def _announce_locked(self, direction: str) -> None:
        metrics = get_metrics()
        metrics.set_gauge("serving_shed_level", self._level)
        metrics.inc("shed_level_changes_total", direction=direction)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OverloadController(level={self.level}, "
            f"depth={self._depth}/{self.queue_capacity}, "
            f"miss_rate={self.miss_rate():.2f})"
        )
