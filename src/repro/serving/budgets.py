"""Per-tenant token-bucket cost budgets.

A serving layer in front of a shared engine needs an answer to "who may
spend how much, and when": one tenant's dashboard refresh storm must not
starve everyone else. The classic mechanism is a token bucket per
tenant, denominated here in the engine's own *simulated cost units*
(:mod:`repro.storage.cost`) so the currency is the thing the paper
actually trades — work — rather than a query count:

* admission charges the **optimizer's a-priori estimate** of the query
  (a full-scan bound over the referenced tables: what the query would
  cost if approximation saved nothing);
* completion **reconciles** the charge against the
  :class:`~repro.engine.executor.ExecutionStats` actuals — a query that
  an offline sample answered for 2% of the estimate gets 98% of its
  tokens back, so approximate answers genuinely stretch a tenant's
  budget, exactly the economics AQP promises.

Buckets refill continuously at ``refill_rate`` cost-units/second against
an injectable clock (tests use a
:class:`~repro.resilience.deadline.ManualClock`), and reconciliation may
drive a bucket *negative* (the work already happened; the debt delays
the tenant's next admission instead of pretending the spend away).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["TokenBucket", "TenantBudgets"]


class TokenBucket:
    """A continuously-refilling token bucket (thread-safe).

    Parameters
    ----------
    capacity:
        Maximum tokens the bucket holds (burst allowance), in simulated
        cost units.
    refill_rate:
        Tokens regained per second of ``clock`` time.
    clock:
        Monotonic time source; defaults to ``time.monotonic``.
    initial:
        Starting fill; defaults to a full bucket.
    """

    def __init__(
        self,
        capacity: float,
        refill_rate: float,
        clock: Callable[[], float] = time.monotonic,
        initial: Optional[float] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if refill_rate < 0:
            raise ValueError("refill_rate must be >= 0")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self.clock = clock
        self._tokens = self.capacity if initial is None else float(initial)
        self._last_refill = clock()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _refill_locked(self) -> None:
        now = self.clock()
        elapsed = max(now - self._last_refill, 0.0)
        self._last_refill = now
        if elapsed and self.refill_rate:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_rate
            )

    def available(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens

    def try_charge(self, cost: float) -> bool:
        """Atomically take ``cost`` tokens; False (and no change) if short.

        A charge is admitted when the *whole* estimate fits: partial
        admission would let a large query squeeze in on a sliver of
        budget and push its real cost onto everyone else's latency.
        """
        if cost < 0:
            raise ValueError("cost must be >= 0")
        with self._lock:
            self._refill_locked()
            if self._tokens < cost:
                return False
            self._tokens -= cost
            return True

    def settle(self, delta: float) -> None:
        """Apply a reconciliation: positive gives tokens back, negative
        charges extra. May drive the bucket negative (carried debt);
        credits are capped at capacity."""
        with self._lock:
            self._refill_locked()
            self._tokens = min(self.capacity, self._tokens + float(delta))


class _TenantState:
    __slots__ = ("bucket", "admitted", "rejected", "charged", "refunded")

    def __init__(self, bucket: TokenBucket) -> None:
        self.bucket = bucket
        self.admitted = 0
        self.rejected = 0
        self.charged = 0.0
        self.refunded = 0.0


class TenantBudgets:
    """Registry of per-tenant buckets with charge/reconcile accounting.

    Unknown tenants get a bucket of (``default_capacity``,
    ``default_refill_rate``) on first use; per-tenant overrides are
    registered with :meth:`configure`. ``default_capacity=None`` makes
    unconfigured tenants unlimited (admission always succeeds) — the
    single-user library default, so wrapping a Database in a frontend
    changes nothing until budgets are asked for.
    """

    def __init__(
        self,
        default_capacity: Optional[float] = None,
        default_refill_rate: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.default_capacity = default_capacity
        self.default_refill_rate = default_refill_rate
        self.clock = clock
        self._tenants: Dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def configure(
        self,
        tenant: str,
        capacity: float,
        refill_rate: float = 0.0,
        initial: Optional[float] = None,
    ) -> TokenBucket:
        """Install (or replace) a tenant's bucket."""
        bucket = TokenBucket(
            capacity, refill_rate, clock=self.clock, initial=initial
        )
        with self._lock:
            self._tenants[tenant] = _TenantState(bucket)
        return bucket

    def _state(self, tenant: str) -> Optional[_TenantState]:
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                if self.default_capacity is None:
                    return None  # unlimited tenant
                state = _TenantState(
                    TokenBucket(
                        self.default_capacity,
                        self.default_refill_rate,
                        clock=self.clock,
                    )
                )
                self._tenants[tenant] = state
            return state

    # ------------------------------------------------------------------
    def admit(self, tenant: str, estimate: float) -> bool:
        """Charge the a-priori ``estimate``; False == reject (no change)."""
        state = self._state(tenant)
        if state is None:
            return True
        if state.bucket.try_charge(estimate):
            with self._lock:
                state.admitted += 1
                state.charged += estimate
            return True
        with self._lock:
            state.rejected += 1
        return False

    def reconcile(self, tenant: str, estimate: float, actual: float) -> None:
        """Settle the difference between the admission charge and the
        measured actual cost (refund when approximation under-ran the
        estimate, extra charge when execution overshot it)."""
        state = self._state(tenant)
        if state is None:
            return
        delta = float(estimate) - float(actual)
        state.bucket.settle(delta)
        with self._lock:
            if delta > 0:
                state.refunded += delta
            else:
                state.charged += -delta

    def available(self, tenant: str) -> float:
        state = self._state(tenant)
        return float("inf") if state is None else state.bucket.available()

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant accounting for metrics/benchmark reports."""
        with self._lock:
            tenants = dict(self._tenants)
        return {
            name: {
                "available": state.bucket.available(),
                "capacity": state.bucket.capacity,
                "admitted": state.admitted,
                "rejected": state.rejected,
                "charged": round(state.charged, 4),
                "refunded": round(state.refunded, 4),
            }
            for name, state in sorted(tenants.items())
        }
