"""Result/sample reuse across queries (the IDEA direction).

Interactive exploration sessions fire *related* queries: same FROM/WHERE,
different aggregates or group-bys. Galakatos et al.'s IDEA observed that
the expensive part — producing a weighted sample of the filtered, joined
relation — can be cached and reused: any linear aggregate over the same
relation re-estimates from the cached sample for (almost) free.

:class:`ReuseCache` implements that: the first query against a given
(tables, predicate) signature pays for a Quickr-style sampled execution
and caches the weighted pre-aggregation relation; subsequent queries with
the same signature — regardless of their SELECT list or GROUP BY — are
answered from the cache without touching the base tables. Entries are
invalidated when any underlying table changes size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.errorspec import ErrorSpec
from ..core.exceptions import UnsupportedQueryError
from ..core.result import ApproximateResult
from ..engine.executor import ExecutionStats
from ..engine.table import Table
from ..sql.binder import BoundQuery, bind_sql
from ..storage.cost import aggregation_cost
from .estimation import estimate_groups_row_level, project_output_with_intervals
from .quickr import QuickrPlanner


@dataclass
class CacheEntry:
    """One cached weighted relation."""

    relation: Table
    weights: np.ndarray
    table_versions: Tuple[Tuple[str, int], ...]
    source_technique: str
    hits: int = 0


@dataclass
class CacheStats:
    lookups: int = 0
    hits: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ReuseCache:
    """Sample-reuse layer over the online planners."""

    def __init__(
        self,
        database,
        rate: float = 0.1,
        max_entries: int = 32,
        seed: Optional[int] = None,
    ) -> None:
        self.database = database
        self.rate = rate
        self.max_entries = max_entries
        self.seed = seed
        self._entries: Dict[Tuple, CacheEntry] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def sql(self, query: str, spec: ErrorSpec) -> ApproximateResult:
        bound = bind_sql(query, self.database)
        return self.run(bound, spec)

    def run(self, bound: BoundQuery, spec: ErrorSpec) -> ApproximateResult:
        if not bound.is_aggregate:
            raise UnsupportedQueryError("reuse cache answers aggregates only")
        for agg in bound.aggregates:
            if not agg.is_linear:
                raise UnsupportedQueryError(
                    f"cannot reuse samples for {agg.func.upper()}"
                )
        key = self._signature(bound)
        self.stats.lookups += 1
        entry = self._entries.get(key)
        if entry is not None and not self._is_stale(entry):
            entry.hits += 1
            self.stats.hits += 1
            return self._answer_from_entry(bound, spec, entry)
        if entry is not None:
            self.stats.invalidations += 1
            del self._entries[key]
        return self._populate_and_answer(bound, spec, key)

    # ------------------------------------------------------------------
    def _signature(self, bound: BoundQuery) -> Tuple:
        """(tables, predicate) identity — everything the SELECT list and
        GROUP BY do *not* affect."""
        tables = tuple(sorted((t.name, t.alias) for t in bound.tables))
        where = repr(bound.where) if bound.where is not None else ""
        return (tables, where)

    def _versions(self, bound: BoundQuery) -> Tuple[Tuple[str, int], ...]:
        return tuple(
            sorted((t.name, self.database.table(t.name).num_rows) for t in bound.tables)
        )

    def _is_stale(self, entry: CacheEntry) -> bool:
        for name, rows in entry.table_versions:
            if not self.database.has_table(name):
                return True
            if self.database.table(name).num_rows != rows:
                return True
        return False

    # ------------------------------------------------------------------
    def _populate_and_answer(
        self, bound: BoundQuery, spec: ErrorSpec, key: Tuple
    ) -> ApproximateResult:
        planner = QuickrPlanner(self.database, rate=self.rate, seed=self.seed)
        target = planner._choose_table(bound)
        sampler_kind, sample = planner._draw_sample(bound, target)
        weight_col = "__weight"
        temp = planner._register_temp(
            sample.table.with_column(weight_col, sample.weights)
        )
        try:
            from ..engine.optimizer import optimize_plan
            from .quickr import _swap_scan

            swapped = _swap_scan(bound.pre_agg_plan, target.name, temp)
            relation, stats = self.database.execute(
                optimize_plan(swapped, self.database), optimize=False
            )
        finally:
            self.database.drop_table(temp)
        weights = np.asarray(
            relation[f"{target.alias}.{weight_col}"], dtype=np.float64
        )
        entry = CacheEntry(
            relation=relation,
            weights=weights,
            table_versions=self._versions(bound),
            source_technique=f"quickr:{sampler_kind}",
        )
        if len(self._entries) >= self.max_entries:
            # Evict the least-used entry.
            victim = min(self._entries, key=lambda k: self._entries[k].hits)
            del self._entries[victim]
        self._entries[key] = entry
        return self._answer_from_entry(bound, spec, entry, first_run_stats=stats)

    def _answer_from_entry(
        self,
        bound: BoundQuery,
        spec: ErrorSpec,
        entry: CacheEntry,
        first_run_stats: Optional[ExecutionStats] = None,
    ) -> ApproximateResult:
        estimates = estimate_groups_row_level(bound, entry.relation, entry.weights)
        out_table, ci_low, ci_high = project_output_with_intervals(
            bound, spec, estimates
        )
        reused = first_run_stats is None
        stats = first_run_stats if first_run_stats is not None else ExecutionStats()
        if reused:
            stats.agg_input_rows = entry.relation.num_rows
        approx_cost = (
            aggregation_cost(entry.relation.num_rows).total
            if reused
            else stats.simulated_cost(self.database.cost_params).total
        )
        exact_cost = 0.0
        from ..storage.cost import scan_cost

        for name, _ in entry.table_versions:
            t = self.database.table(name)
            exact_cost += scan_cost(t.num_blocks, t.num_rows).total
        return ApproximateResult(
            table=out_table,
            stats=stats,
            spec=spec,
            technique="idea_reuse" if reused else "quickr",
            ci_low=ci_low,
            ci_high=ci_high,
            fraction_scanned=0.0 if reused else 1.0,
            approx_cost=max(approx_cost, 1e-9),
            exact_cost=exact_cost,
            diagnostics={
                "reused": reused,
                "source": entry.source_technique,
                "cached_rows": entry.relation.num_rows,
                "cache_hit_rate": self.stats.hit_rate,
            },
        )

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
