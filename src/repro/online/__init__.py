"""Online (query-time) AQP: pilot planning, Quickr, OLA, ripple joins."""

from .idea import CacheEntry, CacheStats, ReuseCache
from .ola import OLASnapshot, OnlineAggregator, peeking_coverage
from .pilot import PilotPlanner, SamplingPlan
from .quickr import QuickrPlanner
from .ripple import RippleJoin, RippleSnapshot
from .wander import WanderJoin, WanderSnapshot

__all__ = [
    "CacheEntry",
    "CacheStats",
    "OLASnapshot",
    "OnlineAggregator",
    "PilotPlanner",
    "QuickrPlanner",
    "ReuseCache",
    "RippleJoin",
    "RippleSnapshot",
    "SamplingPlan",
    "WanderJoin",
    "WanderSnapshot",
    "peeking_coverage",
]
