"""Two-stage pilot-based online AQP with a-priori error guarantees.

This is the survey's "guarantees without precomputation" direction made
concrete. Stage 1 runs a cheap *pilot* query — the user's query rewritten
to (a) block-sample its most expensive table and (b) aggregate per
(group, block) — which yields, for every group and linear aggregate, the
distribution of per-block contributions. Stage 2 solves for the smallest
block-sampling rate whose CLT error bound meets the (confidence-adjusted)
spec, rejects the plan if it would cost more than exact execution, and
runs the rewritten final query.

Key statistical ingredients, mirroring what a correct block-sampling
analysis must do:

* the sampling unit is the *block*, so every variance is computed over
  per-block totals (including zero totals for sampled blocks where a
  group did not appear);
* bounds derived from the pilot are probabilistic, so their failure
  probabilities are charged against the user's confidence budget
  (union bound), leaving the final-stage CLT the remainder;
* AVG is planned as a SUM/COUNT ratio with error split via the quotient
  propagation rule; composite SELECT expressions are handled by interval
  arithmetic over per-aggregate CIs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errorspec import ErrorSpec, chi2_ppf, student_t_ppf, z_value
from ..core.exceptions import InfeasiblePlanError, UnsupportedQueryError
from ..core.result import ApproximateResult
from ..engine import expressions as E
from ..engine.aggregates import AggregateSpec
from ..engine.optimizer import optimize_plan
from ..engine.plan import (
    GroupByAggregate,
    PlanNode,
    SampleClause,
    attach_sample,
)
from ..engine.table import Table
from ..sql.binder import BoundQuery, BoundTable
from ..storage.cost import block_sample_cost, scan_cost
from .estimation import expanded_aggregates

#: Tables smaller than this are never sampled (sampling overhead beats
#: the savings; matches the "only sample big scanned tables" heuristic).
MIN_SAMPLABLE_ROWS = 10_000

#: Sampling rates above this are rejected: the sampled query would cost
#: about as much as the exact one.
MAX_USEFUL_RATE = 0.5

#: Group-coverage boosts to the pilot rate are capped here; beyond it the
#: pilot itself would cost a sizable fraction of the exact query.
MAX_PILOT_RATE = 0.1

#: Stage 2 always samples at least this many blocks: below ~30 clusters the
#: CLT interval and the between-block variance estimate are both unreliable,
#: so a "cheaper" plan would silently void the guarantee.
MIN_FINAL_BLOCKS = 30


@dataclass
class SamplingPlan:
    """A concrete stage-2 decision."""

    table_name: str
    rate: float
    estimated_cost: float
    exact_cost: float
    pilot_blocks: int
    diagnostics: Dict[str, object] = field(default_factory=dict)

    @property
    def speedup_estimate(self) -> float:
        if self.estimated_cost <= 0:
            return math.inf
        return self.exact_cost / self.estimated_cost


@dataclass
class _GroupStats:
    """Pilot statistics for one (group-key-tuple)."""

    key: Tuple
    #: per simple-aggregate: (mean_block_total, var_block_total, sumsq_ub)
    block_means: Dict[str, float] = field(default_factory=dict)
    block_vars: Dict[str, float] = field(default_factory=dict)
    block_sumsq: Dict[str, float] = field(default_factory=dict)


class PilotPlanner:
    """Plans and executes two-stage approximate aggregation queries."""

    def __init__(
        self,
        database,
        pilot_rate: float = 0.01,
        seed: Optional[int] = None,
    ) -> None:
        if not (0.0 < pilot_rate <= 1.0):
            raise ValueError("pilot_rate must be in (0, 1]")
        self.database = database
        self.pilot_rate = pilot_rate
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, bound: BoundQuery, spec: ErrorSpec) -> ApproximateResult:
        """Full two-stage execution. Raises :class:`InfeasiblePlanError`
        when no profitable sampling plan satisfies the spec."""
        self.check_supported(bound)
        target = self.choose_table(bound)
        plan, pilot_stats_obj = self.plan_sampling(bound, spec, target)
        return self.execute_final(bound, spec, plan, pilot_stats_obj)

    def check_supported(self, bound: BoundQuery) -> None:
        if not bound.is_aggregate:
            raise UnsupportedQueryError("pilot AQP requires an aggregate query")
        for agg in bound.aggregates:
            if not agg.is_linear:
                raise UnsupportedQueryError(
                    f"{agg.func.upper()} is not a linear aggregate; "
                    "sampling cannot bound its error a priori"
                )

    def choose_table(self, bound: BoundQuery) -> BoundTable:
        """Sample the largest scannable table (the scan bottleneck)."""
        candidates = [
            t for t in bound.tables if t.num_rows >= MIN_SAMPLABLE_ROWS
        ]
        if not candidates:
            raise InfeasiblePlanError(
                "no table is large enough for sampling to pay off"
            )
        return max(candidates, key=lambda t: t.num_rows)

    # ------------------------------------------------------------------
    # Stage 1: the pilot
    # ------------------------------------------------------------------
    def plan_sampling(
        self, bound: BoundQuery, spec: ErrorSpec, target: BoundTable
    ) -> Tuple[SamplingPlan, Dict]:
        self._has_group_keys = bool(bound.group_keys)
        self._coverage_best_effort = False
        pilot_rate = self._pilot_rate_for_groups(spec, target)
        pilot_table, sampled_blocks, pilot_cost = self._run_pilot(
            bound, target, pilot_rate
        )
        groups = self._collect_group_stats(bound, pilot_table, sampled_blocks)
        if not groups:
            raise InfeasiblePlanError(
                "pilot sample saw no qualifying rows; the query is too "
                "selective for sampling"
            )
        rate, diagnostics = self._solve_rate(bound, spec, target, groups, sampled_blocks)
        if rate > MAX_USEFUL_RATE:
            raise InfeasiblePlanError(
                f"required sampling rate {rate:.3f} exceeds the useful "
                f"maximum {MAX_USEFUL_RATE}; exact execution is cheaper"
            )
        table = self.database.table(target.name)
        est_cost = (
            block_sample_cost(table.num_blocks, table.block_size, rate).total
            + pilot_cost
        )
        exact = scan_cost(table.num_blocks, table.num_rows).total
        if est_cost >= exact:
            raise InfeasiblePlanError(
                "sampled plan (including its pilot) costs at least as much "
                "as the exact plan"
            )
        plan = SamplingPlan(
            table_name=target.name,
            rate=rate,
            estimated_cost=est_cost,
            exact_cost=exact,
            pilot_blocks=sampled_blocks,
            diagnostics=diagnostics,
        )
        plan.diagnostics["pilot_cost"] = pilot_cost
        return plan, {"groups": groups, "pilot_rate": pilot_rate}

    def _pilot_rate_for_groups(self, spec: ErrorSpec, target: BoundTable) -> float:
        """Pilot rate high enough that groups of ``min_group_size`` rows
        are present in the pilot with probability ≥ 1 - δ/10.

        A group with g rows occupies ≥ ceil(g/b) blocks; Bernoulli block
        sampling misses all of them w.p. ≤ (1-p)^(g/b), so
        ``p ≥ 1 - δ^(b/g)`` suffices.
        """
        table = self.database.table(target.name)
        # Statistical floor: a pilot should see ~30 blocks for its t/chi2
        # bounds to be meaningful.
        floor = min(30.0 / max(table.num_blocks, 1), 1.0)
        rate = max(self.pilot_rate, floor)
        if not self._has_group_keys:
            return float(min(rate, 1.0))
        delta = spec.failure_probability / 10.0
        blocks_occupied = max(spec.min_group_size / target.block_size, 1.0)
        needed = 1.0 - delta ** (1.0 / blocks_occupied)
        # Groups smaller than a block cannot be guaranteed by block
        # sampling at a useful rate; cap the boost and record best-effort.
        if needed > MAX_PILOT_RATE:
            self._coverage_best_effort = True
            needed = MAX_PILOT_RATE
        return float(min(max(rate, needed), 1.0))

    def _run_pilot(
        self, bound: BoundQuery, target: BoundTable, pilot_rate: float
    ) -> Tuple[Table, int, float]:
        """Execute the rewritten pilot query; returns per-(group, block)
        aggregate rows, the number of blocks the sampler drew, and the
        simulated cost of the pilot pass."""
        sample = SampleClause(
            "system_blocks",
            rate=pilot_rate,
            seed=int(self.rng.integers(0, 2**31)),
        )
        sampled_plan = attach_sample(bound.pre_agg_plan, target.name, sample)
        agg_plan = self._per_block_aggregate_plan(bound, target, sampled_plan)
        table, stats = self.database.execute(
            optimize_plan(agg_plan, self.database), optimize=False
        )
        sampled_blocks = stats.per_table[target.name].blocks_scanned
        pilot_cost = stats.simulated_cost(self.database.cost_params).total
        return table, sampled_blocks, pilot_cost

    def _per_block_aggregate_plan(
        self, bound: BoundQuery, target: BoundTable, child: PlanNode
    ) -> GroupByAggregate:
        """GROUP BY (user keys, block id) computing per-block sub-aggregates
        for every simple aggregate the query needs."""
        block_col = E.Column(f"{target.alias}.__block_id")
        keys = list(bound.group_keys) + [(block_col, "__pilot_block")]
        aggs = []
        for spec in expanded_aggregates(bound):
            aggs.append(spec)
        return GroupByAggregate(child=child, keys=tuple(keys), aggregates=tuple(aggs))

    def _collect_group_stats(
        self, bound: BoundQuery, pilot_table: Table, sampled_blocks: int
    ) -> Dict[Tuple, _GroupStats]:
        """Fold per-(group, block) rows into per-group block statistics.

        Blocks the sampler drew in which a group contributed nothing count
        as zero-valued observations — forgetting them is the classic way
        to underestimate block-sampling variance.
        """
        key_aliases = [alias for _, alias in bound.group_keys]
        agg_aliases = [spec.alias for spec in expanded_aggregates(bound)]
        m = max(sampled_blocks, 1)
        groups: Dict[Tuple, _GroupStats] = {}
        if pilot_table.num_rows == 0:
            return groups
        if key_aliases:
            key_arrays = [pilot_table[a] for a in key_aliases]
            from ..engine.aggregates import encode_groups

            gids, key_tuples = encode_groups(key_arrays)
        else:
            gids = np.zeros(pilot_table.num_rows, dtype=np.int64)
            key_tuples = [()]
        for agg_alias in agg_aliases:
            values = np.asarray(pilot_table[agg_alias], dtype=np.float64)
            sums = np.bincount(gids, weights=values, minlength=len(key_tuples))
            sumsq = np.bincount(
                gids, weights=values * values, minlength=len(key_tuples)
            )
            present = np.bincount(gids, minlength=len(key_tuples))
            for gi, key in enumerate(key_tuples):
                stats = groups.setdefault(key, _GroupStats(key=key))
                # Pad with zeros to all m sampled blocks.
                mean = sums[gi] / m
                var = max(sumsq[gi] / m - mean * mean, 0.0)
                if m > 1:
                    var *= m / (m - 1)
                stats.block_means[agg_alias] = float(mean)
                stats.block_vars[agg_alias] = float(var)
                stats.block_sumsq[agg_alias] = float(sumsq[gi] / m)
        return groups

    # ------------------------------------------------------------------
    # Rate solving
    # ------------------------------------------------------------------
    def _solve_rate(
        self,
        bound: BoundQuery,
        spec: ErrorSpec,
        target: BoundTable,
        groups: Dict[Tuple, _GroupStats],
        pilot_blocks: int,
    ) -> Tuple[float, Dict[str, object]]:
        """Smallest block-sampling rate meeting every per-(group, agg)
        constraint.

        Stage 2 estimates each total as ``B · mean(block totals)`` — the
        self-normalized (ratio) form whose variance depends on the
        *between-block* variance ``σ²`` rather than the raw second moment,
        so nearly-uniform blocks need only a handful of samples. The
        planning inequality is the SRS one::

            z · B · sqrt(σ² (1/m − 1/B)) ≤ ε · |total|

        solved for the number of sampled blocks ``m``. Pilot-derived
        quantities are probabilistic, so the confidence budget is split:

        * δ/4 to the pilot's lower bound on each |total| (Student t),
        * δ/4 to the pilot's upper bound on each σ² (chi-squared),
        * δ/2 to the stage-2 CLT intervals,

        each slice union-bounded across all constraints.
        """
        table = self.database.table(target.name)
        total_blocks = table.num_blocks
        constraints = self._constraints(bound, spec, groups)
        num = max(len(constraints), 1)
        delta = spec.failure_probability
        d_bound = delta / 4.0 / num  # per probabilistic pilot bound
        final_conf = 1.0 - delta / 2.0 / num  # per stage-2 CI
        z_final = z_value(final_conf)
        m = max(pilot_blocks, 2)
        t_crit = student_t_ppf(1.0 - d_bound, m - 1)
        chi2_low = chi2_ppf(d_bound, m - 1)
        worst_rate = 0.0
        binding = None
        for (key, agg_alias, eps) in constraints:
            stats = groups[key]
            mean = stats.block_means[agg_alias]
            var = stats.block_vars[agg_alias]
            # Lower bound on |total| = B * mean (one-sided t interval).
            se_mean = math.sqrt(var / m)
            mean_lb = mean - t_crit * se_mean
            if mean_lb <= 0:
                raise InfeasiblePlanError(
                    f"pilot cannot bound aggregate {agg_alias!r} away from "
                    f"zero for group {key!r}; sampling is infeasible"
                )
            total_lb = total_blocks * mean_lb
            # Upper bound on σ² via chi-squared: (m-1)s²/σ² ~ χ²(m-1).
            if chi2_low <= 0:
                raise InfeasiblePlanError("pilot saw too few blocks")
            var_ub = var * (m - 1) / chi2_low
            if var_ub <= 0:
                continue  # constant blocks: any rate works for this cell
            # Solve z²·B²·σ²·(1/m' − 1/B) ≤ (ε·total_lb)² for m'.
            target_sq = (eps * total_lb / z_final) ** 2
            inv_m = target_sq / (total_blocks * total_blocks * var_ub) + 1.0 / total_blocks
            needed_blocks = 1.0 / inv_m
            rate = max(needed_blocks, MIN_FINAL_BLOCKS) / total_blocks
            if rate > worst_rate:
                worst_rate = rate
                binding = (key, agg_alias, eps, rate)
        diagnostics = {
            "constraints": len(constraints),
            "binding_constraint": binding,
            "z_final": z_final,
            "pilot_blocks": pilot_blocks,
            "coverage_best_effort": self._coverage_best_effort,
        }
        floor = min(MIN_FINAL_BLOCKS / max(total_blocks, 1), 1.0)
        return float(min(max(worst_rate, floor), 1.0)), diagnostics

    def _constraints(
        self,
        bound: BoundQuery,
        spec: ErrorSpec,
        groups: Dict[Tuple, _GroupStats],
    ) -> List[Tuple[Tuple, str, float]]:
        """(group, simple-agg alias, per-estimate relative error) triples.

        AVG splits its budget across its SUM and COUNT halves with the
        quotient rule; SUM/COUNT take the full per-aggregate budget.
        """
        from ..estimators.propagation import allocate_for_quotient

        out: List[Tuple[Tuple, str, float]] = []
        for key in groups:
            for agg in bound.aggregates:
                if agg.func == "avg":
                    eps = allocate_for_quotient(spec.relative_error)
                    out.append((key, f"{agg.alias}__sum", eps))
                    out.append((key, f"{agg.alias}__count", eps))
                elif agg.func == "sum":
                    out.append((key, f"{agg.alias}__sum", spec.relative_error))
                else:
                    out.append((key, f"{agg.alias}__count", spec.relative_error))
        return out

    # ------------------------------------------------------------------
    # Stage 2: the final query
    # ------------------------------------------------------------------
    def execute_final(
        self,
        bound: BoundQuery,
        spec: ErrorSpec,
        plan: SamplingPlan,
        pilot_info: Dict,
    ) -> ApproximateResult:
        target_alias = next(
            t.alias for t in bound.tables if t.name == plan.table_name
        )
        sample = SampleClause(
            "system_blocks",
            rate=plan.rate,
            seed=int(self.rng.integers(0, 2**31)),
        )
        sampled_plan = attach_sample(bound.pre_agg_plan, plan.table_name, sample)
        block_col = E.Column(f"{target_alias}.__block_id")
        keys = list(bound.group_keys) + [(block_col, "__pilot_block")]
        aggs = expanded_aggregates(bound)
        agg_plan = GroupByAggregate(
            child=sampled_plan, keys=tuple(keys), aggregates=tuple(aggs)
        )
        table, stats = self.database.execute(
            optimize_plan(agg_plan, self.database), optimize=False
        )
        sampled_blocks = stats.per_table[plan.table_name].blocks_scanned
        result = self._assemble_result(
            bound, spec, plan, table, sampled_blocks, stats
        )
        return result

    def _assemble_result(
        self,
        bound: BoundQuery,
        spec: ErrorSpec,
        plan: SamplingPlan,
        per_block: Table,
        sampled_blocks: int,
        stats,
    ) -> ApproximateResult:
        from .estimation import (
            estimate_groups_from_blocks,
            project_output_with_intervals,
        )

        base_table = self.database.table(plan.table_name)
        estimates = estimate_groups_from_blocks(
            bound,
            per_block,
            rate=plan.rate,
            sampled_blocks=sampled_blocks,
            total_blocks=base_table.num_blocks,
            expanded_aggs=expanded_aggregates(bound),
        )
        out_table, ci_low, ci_high = project_output_with_intervals(
            bound, spec, estimates
        )
        exact = plan.exact_cost
        # The pilot pass is real work; charge it to the approximate plan.
        pilot_cost = float(plan.diagnostics.get("pilot_cost", 0.0))
        approx = stats.simulated_cost(self.database.cost_params).total + pilot_cost
        return ApproximateResult(
            table=out_table,
            stats=stats,
            spec=spec,
            technique="pilot",
            ci_low=ci_low,
            ci_high=ci_high,
            fraction_scanned=stats.fraction_blocks_read,
            approx_cost=approx,
            exact_cost=exact,
            diagnostics={
                "sampling_rate": plan.rate,
                "sampled_table": plan.table_name,
                "pilot_blocks": plan.pilot_blocks,
                **plan.diagnostics,
            },
        )
