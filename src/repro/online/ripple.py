"""Ripple join (Haas & Hellerstein 1999): online aggregation over joins.

Both join inputs are read in random order; after ``k_R`` rows of R and
``k_S`` rows of S, the joined prefix R[:k_R] ⋈ S[:k_S] scaled by
``(|R|·|S|)/(k_R·k_S)`` is an unbiased estimate of the join aggregate.
The square ripple grows both prefixes together; the estimate converges
while the user watches.

The confidence interval uses the per-R-row linearization (each read R row
contributes its S-prefix join total, scaled), which captures the dominant
variance term for FK-like joins; Haas's full two-sided variance adds a
symmetric S-side term we fold in the same way and combine. Good enough
for the convergence-shape claims of experiment E13; exactness is not
claimed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.errorspec import z_value
from ..engine.table import Table


@dataclass
class RippleSnapshot:
    rows_read_left: int
    rows_read_right: int
    value: float
    ci_low: float
    ci_high: float

    @property
    def relative_half_width(self) -> float:
        if self.value == 0:
            return math.inf
        return (self.ci_high - self.ci_low) / 2.0 / abs(self.value)


class RippleJoin:
    """Online SUM(left_value · right_value-ish) over an equi-join.

    ``measure`` is evaluated per joined pair as
    ``left_measure[i] * right_measure[j]``; pass all-ones on one side for
    single-table measures.
    """

    def __init__(
        self,
        left: Table,
        right: Table,
        left_key: str,
        right_key: str,
        left_measure: Optional[str] = None,
        right_measure: Optional[str] = None,
        confidence: float = 0.95,
        seed: Optional[int] = None,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.confidence = confidence
        self.n_left = left.num_rows
        self.n_right = right.num_rows
        lo = rng.permutation(self.n_left)
        ro = rng.permutation(self.n_right)
        self._lkeys = left[left_key][lo]
        self._rkeys = right[right_key][ro]
        self._lvals = (
            np.asarray(left[left_measure], dtype=np.float64)[lo]
            if left_measure
            else np.ones(self.n_left)
        )
        self._rvals = (
            np.asarray(right[right_measure], dtype=np.float64)[ro]
            if right_measure
            else np.ones(self.n_right)
        )
        # Hash state: key -> (sum of measures, count) for rows read so far.
        self._left_seen: Dict[object, float] = {}
        self._right_seen: Dict[object, float] = {}
        self._kl = 0
        self._kr = 0
        self._join_sum = 0.0
        #: per-left-row joined contribution at read time (for variance)
        self._left_contrib: List[float] = []
        self._right_contrib: List[float] = []

    # ------------------------------------------------------------------
    def _step_left(self) -> None:
        i = self._kl
        key = self._lkeys[i]
        value = self._lvals[i]
        partner = self._right_seen.get(key, 0.0)
        self._join_sum += value * partner
        self._left_contrib.append(value * partner)
        self._left_seen[key] = self._left_seen.get(key, 0.0) + value
        self._kl += 1

    def _step_right(self) -> None:
        j = self._kr
        key = self._rkeys[j]
        value = self._rvals[j]
        partner = self._left_seen.get(key, 0.0)
        self._join_sum += value * partner
        self._right_contrib.append(value * partner)
        self._right_seen[key] = self._right_seen.get(key, 0.0) + value
        self._kr += 1

    def advance(self, steps: int = 1000) -> RippleSnapshot:
        """Advance the square ripple by ``steps`` per side and snapshot."""
        for _ in range(steps):
            if self._kl < self.n_left:
                self._step_left()
            if self._kr < self.n_right:
                self._step_right()
            if self._kl >= self.n_left and self._kr >= self.n_right:
                break
        return self.snapshot()

    def snapshot(self) -> RippleSnapshot:
        kl = max(self._kl, 1)
        kr = max(self._kr, 1)
        scale = (self.n_left * self.n_right) / (kl * kr)
        value = self._join_sum * scale
        # Linearized variance: scaled per-row contributions on each side.
        var = 0.0
        for contrib, k, n in (
            (self._left_contrib, kl, self.n_left),
            (self._right_contrib, kr, self.n_right),
        ):
            if len(contrib) > 1:
                c = np.asarray(contrib, dtype=np.float64)
                # Each left-row contribution pairs with kr/n_right of S; a
                # full-data contribution would be c * (n_right/kr) etc.
                side_scale = scale * k  # total-from-mean scaling
                s2 = float(np.var(c, ddof=1))
                fpc = max(1.0 - k / n, 0.0)
                var += (side_scale**2) * fpc * s2 / k
        z = z_value(self.confidence)
        half = z * math.sqrt(var)
        return RippleSnapshot(
            rows_read_left=self._kl,
            rows_read_right=self._kr,
            value=value,
            ci_low=value - half,
            ci_high=value + half,
        )

    def run(
        self,
        batch: int = 1000,
        target_relative_error: Optional[float] = None,
    ) -> Iterator[RippleSnapshot]:
        while self._kl < self.n_left or self._kr < self.n_right:
            snap = self.advance(batch)
            yield snap
            if (
                target_relative_error is not None
                and snap.relative_half_width <= target_relative_error
            ):
                return

    @property
    def is_exhausted(self) -> bool:
        return self._kl >= self.n_left and self._kr >= self.n_right
