"""Ripple join (Haas & Hellerstein 1999): online aggregation over joins.

Both join inputs are read in random order; after ``k_R`` rows of R and
``k_S`` rows of S, the joined prefix R[:k_R] ⋈ S[:k_S] scaled by
``(|R|·|S|)/(k_R·k_S)`` is an unbiased estimate of the join aggregate.
The square ripple grows both prefixes together; the estimate converges
while the user watches.

The confidence interval uses the per-R-row linearization (each read R row
contributes its S-prefix join total, scaled), which captures the dominant
variance term for FK-like joins; Haas's full two-sided variance adds a
symmetric S-side term we fold in the same way and combine. Good enough
for the convergence-shape claims of experiment E13; exactness is not
claimed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.errorspec import z_value
from ..engine.table import Table


@dataclass
class RippleSnapshot:
    rows_read_left: int
    rows_read_right: int
    value: float
    ci_low: float
    ci_high: float

    @property
    def relative_half_width(self) -> float:
        if self.value == 0:
            return math.inf
        return (self.ci_high - self.ci_low) / 2.0 / abs(self.value)

    def covers(self, truth: float) -> bool:
        """Does the interval contain the exact join aggregate?"""
        return self.ci_low <= truth <= self.ci_high


class RippleJoin:
    """Online SUM(left_value · right_value-ish) over an equi-join.

    ``measure`` is evaluated per joined pair as
    ``left_measure[i] * right_measure[j]``; pass all-ones on one side for
    single-table measures.
    """

    def __init__(
        self,
        left: Table,
        right: Table,
        left_key: str,
        right_key: str,
        left_measure: Optional[str] = None,
        right_measure: Optional[str] = None,
        confidence: float = 0.95,
        seed: Optional[int] = None,
        left_mask: Optional[np.ndarray] = None,
        right_mask: Optional[np.ndarray] = None,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.confidence = confidence
        # Optional per-side predicate masks: the ripple runs over only the
        # selected rows. Composing the selection into the permutation
        # (``sel[perm]``) is bitwise-identical to pre-compacting the
        # tables with ``take(flatnonzero(mask))`` under the same seed,
        # but gathers two columns per side instead of copying them all.
        lsel = (
            np.flatnonzero(np.asarray(left_mask, dtype=bool))
            if left_mask is not None
            else None
        )
        rsel = (
            np.flatnonzero(np.asarray(right_mask, dtype=bool))
            if right_mask is not None
            else None
        )
        self.n_left = left.num_rows if lsel is None else len(lsel)
        self.n_right = right.num_rows if rsel is None else len(rsel)
        lo = rng.permutation(self.n_left)
        ro = rng.permutation(self.n_right)
        if lsel is not None:
            lo = lsel[lo]
        if rsel is not None:
            ro = rsel[ro]
        self._lkeys = left[left_key][lo]
        self._rkeys = right[right_key][ro]
        self._lvals = (
            np.asarray(left[left_measure], dtype=np.float64)[lo]
            if left_measure
            else np.ones(self.n_left)
        )
        self._rvals = (
            np.asarray(right[right_measure], dtype=np.float64)[ro]
            if right_measure
            else np.ones(self.n_right)
        )
        # Hash state: key -> (sum of measures, count) for rows read so far.
        self._left_seen: Dict[object, float] = {}
        self._right_seen: Dict[object, float] = {}
        self._kl = 0
        self._kr = 0
        self._join_sum = 0.0
        #: per-row joined contributions at read time (for variance), kept
        #: as chunks of numpy arrays so batched advances stay vectorized
        self._left_contrib: List[np.ndarray] = []
        self._right_contrib: List[np.ndarray] = []

    # ------------------------------------------------------------------
    def _step_left(self) -> None:
        """Scalar reference step (kept as the batch kernel's oracle)."""
        i = self._kl
        key = self._lkeys[i]
        value = self._lvals[i]
        partner = self._right_seen.get(key, 0.0)
        self._join_sum += value * partner
        self._left_contrib.append(np.array([value * partner]))
        self._left_seen[key] = self._left_seen.get(key, 0.0) + value
        self._kl += 1

    def _step_right(self) -> None:
        j = self._kr
        key = self._rkeys[j]
        value = self._rvals[j]
        partner = self._left_seen.get(key, 0.0)
        self._join_sum += value * partner
        self._right_contrib.append(np.array([value * partner]))
        self._right_seen[key] = self._right_seen.get(key, 0.0) + value
        self._kr += 1

    def _advance_batch(self, steps: int) -> None:
        """Vectorized equivalent of ``steps`` interleaved L/R scalar steps.

        Each left row joins the right rows read strictly before it, each
        right row the left rows read up to and including its own step.
        Encoding reads as events at times (2t for left, 2t+1 for right)
        and taking per-key, time-ordered exclusive prefix sums of the
        opposite side reproduces the scalar partner sums exactly.
        """
        ml = min(steps, self.n_left - self._kl)
        mr = min(steps, self.n_right - self._kr)
        if ml <= 0 and mr <= 0:
            return
        lkeys = self._lkeys[self._kl : self._kl + ml]
        lvals = self._lvals[self._kl : self._kl + ml]
        rkeys = self._rkeys[self._kr : self._kr + mr]
        rvals = self._rvals[self._kr : self._kr + mr]

        keys = np.concatenate([lkeys, rkeys])
        uniq, codes = np.unique(keys, return_inverse=True)
        vals = np.concatenate([lvals, rvals])
        times = np.concatenate(
            [2 * np.arange(ml, dtype=np.int64), 2 * np.arange(mr, dtype=np.int64) + 1]
        )
        is_left = np.zeros(ml + mr, dtype=bool)
        is_left[:ml] = True

        order = np.lexsort((times, codes))
        k_sorted = codes[order]
        v_sorted = vals[order]
        left_sorted = is_left[order]
        n_ev = len(order)
        new_seg = np.empty(n_ev, dtype=bool)
        new_seg[0] = True
        np.not_equal(k_sorted[1:], k_sorted[:-1], out=new_seg[1:])
        # Segment-exclusive cumulative sums per side.
        seg_start = np.maximum.accumulate(np.where(new_seg, np.arange(n_ev), 0))

        def _seg_excl(x: np.ndarray) -> np.ndarray:
            c = np.cumsum(x)
            excl = np.concatenate([[0.0], c[:-1]])
            return excl - excl[seg_start]

        excl_left = _seg_excl(np.where(left_sorted, v_sorted, 0.0))
        excl_right = _seg_excl(np.where(left_sorted, 0.0, v_sorted))

        # State accumulated before this batch, looked up per unique key.
        prev_left = np.array(
            [self._left_seen.get(k, 0.0) for k in uniq], dtype=np.float64
        )
        prev_right = np.array(
            [self._right_seen.get(k, 0.0) for k in uniq], dtype=np.float64
        )
        partner = np.where(
            left_sorted,
            prev_right[k_sorted] + excl_right,
            prev_left[k_sorted] + excl_left,
        )
        contrib_sorted = v_sorted * partner
        contrib = np.empty(n_ev, dtype=np.float64)
        contrib[order] = contrib_sorted

        self._join_sum += float(np.sum(contrib))
        if ml:
            self._left_contrib.append(contrib[:ml])
        if mr:
            self._right_contrib.append(contrib[ml:])
        lsums = np.bincount(codes[:ml], weights=lvals, minlength=len(uniq))
        rsums = np.bincount(codes[ml:], weights=rvals, minlength=len(uniq))
        for i, k in enumerate(uniq):
            key = k.item() if hasattr(k, "item") else k
            if lsums[i]:
                self._left_seen[key] = self._left_seen.get(key, 0.0) + lsums[i]
            if rsums[i]:
                self._right_seen[key] = self._right_seen.get(key, 0.0) + rsums[i]
        self._kl += ml
        self._kr += mr

    def advance(self, steps: int = 1000) -> RippleSnapshot:
        """Advance the square ripple by ``steps`` per side and snapshot."""
        self._advance_batch(steps)
        return self.snapshot()

    def snapshot(self) -> RippleSnapshot:
        kl = max(self._kl, 1)
        kr = max(self._kr, 1)
        scale = (self.n_left * self.n_right) / (kl * kr)
        value = self._join_sum * scale
        # Linearized variance: scaled per-row contributions on each side.
        var = 0.0
        for chunks, k, n in (
            (self._left_contrib, kl, self.n_left),
            (self._right_contrib, kr, self.n_right),
        ):
            c = (
                np.concatenate(chunks)
                if chunks
                else np.empty(0, dtype=np.float64)
            )
            if len(c) > 1:
                # Each left-row contribution pairs with kr/n_right of S; a
                # full-data contribution would be c * (n_right/kr) etc.
                side_scale = scale * k  # total-from-mean scaling
                s2 = float(np.var(c, ddof=1))
                fpc = max(1.0 - k / n, 0.0)
                var += (side_scale**2) * fpc * s2 / k
        z = z_value(self.confidence)
        half = z * math.sqrt(var)
        return RippleSnapshot(
            rows_read_left=self._kl,
            rows_read_right=self._kr,
            value=value,
            ci_low=value - half,
            ci_high=value + half,
        )

    def run(
        self,
        batch: int = 1000,
        target_relative_error: Optional[float] = None,
        deadline=None,
    ) -> Iterator[RippleSnapshot]:
        """Stream snapshots until the target CI, data exhaustion, or
        ``deadline`` expiry — the deadline stops the ripple at a batch
        boundary instead of raising, so the last yielded snapshot is the
        best-effort answer. An ambient
        :func:`repro.resilience.deadline_scope` applies when no explicit
        deadline is passed."""
        from ..resilience.deadline import resolve_deadline

        deadline = resolve_deadline(deadline)
        while self._kl < self.n_left or self._kr < self.n_right:
            if deadline is not None and deadline.expired:
                return
            snap = self.advance(batch)
            yield snap
            if (
                target_relative_error is not None
                and snap.relative_half_width <= target_relative_error
            ):
                return

    @property
    def is_exhausted(self) -> bool:
        return self._kl >= self.n_left and self._kr >= self.n_right
