"""Shared estimation machinery for the online planners.

Turns per-(group, block) sub-aggregate rows into per-group estimates with
block-correct variances, then projects the user's SELECT expressions with
interval arithmetic so composite aggregates get (conservative) confidence
intervals consistent with the error-propagation rules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errorspec import ErrorSpec, z_value
from ..core.exceptions import PlanError
from ..engine import expressions as E
from ..engine.aggregates import AggregateSpec, encode_groups
from ..engine.table import Table
from ..estimators.closed_form import Estimate
from ..sql.binder import BoundQuery


@dataclass
class GroupEstimates:
    """Estimates of all simple aggregates for one group."""

    key: Tuple
    simple: Dict[str, Estimate] = field(default_factory=dict)


def expanded_aggregates(bound: BoundQuery) -> List[AggregateSpec]:
    """The simple SUM/COUNT pieces each user aggregate decomposes into.

    AVG(x) becomes SUM(x) + COUNT(*); SUM/COUNT pass through. Aliases are
    suffixed so all planners and estimators agree on names.
    """
    out: List[AggregateSpec] = []
    seen = set()
    for agg in bound.aggregates:
        if agg.func == "sum":
            pieces = [("sum", agg.argument, f"{agg.alias}__sum")]
        elif agg.func == "count":
            pieces = [("count", None, f"{agg.alias}__count")]
        else:  # avg
            pieces = [
                ("sum", agg.argument, f"{agg.alias}__sum"),
                ("count", None, f"{agg.alias}__count"),
            ]
        for func, arg, alias in pieces:
            if alias not in seen:
                seen.add(alias)
                out.append(AggregateSpec(func=func, argument=arg, alias=alias))
    return out


def estimate_groups_row_level(
    bound: BoundQuery,
    pre_agg: Table,
    weights: np.ndarray,
) -> List[GroupEstimates]:
    """Per-group HT estimates from a row-weighted sample relation.

    For Poisson designs with weight ``w = 1/π`` the HT total of y is
    ``Σ w·y`` with variance estimate ``Σ w(w-1)·y²`` — valid for uniform,
    distinct and measure-biased samplers alike.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = pre_agg.num_rows
    if bound.group_keys:
        key_arrays = [expr.evaluate(pre_agg) for expr, _ in bound.group_keys]
        gids, key_tuples = encode_groups(key_arrays)
    else:
        gids = np.zeros(n, dtype=np.int64)
        key_tuples = [()]
    expanded = expanded_aggregates(bound)
    value_arrays: Dict[str, np.ndarray] = {}
    for spec_ in expanded:
        if spec_.func == "count":
            value_arrays[spec_.alias] = np.ones(n)
        else:
            value_arrays[spec_.alias] = np.asarray(
                spec_.argument.evaluate(pre_agg), dtype=np.float64
            )
    out: List[GroupEstimates] = []
    for gi, key in enumerate(key_tuples):
        mask = gids == gi
        w = weights[mask]
        ge = GroupEstimates(key=key)
        for spec_ in expanded:
            y = value_arrays[spec_.alias][mask]
            total = float(np.sum(w * y))
            variance = float(np.sum(w * (w - 1.0) * y * y))
            ge.simple[spec_.alias] = Estimate(
                total, variance, int(mask.sum()), estimator="row_ht"
            )
        out.append(ge)
    return out


def estimate_groups_from_blocks(
    bound: BoundQuery,
    per_block: Table,
    rate: float,
    sampled_blocks: int,
    total_blocks: int,
    expanded_aggs: Sequence[AggregateSpec],
) -> List[GroupEstimates]:
    """Per-group HT estimates from Bernoulli block sampling.

    Conditional on the number ``m`` of blocks a Bernoulli sampler drew,
    those blocks are an SRS of the ``B`` blocks, so each total is
    estimated as ``B · mean(t_b)`` with the SRS variance
    ``B² (1−m/B) s²/m`` over per-block contributions ``t_b`` — computed
    *per group*, counting sampled blocks where the group was absent as
    zeros (forgetting the zeros is the classic way to bias block-sample
    estimates).
    """
    key_aliases = [alias for _, alias in bound.group_keys]
    out: List[GroupEstimates] = []
    if per_block.num_rows == 0:
        return out
    if key_aliases:
        gids, key_tuples = encode_groups([per_block[a] for a in key_aliases])
    else:
        gids = np.zeros(per_block.num_rows, dtype=np.int64)
        key_tuples = [()]
    m = max(sampled_blocks, 1)
    for gi, key in enumerate(key_tuples):
        ge = GroupEstimates(key=key)
        mask = gids == gi
        for spec in expanded_aggs:
            t = np.asarray(per_block[spec.alias], dtype=np.float64)[mask]
            # Mean-of-blocks (self-normalized) estimator over the m drawn
            # blocks, zero-padding blocks where the group was absent.
            s1 = float(np.sum(t))
            s2 = float(np.sum(t * t))
            mean = s1 / m
            var_blocks = max(s2 / m - mean * mean, 0.0)
            if m > 1:
                var_blocks *= m / (m - 1)
            total = total_blocks * mean
            fpc = max(1.0 - m / total_blocks, 0.0) if total_blocks else 1.0
            variance = total_blocks * total_blocks * fpc * var_blocks / m
            ge.simple[spec.alias] = Estimate(
                total, variance, m, estimator="block_mean"
            )
        out.append(ge)
    return out


def combine_user_aggregate(
    agg: AggregateSpec, simple: Dict[str, Estimate], confidence: float
) -> Tuple[float, float, float]:
    """(value, ci_low, ci_high) of one user aggregate from its pieces."""
    if agg.func == "sum":
        est = simple[f"{agg.alias}__sum"]
        lo, hi = est.ci(confidence)
        return est.value, lo, hi
    if agg.func == "count":
        est = simple[f"{agg.alias}__count"]
        lo, hi = est.ci(confidence)
        return est.value, lo, hi
    if agg.func == "avg":
        s = simple[f"{agg.alias}__sum"]
        c = simple[f"{agg.alias}__count"]
        if c.value == 0:
            return math.nan, -math.inf, math.inf
        value = s.value / c.value
        s_lo, s_hi = s.ci(confidence)
        c_lo, c_hi = c.ci(confidence)
        # Conservative interval quotient (counts are positive).
        if c_lo <= 0:
            return value, -math.inf, math.inf
        candidates = [s_lo / c_lo, s_lo / c_hi, s_hi / c_lo, s_hi / c_hi]
        return value, min(candidates), max(candidates)
    raise PlanError(f"cannot combine aggregate {agg.func!r}")


# ----------------------------------------------------------------------
# Interval arithmetic over output expressions
# ----------------------------------------------------------------------

class _Interval:
    """Vectorized (value, low, high) triple."""

    __slots__ = ("value", "low", "high")

    def __init__(self, value, low, high) -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.low = np.asarray(low, dtype=np.float64)
        self.high = np.asarray(high, dtype=np.float64)


def _interval_eval(
    expr: E.Expression,
    columns: Dict[str, _Interval],
    n: int,
) -> _Interval:
    if isinstance(expr, E.Column):
        if expr.name not in columns:
            raise PlanError(f"no interval column {expr.name!r}")
        return columns[expr.name]
    if isinstance(expr, E.Literal):
        v = np.full(n, float(expr.value))
        return _Interval(v, v, v)
    if isinstance(expr, E.UnaryOp):
        inner = _interval_eval(expr.operand, columns, n)
        return _Interval(-inner.value, -inner.high, -inner.low)
    if isinstance(expr, E.BinaryOp):
        a = _interval_eval(expr.left, columns, n)
        b = _interval_eval(expr.right, columns, n)
        if expr.op == "+":
            return _Interval(a.value + b.value, a.low + b.low, a.high + b.high)
        if expr.op == "-":
            return _Interval(a.value - b.value, a.low - b.high, a.high - b.low)
        if expr.op == "*":
            prods = np.stack(
                [a.low * b.low, a.low * b.high, a.high * b.low, a.high * b.high]
            )
            return _Interval(
                a.value * b.value, prods.min(axis=0), prods.max(axis=0)
            )
        if expr.op == "/":
            with np.errstate(divide="ignore", invalid="ignore"):
                value = np.where(b.value != 0, a.value / np.where(b.value == 0, 1, b.value), np.nan)
                crosses_zero = (b.low <= 0) & (b.high >= 0)
                quots = np.stack(
                    [a.low / b.low, a.low / b.high, a.high / b.low, a.high / b.high]
                )
                low = np.where(crosses_zero, -np.inf, np.nanmin(quots, axis=0))
                high = np.where(crosses_zero, np.inf, np.nanmax(quots, axis=0))
            return _Interval(value, low, high)
    raise PlanError(
        f"expression {expr!r} is not supported in approximate SELECT lists"
    )


def project_output_with_intervals(
    bound: BoundQuery,
    spec: ErrorSpec,
    estimates: List[GroupEstimates],
) -> Tuple[Table, Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Build the user-facing result table plus CI dictionaries.

    The per-cell reporting confidence is the union-bound split of the
    user's confidence across all (group × simple-aggregate) cells, which
    matches how the planner budgeted stage-2 failure probability.
    """
    n = len(estimates)
    num_cells = max(n * max(len(bound.aggregates), 1), 1)
    cell_conf = 1.0 - spec.failure_probability / 2.0 / num_cells
    cell_conf = min(max(cell_conf, 0.5), 1 - 1e-12)

    # Per-user-aggregate interval columns.
    agg_columns: Dict[str, _Interval] = {}
    for agg in bound.aggregates:
        vals = np.empty(n)
        lows = np.empty(n)
        highs = np.empty(n)
        for i, ge in enumerate(estimates):
            vals[i], lows[i], highs[i] = combine_user_aggregate(
                agg, ge.simple, cell_conf
            )
        agg_columns[agg.alias] = _Interval(vals, lows, highs)

    # Group-key passthrough columns.
    key_aliases = [alias for _, alias in bound.group_keys]
    key_arrays: Dict[str, np.ndarray] = {}
    for pos, alias in enumerate(key_aliases):
        values = [ge.key[pos] for ge in estimates]
        key_arrays[alias] = np.asarray(values)

    out_cols: Dict[str, np.ndarray] = {}
    ci_low: Dict[str, np.ndarray] = {}
    ci_high: Dict[str, np.ndarray] = {}
    for expr, alias in bound.output_items:
        referenced = expr.columns()
        if referenced and referenced <= set(key_aliases):
            # Pure group-key output: evaluate on the key table.
            key_table = Table(key_arrays)
            out_cols[alias] = expr.evaluate(key_table)
            continue
        interval = _interval_eval(expr, agg_columns, n)
        out_cols[alias] = interval.value
        ci_low[alias] = interval.low
        ci_high[alias] = interval.high

    table = Table(out_cols, name="approximate")

    # HAVING / ORDER BY / LIMIT applied on point estimates, with CI arrays
    # kept aligned through the same row selection.
    selector = np.arange(table.num_rows)
    if bound.having is not None:
        mask = np.asarray(bound.having.evaluate(_having_view(bound, table, agg_columns, key_arrays)), dtype=bool)
        selector = selector[mask]
    if bound.order_by:
        sub = table.take(selector)
        order = _order_indices(sub, bound.order_by)
        selector = selector[order]
    if bound.limit is not None:
        selector = selector[: bound.limit]
    if len(selector) != table.num_rows or not np.array_equal(
        selector, np.arange(table.num_rows)
    ):
        table = table.take(selector)
        ci_low = {k: v[selector] for k, v in ci_low.items()}
        ci_high = {k: v[selector] for k, v in ci_high.items()}
    return table, ci_low, ci_high


def _having_view(
    bound: BoundQuery,
    table: Table,
    agg_columns: Dict[str, _Interval],
    key_arrays: Dict[str, np.ndarray],
) -> Table:
    """Table over which HAVING can be evaluated: agg aliases + key aliases."""
    cols: Dict[str, np.ndarray] = {}
    for alias, interval in agg_columns.items():
        cols[alias] = interval.value
    cols.update(key_arrays)
    return Table(cols)


def _order_indices(table: Table, items: List[Tuple[str, bool]]) -> np.ndarray:
    keys = []
    for name, ascending in reversed(items):
        arr = table[name]
        if arr.dtype == object:
            _, arr = np.unique(arr, return_inverse=True)
        arr = np.asarray(arr, dtype=np.float64)
        keys.append(arr if ascending else -arr)
    return np.lexsort(tuple(keys))
