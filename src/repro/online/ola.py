"""Online aggregation (Hellerstein, Haas, Wang 1997).

Instead of one answer after a long wait, OLA streams rows in random order
and keeps a running estimate with a shrinking confidence interval; the
user stops when the interval is tight enough. The trade the survey
emphasizes: the interval is only valid *at a fixed stopping time* — if
the user stops the moment the CI first looks good ("peeking"), realized
coverage drops below nominal, which experiment E13 measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from ..core.errorspec import z_value
from ..core.exceptions import PlanError
from ..engine.table import Table
from ..estimators.closed_form import ratio_from_sums, srs_sum_from_sums


@dataclass
class OLASnapshot:
    """State of a running aggregate after ``rows_seen`` rows."""

    rows_seen: int
    fraction_seen: float
    value: float
    ci_low: float
    ci_high: float

    @property
    def relative_half_width(self) -> float:
        if self.value == 0:
            return math.inf
        return (self.ci_high - self.ci_low) / 2.0 / abs(self.value)

    def covers(self, truth: float) -> bool:
        """Does the running interval contain the exact answer? Only a
        valid coverage statement at a *fixed* stopping time (see module
        docstring on peeking)."""
        return self.ci_low <= truth <= self.ci_high


class OnlineAggregator:
    """Progressive SUM/AVG/COUNT over a randomly permuted table.

    The random permutation is the statistical heart of OLA: a prefix of a
    random permutation is an SRS of the table, so SRS estimators apply at
    every step. ``mask_column``-style filtering is handled by passing a
    boolean predicate mask.
    """

    def __init__(
        self,
        table: Table,
        value_column: Optional[str],
        agg: str = "sum",
        predicate_mask: Optional[np.ndarray] = None,
        confidence: float = 0.95,
        seed: Optional[int] = None,
    ) -> None:
        if agg not in ("sum", "avg", "count"):
            raise PlanError(f"OLA supports sum/avg/count, not {agg!r}")
        if agg != "count" and value_column is None:
            raise PlanError(f"{agg} requires a value column")
        self.table = table
        values = (
            np.asarray(table[value_column], dtype=np.float64)
            if value_column is not None
            else np.ones(table.num_rows)
        )
        self._init_state(values, predicate_mask, agg, confidence, seed)

    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        agg: str = "sum",
        predicate_mask: Optional[np.ndarray] = None,
        confidence: float = 0.95,
        seed: Optional[int] = None,
    ) -> "OnlineAggregator":
        """Build an aggregator directly from a value vector.

        Identical in behaviour (including RNG consumption, so snapshots
        are bitwise-equal) to wrapping the vector in a one-column Table —
        minus the Table allocation. This is the entry point the fused
        sharded/degradation paths use for their partial-OLA answers.
        """
        if agg not in ("sum", "avg", "count"):
            raise PlanError(f"OLA supports sum/avg/count, not {agg!r}")
        self = cls.__new__(cls)
        self.table = None
        self._init_state(
            np.asarray(values, dtype=np.float64),
            predicate_mask,
            agg,
            confidence,
            seed,
        )
        return self

    def _init_state(
        self,
        values: np.ndarray,
        predicate_mask: Optional[np.ndarray],
        agg: str,
        confidence: float,
        seed: Optional[int],
    ) -> None:
        self.agg = agg
        self.confidence = confidence
        n = len(values)
        rng = np.random.default_rng(seed)
        self._order = rng.permutation(n)
        mask = (
            np.asarray(predicate_mask, dtype=bool)
            if predicate_mask is not None
            else np.ones(n, dtype=bool)
        )
        # Pre-permute so iteration is just slicing a prefix, and keep
        # running moments so every snapshot is O(1) instead of O(prefix):
        # the scalar estimators only ever need Σy, Σy², Σm, Σm² and Σy·m
        # of the prefix, all of which cumulative sums provide directly.
        self._values = np.where(mask, values, 0.0)[self._order]
        self._matches = mask[self._order].astype(np.float64)
        self._population = n
        self._cum_v = np.cumsum(self._values)
        self._cum_v2 = np.cumsum(self._values * self._values)
        self._cum_m = np.cumsum(self._matches)

    # ------------------------------------------------------------------
    def snapshot(self, rows_seen: int) -> OLASnapshot:
        """Estimate from the first ``rows_seen`` rows of the permutation."""
        n = min(max(rows_seen, 1), self._population)
        if n == 0:
            return OLASnapshot(0, 0.0, math.nan, -math.inf, math.inf)
        sum_v = float(self._cum_v[n - 1])
        sum_v2 = float(self._cum_v2[n - 1])
        sum_m = float(self._cum_m[n - 1])
        if self.agg == "sum":
            est = srs_sum_from_sums(n, self._population, sum_v, sum_v2)
        elif self.agg == "count":
            # matches are 0/1 so Σm² = Σm
            est = srs_sum_from_sums(n, self._population, sum_m, sum_m)
        else:  # avg over matching rows: ratio estimator
            # values are zeroed outside the predicate, so Σv·m = Σv.
            est = ratio_from_sums(n, sum_v, sum_m, sum_v2, sum_m, sum_v)
        lo, hi = est.ci(self.confidence)
        return OLASnapshot(
            rows_seen=n,
            fraction_seen=n / self._population,
            value=est.value,
            ci_low=lo,
            ci_high=hi,
        )

    def run(
        self,
        batch_size: int = 1000,
        target_relative_error: Optional[float] = None,
        max_fraction: float = 1.0,
        deadline=None,
    ) -> Iterator[OLASnapshot]:
        """Yield snapshots batch by batch; stop at the target CI width (if
        given), after ``max_fraction`` of the table, or when ``deadline``
        expires.

        The deadline is checked at batch boundaries and *stops* the
        stream instead of raising: whatever snapshot was last yielded is
        the progressive answer, with its honest fixed-stop CI — exactly
        the graceful behaviour the degradation ladder's partial-OLA rung
        relies on. When no explicit deadline is passed, the ambient
        :func:`repro.resilience.deadline_scope` one (if any) applies.
        """
        from ..resilience.deadline import resolve_deadline

        deadline = resolve_deadline(deadline)
        limit = int(self._population * max_fraction)
        seen = 0
        while seen < limit:
            if deadline is not None and deadline.expired:
                return
            seen = min(seen + batch_size, limit)
            snap = self.snapshot(seen)
            yield snap
            if (
                target_relative_error is not None
                and snap.relative_half_width <= target_relative_error
            ):
                return

    def run_to_target(
        self,
        target_relative_error: float,
        batch_size: int = 1000,
        deadline=None,
    ) -> OLASnapshot:
        """Convenience: iterate until the CI meets the target (or data or
        time ends). Under a tight deadline this *returns the latest
        snapshot* — possibly the first batch's — rather than raising."""
        last: Optional[OLASnapshot] = None
        for snap in self.run(
            batch_size=batch_size,
            target_relative_error=target_relative_error,
            deadline=deadline,
        ):
            last = snap
        if last is None:
            # Deadline expired before the first batch: snapshots are
            # O(1) from the prepaid cumulative sums, so answering from
            # one minimal batch is still within the grace allowance.
            last = self.snapshot(min(batch_size, self._population))
        return last


def peeking_coverage(
    population: np.ndarray,
    target_relative_error: float,
    confidence: float = 0.95,
    num_trials: int = 200,
    batch_size: int = 200,
    seed: int = 0,
) -> float:
    """Empirical coverage when stopping at the *first* time the CI looks
    good — the peeking fallacy. Returns the fraction of trials whose final
    interval contains the true sum; expect it below ``confidence``."""
    rng = np.random.default_rng(seed)
    table = Table({"v": population})
    truth = float(np.sum(population))
    hits = 0
    for trial in range(num_trials):
        ola = OnlineAggregator(
            table, "v", agg="sum", confidence=confidence,
            seed=int(rng.integers(2**31)),
        )
        snap = ola.run_to_target(target_relative_error, batch_size=batch_size)
        if snap.ci_low <= truth <= snap.ci_high:
            hits += 1
    return hits / num_trials
