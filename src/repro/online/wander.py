"""Wander join (Li, Wu, Yi, Zhao 2016): online join aggregation via
index random walks.

Ripple joins read both inputs in random order; wander join instead takes
*random walks through an index*: pick a random row of the driver table,
follow the join index to a uniformly random matching partner, and weight
the walk by the inverse of its path probability. Each walk is an unbiased
HT draw of the join aggregate, so a few thousand index probes give a CI —
no scan of either table at all. The price is the index requirement and
extra variance when join fanout is skewed, which is exactly how the
survey situates it against ripple joins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from ..core.errorspec import student_t_ppf, z_value
from ..engine.table import Table
from ..offline.sample_seek import SeekIndex, build_seek_index
from ..storage.cost import index_seek_cost


@dataclass
class WanderSnapshot:
    walks: int
    successful_walks: int
    value: float
    ci_low: float
    ci_high: float
    simulated_cost: float

    @property
    def relative_half_width(self) -> float:
        if self.value == 0:
            return math.inf
        return (self.ci_high - self.ci_low) / 2.0 / abs(self.value)


class WanderJoin:
    """Online SUM(left_measure · right_measure) over an equi-join, by
    random walks from ``left`` into an index on ``right``.

    Walk estimator: choose row ``i`` of L uniformly (prob ``1/|L|``), then
    a uniform match ``j`` among the ``d_i`` index postings (prob
    ``1/d_i``). The HT contribution ``|L| · d_i · v_i · w_j`` is unbiased
    for the join SUM; rows with no match contribute 0 (their walk
    "fails", which the estimator accounts for naturally).
    """

    def __init__(
        self,
        left: Table,
        right: Table,
        left_key: str,
        right_key: str,
        left_measure: Optional[str] = None,
        right_measure: Optional[str] = None,
        confidence: float = 0.95,
        seed: Optional[int] = None,
        index: Optional[SeekIndex] = None,
    ) -> None:
        self.rng = np.random.default_rng(seed)
        self.confidence = confidence
        self.n_left = left.num_rows
        self._lkeys = left[left_key]
        self._lvals = (
            np.asarray(left[left_measure], dtype=np.float64)
            if left_measure
            else np.ones(self.n_left)
        )
        self._rvals = (
            np.asarray(right[right_measure], dtype=np.float64)
            if right_measure
            else np.ones(right.num_rows)
        )
        self.index = index if index is not None else build_seek_index(right, right_key)
        self._draws: List[float] = []
        self._successes = 0
        self._seeks = 0

    # ------------------------------------------------------------------
    def walk(self) -> float:
        """One random walk; returns its HT contribution."""
        i = int(self.rng.integers(0, self.n_left))
        key = self._lkeys[i]
        postings = self.index.lookup(key.item() if hasattr(key, "item") else key)
        self._seeks += 1
        if len(postings) == 0:
            self._draws.append(0.0)
            return 0.0
        j = int(postings[self.rng.integers(0, len(postings))])
        contribution = (
            self.n_left * len(postings) * self._lvals[i] * self._rvals[j]
        )
        self._draws.append(float(contribution))
        self._successes += 1
        return float(contribution)

    def advance(self, walks: int = 1000) -> WanderSnapshot:
        for _ in range(walks):
            self.walk()
        return self.snapshot()

    def snapshot(self) -> WanderSnapshot:
        n = len(self._draws)
        if n == 0:
            return WanderSnapshot(0, 0, math.nan, -math.inf, math.inf, 0.0)
        draws = np.asarray(self._draws)
        mean = float(np.mean(draws))
        if n > 1:
            se = float(np.std(draws, ddof=1)) / math.sqrt(n)
        else:
            se = math.inf
        crit = (
            student_t_ppf(0.5 + self.confidence / 2.0, n - 1)
            if 1 < n < 100
            else z_value(self.confidence)
        )
        half = crit * se
        return WanderSnapshot(
            walks=n,
            successful_walks=self._successes,
            value=mean,
            ci_low=mean - half,
            ci_high=mean + half,
            simulated_cost=index_seek_cost(self._seeks).total,
        )

    def run(
        self,
        batch: int = 1000,
        target_relative_error: Optional[float] = None,
        max_walks: int = 200_000,
    ) -> Iterator[WanderSnapshot]:
        while len(self._draws) < max_walks:
            snap = self.advance(batch)
            yield snap
            if (
                target_relative_error is not None
                and snap.relative_half_width <= target_relative_error
            ):
                return
