"""Quickr-style query-time sampling (lazy approximation).

Quickr's deal, per the survey: zero precomputation, at most one pass over
the data, samplers *injected into the plan* at optimization time using
plan statistics — and in exchange, only a-posteriori error estimates (the
system reports the error it achieved; it cannot promise one upfront).

Our reimplementation keeps the decision structure:

* the sampler goes on the largest input (deepest, so one pass suffices);
* the **uniform** sampler is the default; the **distinct** sampler is
  chosen when the query groups by columns of the sampled table whose
  group count is large enough that uniform sampling would lose groups
  (Quickr's "sampler dominance" escape hatch for group coverage);
* downstream operators run unchanged on the weighted sample; estimates
  use Horvitz–Thompson weights carried in a hidden column.

Cost accounting honors the one-pass model: Quickr is charged a full scan
of the sampled table (its sampler reads everything once) plus the reduced
downstream work — which is why its speedups are real but bounded, one of
the trade-offs experiment E9 measures.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errorspec import ErrorSpec
from ..core.exceptions import InfeasiblePlanError, UnsupportedQueryError
from ..core.result import ApproximateResult
from ..engine import expressions as E
from ..engine.aggregates import AggregateSpec, encode_groups
from ..engine.optimizer import optimize_plan
from ..engine.plan import PlanNode, Scan, transform_plan
from ..engine.table import Table
from ..estimators.closed_form import Estimate
from ..sampling.distinct import distinct_sample
from ..sampling.row import bernoulli_sample
from ..sql.binder import BoundQuery, BoundTable
from ..storage.cost import aggregation_cost, scan_cost
from .estimation import (
    GroupEstimates,
    estimate_groups_row_level,
    expanded_aggregates,
    project_output_with_intervals,
)

#: Default sampling rate when the spec does not force more data. Quickr
#: picks rates from plan statistics; 10% matches its published default.
DEFAULT_RATE = 0.1

#: Use the distinct sampler once the group-by column(s) exceed this many
#: distinct values on the sampled table.
DISTINCT_SAMPLER_NDV_THRESHOLD = 50

MIN_SAMPLABLE_ROWS = 10_000


class QuickrPlanner:
    """Injects a sampler into the query plan and estimates a-posteriori."""

    def __init__(
        self,
        database,
        rate: float = DEFAULT_RATE,
        seed: Optional[int] = None,
    ) -> None:
        if not (0.0 < rate <= 1.0):
            raise ValueError("rate must be in (0, 1]")
        self.database = database
        self.rate = rate
        self.rng = np.random.default_rng(seed)
        self._temp_counter = 0

    # ------------------------------------------------------------------
    def run(self, bound: BoundQuery, spec: ErrorSpec) -> ApproximateResult:
        self._check_supported(bound)
        target = self._choose_table(bound)
        sampler_kind, sample = self._draw_sample(bound, target)
        result = self._execute_on_sample(bound, spec, target, sample, sampler_kind)
        return result

    # ------------------------------------------------------------------
    def _check_supported(self, bound: BoundQuery) -> None:
        if not bound.is_aggregate:
            raise UnsupportedQueryError("Quickr requires an aggregate query")
        for agg in bound.aggregates:
            if not agg.is_linear:
                raise UnsupportedQueryError(
                    f"Quickr cannot sample through {agg.func.upper()}"
                )

    def _choose_table(self, bound: BoundQuery) -> BoundTable:
        candidates = [t for t in bound.tables if t.num_rows >= MIN_SAMPLABLE_ROWS]
        if not candidates:
            raise InfeasiblePlanError("all inputs are too small to sample")
        return max(candidates, key=lambda t: t.num_rows)

    def _group_columns_on_target(
        self, bound: BoundQuery, target: BoundTable
    ) -> Optional[List[str]]:
        """Raw column names if every group key is a bare column of the
        sampled table; else None (distinct sampler not applicable)."""
        if not bound.group_keys:
            return None
        prefix = f"{target.alias}."
        raw: List[str] = []
        for expr, _ in bound.group_keys:
            if not isinstance(expr, E.Column) or not expr.name.startswith(prefix):
                return None
            raw.append(expr.name[len(prefix):])
        return raw

    def _draw_sample(self, bound: BoundQuery, target: BoundTable):
        table = self.database.table(target.name)
        group_cols = self._group_columns_on_target(bound, target)
        use_distinct = False
        if group_cols:
            stats = self.database.stats(target.name)
            ndv = 1
            for c in group_cols:
                col = stats.column(c)
                ndv *= col.num_distinct if col else 1
            use_distinct = ndv >= DISTINCT_SAMPLER_NDV_THRESHOLD
        if use_distinct:
            sample = distinct_sample(
                table, group_cols, self.rate, frequency_cap=10, rng=self.rng
            )
            return "distinct", sample
        return "uniform", bernoulli_sample(table, self.rate, rng=self.rng)

    # ------------------------------------------------------------------
    def _execute_on_sample(
        self,
        bound: BoundQuery,
        spec: ErrorSpec,
        target: BoundTable,
        sample,
        sampler_kind: str,
    ) -> ApproximateResult:
        weight_col = "__weight"
        temp_name = self._register_temp(sample.table.with_column(weight_col, sample.weights))
        try:
            swapped = _swap_scan(bound.pre_agg_plan, target.name, temp_name)
            pre_agg, stats = self.database.execute(
                optimize_plan(swapped, self.database), optimize=False
            )
            estimates = estimate_groups_row_level(
                bound, pre_agg, pre_agg[f"{target.alias}.{weight_col}"]
            )
            out_table, ci_low, ci_high = project_output_with_intervals(
                bound, spec, estimates
            )
        finally:
            self.database.drop_table(temp_name)
        base = self.database.table(target.name)
        one_pass = scan_cost(base.num_blocks, base.num_rows).total
        downstream = stats.simulated_cost(self.database.cost_params).cpu
        approx_cost = one_pass + downstream
        exact_cost = (
            scan_cost(base.num_blocks, base.num_rows).total
            + aggregation_cost(base.num_rows).total
        )
        met = _met_spec(bound, spec, out_table, ci_low, ci_high)
        return ApproximateResult(
            table=out_table,
            stats=stats,
            spec=spec,
            technique="quickr",
            ci_low=ci_low,
            ci_high=ci_high,
            fraction_scanned=1.0,  # one full pass, by design
            approx_cost=approx_cost,
            exact_cost=exact_cost,
            diagnostics={
                "sampler": sampler_kind,
                "rate": self.rate,
                "sampled_table": target.name,
                "sample_rows": sample.num_rows,
                "met_spec": met,
                "guarantee": "a_posteriori",
            },
        )

    def _register_temp(self, table: Table) -> str:
        self._temp_counter += 1
        name = f"__quickr_tmp_{self._temp_counter}"
        while self.database.has_table(name):
            self._temp_counter += 1
            name = f"__quickr_tmp_{self._temp_counter}"
        self.database.create_table(name, table)
        return name


def _swap_scan(plan: PlanNode, old_table: str, new_table: str) -> PlanNode:
    """Replace scans of ``old_table`` with scans of ``new_table`` keeping
    the alias (so qualified column names downstream stay valid)."""

    def rewrite(node: PlanNode):
        if isinstance(node, Scan) and node.table_name == old_table:
            return replace(node, table_name=new_table, columns=None, sample=None)
        return None

    return transform_plan(plan, rewrite)


def _met_spec(
    bound: BoundQuery,
    spec: ErrorSpec,
    table: Table,
    ci_low: Dict[str, np.ndarray],
    ci_high: Dict[str, np.ndarray],
) -> bool:
    """Did the a-posteriori CIs come in under the requested error?"""
    for alias, lows in ci_low.items():
        highs = ci_high[alias]
        values = np.asarray(table[alias], dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            half = (highs - lows) / 2.0
            rel = np.where(values != 0, half / np.abs(values), np.inf)
        if np.any(rel > spec.relative_error):
            return False
    return True
