"""The trace contract: a JSON schema every emitted span must satisfy.

:data:`SPAN_SCHEMA` is the machine-checkable half of DESIGN.md §2.13's
span taxonomy; a golden copy is committed at
``tests/golden/span_schema.json`` and the conformance suite asserts the
two never drift apart. :func:`validate_span` checks a
``Span.to_dict()`` document against it — recursively, ``children``
self-referencing the schema via ``$ref: "#"`` — and additionally
enforces :data:`REQUIRED_ATTRIBUTES`, the per-span-name attribute
contract that plain JSON Schema cannot express without a conditional
per name.

The validator is a deliberate hand-rolled subset (``type``,
``required``, ``properties``, ``additionalProperties``, ``enum``,
``pattern``, ``minimum``, ``items``, ``$ref: "#"``): the repo's only
runtime dependency is numpy, and the subset is exactly what the span
contract needs — growing it further should hurt.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

__all__ = ["SPAN_SCHEMA", "SPAN_NAME_PATTERN", "REQUIRED_ATTRIBUTES", "validate_span"]

#: every legal span name (DESIGN.md §2.13); ``shard.<i>`` is per-shard
SPAN_NAME_PATTERN = (
    r"^(query|plan|optimize|scan|kernel|ola_step|synopsis_build"
    r"|shard\.[0-9]+|degrade|retry|hedge|fault|admission|tuner_cycle)$"
)

SPAN_SCHEMA: Dict[str, Any] = {
    "$id": "repro/span",
    "title": "repro query-trace span",
    "type": "object",
    "required": [
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "duration",
        "status",
        "error",
        "attributes",
        "children",
    ],
    "additionalProperties": False,
    "properties": {
        "name": {"type": "string", "pattern": SPAN_NAME_PATTERN},
        "span_id": {"type": "integer", "minimum": 0},
        "parent_id": {"type": ["integer", "null"], "minimum": 0},
        "start": {"type": "number"},
        "end": {"type": "number"},
        "duration": {"type": "number", "minimum": 0},
        "status": {"type": "string", "enum": ["ok", "error"]},
        "error": {"type": "string"},
        "attributes": {
            "type": "object",
            "additionalProperties": {
                "type": [
                    "string",
                    "number",
                    "integer",
                    "boolean",
                    "object",
                    "array",
                    "null",
                ]
            },
        },
        "children": {"type": "array", "items": {"$ref": "#"}},
    },
}

#: attributes each span name must carry (the schema's conditional half)
REQUIRED_ATTRIBUTES: Dict[str, tuple] = {
    "query": ("engine",),
    "scan": ("table", "rows_scanned", "blocks_scanned"),
    "kernel": ("signature", "cache_hit"),
    "ola_step": ("rows_seen",),
    "synopsis_build": ("kind",),
    "shard": ("shard_status",),
    "degrade": ("rung",),
    "retry": ("site", "attempt"),
    "hedge": ("shard", "attempt"),
    "fault": ("site", "kind", "arrival", "seed"),
    "admission": ("tenant", "priority", "outcome"),
    "tuner_cycle": ("cycle", "triggered_by", "log_size"),
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": (
        lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
    ),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _check(value: Any, schema: Dict[str, Any], root: Dict[str, Any],
           path: str, errors: List[str]) -> None:
    if "$ref" in schema:
        if schema["$ref"] != "#":
            errors.append(f"{path}: unsupported $ref {schema['$ref']!r}")
            return
        _check(value, root, root, path, errors)
        return
    types = schema.get("type")
    if types is not None:
        allowed = types if isinstance(types, list) else [types]
        if not any(_TYPE_CHECKS[t](value) for t in allowed):
            errors.append(
                f"{path}: {type(value).__name__} is not of type {allowed}"
            )
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']}")
    if (
        "pattern" in schema
        and isinstance(value, str)
        and not re.search(schema["pattern"], value)
    ):
        errors.append(
            f"{path}: {value!r} does not match {schema['pattern']!r}"
        )
    if (
        "minimum" in schema
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
        and value < schema["minimum"]
    ):
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for name in schema.get("required", []):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        props = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for name, item in value.items():
            sub = f"{path}.{name}"
            if name in props:
                _check(item, props[name], root, sub, errors)
            elif additional is False:
                errors.append(f"{path}: unexpected property {name!r}")
            elif isinstance(additional, dict):
                _check(item, additional, root, sub, errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _check(item, schema["items"], root, f"{path}[{i}]", errors)


def validate_span(
    doc: Dict[str, Any], schema: Dict[str, Any] = SPAN_SCHEMA
) -> List[str]:
    """Schema violations of one span document (recursing into children).

    Returns an empty list when the span conforms. Checks the JSON schema
    first, then the per-name :data:`REQUIRED_ATTRIBUTES` contract on
    every node of the subtree.
    """
    errors: List[str] = []
    _check(doc, schema, schema, "span", errors)
    if errors:
        return errors

    def attrs(node: Dict[str, Any], path: str) -> None:
        base = re.sub(r"^shard\.[0-9]+$", "shard", node["name"])
        for required in REQUIRED_ATTRIBUTES.get(base, ()):
            if required not in node["attributes"]:
                errors.append(
                    f"{path}: span {node['name']!r} missing attribute "
                    f"{required!r}"
                )
        for i, child in enumerate(node["children"]):
            attrs(child, f"{path}.children[{i}]")

    attrs(doc, "span")
    return errors
