"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` instance serves the whole process (like the
kernel and synopsis caches), and the engine's layers feed it always-on —
incrementing an integer can never perturb a query's results, so unlike
tracing there is no off switch. The metric families (DESIGN.md §2.13):

* ``queries_total{engine,technique,rung}`` / ``queries_refused_total``
* ``deadline_misses_total{site}`` — a :class:`Deadline` checkpoint fired
* ``breaker_transitions_total{breaker,to}`` — circuit-breaker state flips
* ``retry_attempts_total{site}`` — retries beyond the first attempt
* ``shard_hedges_total`` / ``shard_outcomes_total{status}``
* ``faults_injected_total{site,kind}`` — chaos-harness firings
* ``kernel_cache_lookups_total{result}`` /
  ``synopsis_cache_lookups_total{result}`` — plus derived hit-ratio
  gauges in every snapshot

Labels render Prometheus-style (``name{k="v"}``) with sorted keys, so a
snapshot is a flat, diffable JSON object. ``snapshot()`` also folds in
the kernel-/synopsis-cache counters as gauges, which is what ``python -m
repro bench`` persists into ``BENCH_results.json`` for the cache-hit
regression check.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Optional, Tuple

__all__ = ["MetricsRegistry", "get_metrics", "set_metrics"]

_LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> _LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render(key: _LabelKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms, snapshotable to JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[_LabelKey, float] = {}
        self._gauges: Dict[_LabelKey, float] = {}
        self._histograms: Dict[_LabelKey, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one histogram observation (count/sum/min/max summary)."""
        value = float(value)
        key = _key(name, labels)
        with self._lock:
            h = self._histograms.get(key)
            if h is None:
                self._histograms[key] = {
                    "count": 1.0, "sum": value, "min": value, "max": value,
                }
            else:
                h["count"] += 1.0
                h["sum"] += value
                h["min"] = min(h["min"], value)
                h["max"] = max(h["max"], value)

    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across every label combination."""
        with self._lock:
            return sum(
                v for (n, _), v in self._counters.items() if n == name
            )

    # ------------------------------------------------------------------
    def snapshot(self, include_caches: bool = True) -> Dict[str, Any]:
        """JSON-able snapshot; optionally folds in the cache counters."""
        with self._lock:
            doc: Dict[str, Any] = {
                "counters": {
                    _render(k): v for k, v in sorted(self._counters.items())
                },
                "gauges": {
                    _render(k): v for k, v in sorted(self._gauges.items())
                },
                "histograms": {
                    _render(k): {
                        **h,
                        "mean": h["sum"] / h["count"] if h["count"] else 0.0,
                    }
                    for k, h in sorted(self._histograms.items())
                },
            }
        if include_caches:
            doc["gauges"].update(self._cache_gauges())
        return doc

    @staticmethod
    def _cache_gauges() -> Dict[str, float]:
        # Imported lazily: metrics must stay dependency-free so the
        # resilience layer can import it without cycles.
        from ..engine.kernel_cache import get_kernel_cache
        from ..storage.synopsis_cache import get_global_cache

        gauges: Dict[str, float] = {}
        for prefix, stats in (
            ("kernel_cache", get_kernel_cache().stats),
            ("synopsis_cache", get_global_cache().stats),
        ):
            for key, value in stats.as_dict().items():
                gauges[f"{prefix}_{key}"] = float(value)
        return gauges

    def to_json(self, include_caches: bool = True) -> str:
        return json.dumps(
            self.snapshot(include_caches=include_caches),
            indent=2,
            sort_keys=True,
        )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ----------------------------------------------------------------------
# Process-wide default instance
# ----------------------------------------------------------------------

_global: Optional[MetricsRegistry] = None
_global_lock = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry every layer feeds."""
    global _global
    with _global_lock:
        if _global is None:
            _global = MetricsRegistry()
        return _global


def set_metrics(registry: Optional[MetricsRegistry]) -> None:
    """Swap (or, with ``None``, reset) the process-wide registry."""
    global _global
    with _global_lock:
        _global = registry
