"""Per-query tracing: span trees threaded through every execution path.

A :class:`Tracer` collects one tree of :class:`Span` objects per query.
The taxonomy mirrors the engine's layers (DESIGN.md §2.13):

* ``query`` — the serving-layer root (AQPEngine, ResilientEngine, or
  ScatterGatherExecutor entry point);
* ``plan`` / ``optimize`` — SQL binding and plan rewriting;
* ``scan`` / ``kernel`` / ``ola_step`` / ``synopsis_build`` — leaf work:
  block scans (fused and materializing alike), kernel-cache lookups,
  online-aggregation snapshots, synopsis construction;
* ``shard.<i>`` — one subtree per shard of a scatter-gather query;
* ``degrade`` / ``retry`` / ``hedge`` / ``fault`` — resilience events:
  ladder rungs, retry attempts, straggler hedges, injected faults.

Propagation follows :func:`repro.resilience.deadline.deadline_scope`
exactly: a contextvar carries ``(tracer, current_span)`` so production
code calls the module-level :func:`span` / :func:`event` helpers without
knowing whether tracing is on. **When no tracer is installed the helpers
are no-ops** — they touch no RNG, no stats, and no clocks, which is what
keeps tracing-off runs bitwise-identical to pre-tracing behaviour (the
``test_trace_conformance`` suite pins this).

Thread pools do **not** inherit contextvars, so code that fans out to
workers (the scatter-gather executor) captures ``current_tracer()`` and
``current_span()`` before scattering and passes them explicitly:
``span("shard.0", tracer=tracer, parent=parent)`` re-roots the ambient
scope inside the worker thread.
"""

from __future__ import annotations

import contextlib
import threading
import time
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "trace_scope",
    "current_tracer",
    "current_span",
    "span",
    "event",
    "render_span_tree",
    "structural_signature",
    "tracer_signature",
]


class Span:
    """One timed, attributed node of a query's trace tree."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "status",
        "error",
        "attributes",
        "children",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.error = ""
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []

    # ------------------------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; chainable."""
        self.attributes.update(attrs)
        return self

    def fail(self, error: str) -> "Span":
        """Mark the span failed without an exception unwinding through it."""
        self.status = "error"
        self.error = error
        return self

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return max(self.end - self.start, 0.0)

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, id={self.span_id}, {self.status})"

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form; the trace schema validates exactly this shape."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": float(self.start),
            "end": float(self.end if self.end is not None else self.start),
            "duration": float(self.duration),
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }


class _NullSpan:
    """What :func:`span` yields when tracing is off: absorbs everything."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def fail(self, error: str) -> "_NullSpan":
        return self

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects the span tree(s) of one traced query (or test scenario).

    ``clock`` defaults to ``time.perf_counter``; pass a
    :class:`~repro.resilience.deadline.ManualClock` for deterministic
    span timings in tests. The tracer is thread-safe: scatter-gather
    workers append shard subtrees concurrently.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self.roots: List[Span] = []
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._next_id = 0

    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Span:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            node = Span(
                name,
                span_id,
                parent.span_id if parent is not None else None,
                float(self.clock()),
                attributes,
            )
            self.spans.append(node)
            if parent is not None:
                parent.children.append(node)
            else:
                self.roots.append(node)
            return node

    def finish_span(self, node: Span) -> None:
        node.end = float(self.clock())

    # ------------------------------------------------------------------
    def walk(self) -> Iterator[Span]:
        """Every span, in creation order."""
        return iter(list(self.spans))

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def to_dict(self) -> Dict[str, Any]:
        return {"spans": [r.to_dict() for r in self.roots]}


# ----------------------------------------------------------------------
# Ambient (contextvar) propagation — mirrors deadline_scope
# ----------------------------------------------------------------------

_SCOPE: ContextVar[Tuple[Optional[Tracer], Optional[Span]]] = ContextVar(
    "repro_trace_scope", default=(None, None)
)


@contextlib.contextmanager
def trace_scope(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Make ``tracer`` ambient for the enclosed code.

    ``trace_scope(None)`` inherits any enclosing scope (the same
    None-inherits convention as ``deadline_scope``), so wrappers can be
    written unconditionally.
    """
    prev_tracer, prev_span = _SCOPE.get()
    token = _SCOPE.set(
        (tracer if tracer is not None else prev_tracer, prev_span)
        if tracer is None
        else (tracer, None)
    )
    try:
        yield tracer if tracer is not None else prev_tracer
    finally:
        _SCOPE.reset(token)


def current_tracer() -> Optional[Tracer]:
    return _SCOPE.get()[0]


def current_span() -> Optional[Span]:
    return _SCOPE.get()[1]


@contextlib.contextmanager
def span(
    name: str,
    tracer: Optional[Tracer] = None,
    parent: Optional[Span] = None,
    **attrs: Any,
):
    """Open a span if tracing is active; yield :data:`NULL_SPAN` otherwise.

    ``tracer``/``parent`` override the ambient scope — the hook worker
    threads use to re-root under the query span captured before the
    fan-out. An exception unwinding through the span marks it
    ``status="error"`` and re-raises untouched.
    """
    active = tracer if tracer is not None else current_tracer()
    if active is None:
        yield NULL_SPAN
        return
    parent_span = parent if parent is not None else _SCOPE.get()[1]
    node = active.start_span(name, parent=parent_span, attributes=attrs)
    token = _SCOPE.set((active, node))
    try:
        yield node
    except BaseException as exc:
        node.status = "error"
        node.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        active.finish_span(node)
        _SCOPE.reset(token)


def event(
    name: str,
    tracer: Optional[Tracer] = None,
    parent: Optional[Span] = None,
    status: str = "ok",
    error: str = "",
    **attrs: Any,
) -> Optional[Span]:
    """A zero-duration span (an instant): OLA steps, faults, hedges."""
    active = tracer if tracer is not None else current_tracer()
    if active is None:
        return None
    parent_span = parent if parent is not None else _SCOPE.get()[1]
    node = active.start_span(name, parent=parent_span, attributes=attrs)
    node.status = status
    node.error = error
    active.finish_span(node)
    return node


# ----------------------------------------------------------------------
# Rendering & structural comparison
# ----------------------------------------------------------------------

#: attributes worth showing inline in the rendered tree, in order
_RENDER_ATTRS = (
    "table",
    "rung",
    "technique",
    "outcome",
    "rows_scanned",
    "blocks_scanned",
    "rows_seen",
    "cache_hit",
    "shard_status",
    "site",
    "kind",
    "attempt",
    "coverage",
)


def render_span_tree(tracer: Tracer, show_timing: bool = True) -> str:
    """Human-readable indented rendering of every root's subtree."""
    lines: List[str] = []

    def walk(node: Span, depth: int) -> None:
        mark = "x" if node.status == "error" else "+"
        parts = [f"{'  ' * depth}{mark} {node.name}"]
        if show_timing:
            parts.append(f"{node.duration * 1e3:.2f}ms")
        for key in _RENDER_ATTRS:
            if key in node.attributes:
                parts.append(f"{key}={node.attributes[key]}")
        if node.error:
            parts.append(f"error={node.error}")
        lines.append("  ".join(parts))
        for child in node.children:
            walk(child, depth + 1)

    for root in tracer.roots:
        walk(root, 0)
    return "\n".join(lines)


def structural_signature(
    node: Span,
    ignore: Tuple[str, ...] = (),
    collapse_shards: bool = False,
) -> Tuple:
    """Shape of a span subtree, for differential trace comparison.

    Two execution paths are *structurally equivalent* when they emit the
    same tree of span names and statuses. ``ignore`` drops span names
    one path legitimately adds (the fused executor's ``kernel`` span has
    no materializing counterpart); ``collapse_shards`` folds every
    ``shard.<i>`` subtree into a single ``shard.*`` leaf so sharded and
    single-node runs of the same query can be compared at the query
    level.
    """
    name = node.name
    if collapse_shards and name.startswith("shard."):
        return ("shard.*", node.status, ())
    children: List[Tuple] = []
    for child in node.children:
        sig = structural_signature(child, ignore, collapse_shards)
        if child.name in ignore:
            # Splice the ignored span out, keeping its children in place.
            children.extend(sig[2])
        elif (
            collapse_shards
            and sig[0] == "shard.*"
            and children
            and children[-1] == sig
        ):
            continue  # fold N identical shard subtrees into one leaf
        else:
            children.append(sig)
    return (name, node.status, tuple(children))


def tracer_signature(
    tracer: Tracer,
    ignore: Tuple[str, ...] = (),
    collapse_shards: bool = False,
) -> Tuple:
    """Signature of a whole trace — ``ignore`` applies to roots too.

    Code driven below the serving layer (``db.execute`` directly) emits
    its spans as *roots*; :func:`structural_signature` only splices
    ignored names out of child positions, so this wrapper handles the
    root level the same way and folds consecutive identical collapsed
    shard roots.
    """
    sigs: List[Tuple] = []
    for root in tracer.roots:
        sig = structural_signature(root, ignore, collapse_shards)
        if root.name in ignore:
            sigs.extend(sig[2])
        elif (
            collapse_shards
            and sig[0] == "shard.*"
            and sigs
            and sigs[-1] == sig
        ):
            continue
        else:
            sigs.append(sig)
    return tuple(sigs)
