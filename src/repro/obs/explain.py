"""``EXPLAIN`` / ``EXPLAIN ANALYZE`` front-end support.

``EXPLAIN <sql>`` returns the optimized plan text (what
:meth:`Database.explain` always produced); ``EXPLAIN ANALYZE <sql>``
*runs* the query under a fresh :class:`~repro.obs.trace.Tracer` and
returns an :class:`ExplainResult` bundling the real result, the span
tree, and a rendered transcript — the same rendering ``python -m repro
trace <sql>`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.result import ResultEnvelope
from .trace import Tracer, render_span_tree, trace_scope

__all__ = ["ExplainResult", "run_explain_analyze"]


@dataclass
class ExplainResult(ResultEnvelope):
    """What ``EXPLAIN ANALYZE`` hands back: answer + trace + transcript.

    Carries the full result envelope (``value()``/``ci()``/
    ``provenance``/``stats``/``to_dict()``) by delegating to the wrapped
    answer, so ``EXPLAIN ANALYZE`` output is consumable anywhere a plain
    result is.
    """

    sql: str
    result: Any
    tracer: Tracer
    plan_text: str = ""
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def table(self):
        """The underlying result table (EXPLAIN ANALYZE still answers)."""
        return self.result.table

    # -- envelope delegation (see repro.core.result.ResultEnvelope) ----
    @property
    def stats(self):
        return self.result.stats

    @property
    def provenance(self):
        return self.result.provenance

    @property
    def ci_low(self):
        return getattr(self.result, "ci_low", {})

    @property
    def ci_high(self):
        return getattr(self.result, "ci_high", {})

    @property
    def technique(self):
        return getattr(self.result, "technique", "exact")

    @property
    def is_approximate(self):
        return getattr(self.result, "is_approximate", False)

    def scalar(self) -> float:
        return self.result.scalar()

    def render(self, show_timing: bool = True) -> str:
        lines = [f"EXPLAIN ANALYZE {self.sql}"]
        if self.plan_text:
            lines.append("")
            lines.append("plan:")
            lines.extend("  " + l for l in self.plan_text.splitlines())
        lines.append("")
        lines.append("trace:")
        tree = render_span_tree(self.tracer, show_timing=show_timing)
        lines.extend("  " + l for l in tree.splitlines())
        stats = getattr(self.result, "stats", None)
        if stats is not None:
            lines.append("")
            cost = stats.simulated_cost().total
            lines.append(
                f"cost: {cost:.1f} work units  "
                f"rows_scanned={stats.rows_scanned}  "
                f"blocks_scanned={stats.blocks_scanned}  "
                f"rows_output={stats.rows_output}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def run_explain_analyze(
    database,
    sql: str,
    options=None,
    tracer: Optional[Tracer] = None,
    **aqp_options,
) -> ExplainResult:
    """Execute ``sql`` under a tracer and package the transcript.

    ``sql`` here is the *inner* query (the ``EXPLAIN ANALYZE`` prefix
    already stripped by :func:`repro.sql.parser.split_explain`).
    ``options`` is a :class:`~repro.core.options.QueryOptions`; legacy
    keywords (``seed=...``) still work through the deprecation shim.
    """
    from ..core.options import resolve_options

    options = resolve_options(
        options, aqp_options, entry="run_explain_analyze()"
    )
    tracer = tracer if tracer is not None else Tracer()
    with trace_scope(tracer):
        result = database.sql(sql, options=options)
    try:
        plan_text = database.explain(sql)
    except Exception:  # plans exist only for plannable queries
        plan_text = getattr(result, "plan_text", "")
    return ExplainResult(
        sql=sql, result=result, tracer=tracer, plan_text=plan_text
    )
