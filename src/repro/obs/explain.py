"""``EXPLAIN`` / ``EXPLAIN ANALYZE`` front-end support.

``EXPLAIN <sql>`` returns the optimized plan text (what
:meth:`Database.explain` always produced); ``EXPLAIN ANALYZE <sql>``
*runs* the query under a fresh :class:`~repro.obs.trace.Tracer` and
returns an :class:`ExplainResult` bundling the real result, the span
tree, and a rendered transcript — the same rendering ``python -m repro
trace <sql>`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .trace import Tracer, render_span_tree, trace_scope

__all__ = ["ExplainResult", "run_explain_analyze"]


@dataclass
class ExplainResult:
    """What ``EXPLAIN ANALYZE`` hands back: answer + trace + transcript."""

    sql: str
    result: Any
    tracer: Tracer
    plan_text: str = ""
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def table(self):
        """The underlying result table (EXPLAIN ANALYZE still answers)."""
        return self.result.table

    def render(self, show_timing: bool = True) -> str:
        lines = [f"EXPLAIN ANALYZE {self.sql}"]
        if self.plan_text:
            lines.append("")
            lines.append("plan:")
            lines.extend("  " + l for l in self.plan_text.splitlines())
        lines.append("")
        lines.append("trace:")
        tree = render_span_tree(self.tracer, show_timing=show_timing)
        lines.extend("  " + l for l in tree.splitlines())
        stats = getattr(self.result, "stats", None)
        if stats is not None:
            lines.append("")
            cost = stats.simulated_cost().total
            lines.append(
                f"cost: {cost:.1f} work units  "
                f"rows_scanned={stats.rows_scanned}  "
                f"blocks_scanned={stats.blocks_scanned}  "
                f"rows_output={stats.rows_output}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def run_explain_analyze(
    database,
    sql: str,
    seed: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    **aqp_options,
) -> ExplainResult:
    """Execute ``sql`` under a tracer and package the transcript.

    ``sql`` here is the *inner* query (the ``EXPLAIN ANALYZE`` prefix
    already stripped by :func:`repro.sql.parser.split_explain`).
    """
    tracer = tracer if tracer is not None else Tracer()
    with trace_scope(tracer):
        result = database.sql(sql, seed=seed, **aqp_options)
    try:
        plan_text = database.explain(sql)
    except Exception:  # plans exist only for plannable queries
        plan_text = getattr(result, "plan_text", "")
    return ExplainResult(
        sql=sql, result=result, tracer=tracer, plan_text=plan_text
    )
