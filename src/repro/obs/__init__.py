"""Query-lifecycle observability: tracing, metrics, EXPLAIN ANALYZE.

Three pieces (DESIGN.md §2.13):

* :mod:`~repro.obs.trace` — :class:`Tracer` span trees threaded through
  every execution path via a contextvar (``trace_scope``), off by
  default and bitwise-invisible when off;
* :mod:`~repro.obs.metrics` — the process-wide :class:`MetricsRegistry`
  of always-on counters/gauges/histograms, snapshotable to JSON;
* :mod:`~repro.obs.schema` — the committed JSON schema every emitted
  span must validate against (the trace-conformance suite's contract).

``EXPLAIN ANALYZE`` support lives in :mod:`~repro.obs.explain`, which is
imported lazily by the SQL front-end (it reaches back into the engine,
so importing it here would cycle).
"""

from .metrics import MetricsRegistry, get_metrics, set_metrics
from .schema import REQUIRED_ATTRIBUTES, SPAN_SCHEMA, validate_span
from .trace import (
    Span,
    Tracer,
    current_span,
    current_tracer,
    event,
    render_span_tree,
    span,
    structural_signature,
    trace_scope,
    tracer_signature,
)

__all__ = [
    "Span",
    "Tracer",
    "trace_scope",
    "current_tracer",
    "current_span",
    "span",
    "event",
    "render_span_tree",
    "structural_signature",
    "tracer_signature",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "SPAN_SCHEMA",
    "REQUIRED_ATTRIBUTES",
    "validate_span",
]
