"""Deterministic fault injection.

The chaos suite needs real failures in real places — synopsis builders
that throw, cache entries that vanish mid-query, blocks that read
slowly, sample metadata that comes back corrupted — and it needs the
exact same failures on every run of a given seed. This module provides
that: production code calls :func:`maybe_fault(site)` at its hazard
points (a no-op when no injector is installed), and tests install a
:class:`FaultInjector` whose decisions are a pure function of
``(seed, site, arrival_index)``.

Fault kinds:

* ``"error"``   — raise (:class:`InjectedFault` by default, or any
  exception type the spec names) at the site;
* ``"slow"``    — advance the injector's clock by ``delay`` seconds,
  simulating a slow block/build under a ManualClock deadline;
* ``"evict"``   — tell the site to drop its cached state first
  (synopsis cache uses this to model eviction mid-query);
* ``"corrupt"`` — tell the site its metadata failed validation
  (the ladder treats the synopsis as unusable).

``"error"`` faults raise from inside :func:`maybe_fault`; ``"evict"`` /
``"corrupt"`` are *returned* as markers because only the site knows how
to act on them. ``"slow"`` is handled entirely by the injector.

**Concurrency.** A single arrival counter per site would make fault
decisions depend on the thread schedule: two queries racing through the
same site would swap arrival indices from run to run, and with them the
RNG draws. The serving layer therefore wraps each query in
:func:`query_scope`, and when a query id is ambient the injector keys
both the arrival counter and the probability draw on
``splitmix64(seed, site, query_id, arrival)`` — a pure function of the
query, not of the interleaving — so the same fault schedule replays
exactly no matter how many worker threads execute it. Without a query
scope the legacy process-global counters apply unchanged.
"""

from __future__ import annotations

import contextlib
import threading
import zlib
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Type

import numpy as np

from ..core.exceptions import InjectedFault
from .deadline import ManualClock

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "get_injector",
    "install_injector",
    "inject",
    "maybe_fault",
    "query_scope",
    "current_query_id",
    "splitmix64",
    "shard_site",
    "kill_shard",
    "slow_shard",
    "corrupt_shard",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF


def splitmix64(*words: int) -> int:
    """Mix integer words into one 64-bit value (pure, schedule-free).

    The splitmix64 finalizer applied over a running state absorbing each
    word — the same construction the vectorized sketch hashes use, kept
    in pure ints here so fault/jitter derivation never touches numpy's
    stateful generators.
    """
    state = 0x9E3779B97F4A7C15
    for word in words:
        state = (state ^ (int(word) & _MASK64)) * 0xBF58476D1CE4E5B9 & _MASK64
        state = (state + 0x9E3779B97F4A7C15) & _MASK64
        state = ((state ^ (state >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        state = ((state ^ (state >> 27)) * 0x94D049BB133111EB) & _MASK64
        state = (state ^ (state >> 31)) & _MASK64
    return state


def splitmix_uniform(*words: int) -> float:
    """A U[0,1) draw that is a pure function of its words."""
    return splitmix64(*words) / float(1 << 64)


# ----------------------------------------------------------------------
# Ambient query identity (set by the serving layer per admitted query)
# ----------------------------------------------------------------------

_QUERY_ID: ContextVar[Optional[int]] = ContextVar(
    "repro_query_id", default=None
)


@contextlib.contextmanager
def query_scope(query_id: Optional[int]) -> Iterator[None]:
    """Make ``query_id`` ambient for the enclosed code.

    The fault injector and retry jitter key their RNG draws on the
    ambient query id when one is set, which is what decouples chaos
    determinism from thread scheduling. ``None`` inherits any enclosing
    scope (mirroring :func:`repro.resilience.deadline.deadline_scope`).
    """
    prev = _QUERY_ID.get()
    token = _QUERY_ID.set(query_id if query_id is not None else prev)
    try:
        yield
    finally:
        _QUERY_ID.reset(token)


def current_query_id() -> Optional[int]:
    return _QUERY_ID.get()


@dataclass
class FaultSpec:
    """One scheduled fault family at one site.

    ``probability`` is evaluated per arrival with a deterministic RNG
    keyed on (injector seed, site, arrival index); ``after`` skips the
    first N arrivals (let the system warm up, then break it);
    ``max_fires`` caps total firings (a transient outage, not a
    permanent one).
    """

    site: str
    kind: str = "error"  # error | slow | evict | corrupt
    probability: float = 1.0
    after: int = 0
    max_fires: Optional[int] = None
    delay: float = 0.0  # for kind="slow"
    error_type: Type[BaseException] = InjectedFault
    message: str = ""
    fires: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("error", "slow", "evict", "corrupt"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")


class FaultInjector:
    """Replays a seeded fault schedule against named sites."""

    def __init__(
        self,
        specs: Optional[List[FaultSpec]] = None,
        seed: int = 0,
        clock: Optional[ManualClock] = None,
    ) -> None:
        self.specs: List[FaultSpec] = list(specs or [])
        self.seed = seed
        self.clock = clock
        self._arrivals: dict = {}
        #: (site, kind, arrival_index) of every fault that fired
        self.fired: List[Tuple[str, str, int]] = []
        #: (site, kind, query_id, arrival) — the schedule-free view the
        #: concurrency determinism tests compare as a *set* (list order
        #: still depends on thread interleaving; membership must not)
        self.fired_by_query: List[Tuple[str, str, Optional[int], int]] = []
        self._lock = threading.Lock()

    def add(self, spec: FaultSpec) -> "FaultInjector":
        self.specs.append(spec)
        return self

    # ------------------------------------------------------------------
    def _decide(
        self,
        spec: FaultSpec,
        site: str,
        arrival: int,
        query_id: Optional[int],
    ) -> bool:
        if arrival < spec.after:
            return False
        if spec.max_fires is not None and spec.fires >= spec.max_fires:
            return False
        if spec.probability >= 1.0:
            return True
        if query_id is not None:
            # Pure function of (seed, site, query, arrival-within-query):
            # immune to thread scheduling by construction.
            u = splitmix_uniform(
                self.seed,
                zlib.crc32(site.encode("utf-8")),
                query_id,
                arrival,
            )
        else:
            ss = np.random.SeedSequence(
                [self.seed, zlib.crc32(site.encode("utf-8")), arrival]
            )
            u = np.random.default_rng(ss).random()
        return bool(u < spec.probability)

    def arrive(self, site: str) -> Optional[str]:
        """Record an arrival at ``site``; fire at most one fault.

        Returns ``"evict"`` / ``"corrupt"`` markers for the site to act
        on, ``None`` when nothing fired, and raises for error faults.
        Slow faults advance the clock and return ``None`` (the slowdown
        is visible only through the deadline).

        Arrivals are counted per ``(site, ambient query id)`` so that,
        under the serving layer's :func:`query_scope`, a query's fault
        schedule is independent of what other queries do concurrently.
        With no ambient query id the counter is process-global per site
        (the original single-threaded behaviour, unchanged).
        """
        query_id = current_query_id()
        counter_key = site if query_id is None else (site, query_id)
        with self._lock:
            arrival = self._arrivals.get(counter_key, 0)
            self._arrivals[counter_key] = arrival + 1
            for spec in self.specs:
                if spec.site != site:
                    continue
                if not self._decide(spec, site, arrival, query_id):
                    continue
                spec.fires += 1
                self.fired.append((site, spec.kind, arrival))
                self.fired_by_query.append(
                    (site, spec.kind, query_id, arrival)
                )
                self._record(site, spec.kind, arrival)
                if spec.kind == "slow":
                    if self.clock is not None:
                        self.clock.advance(spec.delay)
                    return None
                if spec.kind in ("evict", "corrupt"):
                    return spec.kind
                # kind == "error"
                message = spec.message or (
                    f"injected fault at {site} (arrival {arrival})"
                )
                if spec.error_type is InjectedFault:
                    raise InjectedFault(message, site=site)
                raise spec.error_type(message)
        return None

    def _record(self, site: str, kind: str, arrival: int) -> None:
        """Every firing is a failed ``fault`` span + a chaos metric.

        The span is marked ``status="error"`` for *all* kinds — a fired
        fault is an injected failure of the site even when the site
        absorbs it (slow/evict/corrupt) — and carries the injector seed,
        which is what lets the chaos suite tie a trace back to the exact
        schedule that produced it.
        """
        from ..obs.metrics import get_metrics
        from ..obs.trace import event

        event(
            "fault",
            status="error",
            error=f"injected:{kind}",
            site=site,
            kind=kind,
            arrival=arrival,
            seed=self.seed,
        )
        get_metrics().inc("faults_injected_total", site=site, kind=kind)

    def fired_at(self, site: str) -> int:
        return sum(1 for s, _, _ in self.fired if s == site)


# ----------------------------------------------------------------------
# Global installation point
# ----------------------------------------------------------------------

_installed: Optional[FaultInjector] = None


def get_injector() -> Optional[FaultInjector]:
    return _installed


def install_injector(injector: Optional[FaultInjector]) -> None:
    global _installed
    _installed = injector


@contextlib.contextmanager
def inject(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` globally for the duration of the block."""
    previous = _installed
    install_injector(injector)
    try:
        yield injector
    finally:
        install_injector(previous)


def maybe_fault(site: str) -> Optional[str]:
    """The hook production code calls at hazard points.

    Free when no injector is installed. Returns an action marker
    (``"evict"`` / ``"corrupt"``) or ``None``; raises for error faults.
    """
    injector = _installed
    if injector is None:
        return None
    return injector.arrive(site)


# ----------------------------------------------------------------------
# Shard-level fault sites (see repro.sharding.executor)
# ----------------------------------------------------------------------

def shard_site(shard_id: int, op: str) -> str:
    """Canonical fault-site name for a shard operation.

    The scatter-gather executor arrives at ``shard.<i>.exec`` when a
    primary attempt starts, ``shard.<i>.hedge`` when a hedged attempt
    starts, and ``shard.<i>.scan`` at every block/batch boundary of the
    shard's scan.
    """
    return f"shard.{shard_id}.{op}"


def kill_shard(shard_id: int, **overrides) -> FaultSpec:
    """A shard that is simply gone: every attempt against it errors."""
    defaults = dict(
        site=shard_site(shard_id, "exec"),
        kind="error",
        message=f"shard {shard_id} unreachable",
    )
    defaults.update(overrides)
    return FaultSpec(**defaults)


def slow_shard(shard_id: int, delay: float, **overrides) -> FaultSpec:
    """A straggler: each scan boundary costs ``delay`` extra seconds."""
    defaults = dict(
        site=shard_site(shard_id, "scan"), kind="slow", delay=delay
    )
    defaults.update(overrides)
    return FaultSpec(**defaults)


def corrupt_shard(shard_id: int, **overrides) -> FaultSpec:
    """A shard whose data fails checksum validation on read."""
    defaults = dict(site=shard_site(shard_id, "exec"), kind="corrupt")
    defaults.update(overrides)
    return FaultSpec(**defaults)
