"""The degradation ladder: every query ends in an answer or a typed refusal.

:class:`ResilientEngine` wraps :class:`~repro.core.session.AQPEngine`'s
machinery with the serving-layer behaviour the survey's middleware
systems (VerdictDB, BlinkDB's driver) all grew in production: when the
requested technique fails — builder exception, stale synopsis, blown
deadline, infeasible spec — the query *falls through an explicit policy
chain* instead of aborting:

1. **requested** — the forced technique, or the advisor's approximate
   preference chain (offline → pilot → quickr);
2. **stale_synopsis** — a cached synopsis that failed the freshness
   gate, with error bars widened by the staleness drift bound;
3. **cheaper_technique** — query-time sampling that needs no
   precomputation (quickr, then pilot);
4. **partial_ola** — whatever online-aggregation snapshot fits in the
   remaining deadline, reported with its honest CI;
5. **exact_no_guarantee** — exact execution, dropping the error
   contract entirely (there is an answer, there is no speedup);
6. **refusal** — a typed :class:`~repro.core.exceptions.QueryRefused`
   carrying the full provenance of every rung that was tried.

Every step lands in the result's ``provenance`` list, every degraded
answer is announced with a :class:`DegradedAnswer` warning, and every
rung runs under the query's :class:`Deadline`/:class:`ResourceBudget`
through the ambient scope — so the ladder's invariants (terminate by
deadline + grace, never claim a guarantee a degraded answer cannot
honor, complete provenance) hold by construction and are swept by the
chaos suite.

**Widening rule** (rung 2). A sample built when the table had ``b`` rows
answers a table that now has ``r`` rows; let ``s = |r - b| / b`` be the
staleness. If growth is append-like (new rows exchangeable with old),
the true aggregate drifts from the synopsis-time target by at most
``≈ s·|value|`` in relative terms, so the ladder reports

    half_width' = half_width · (1 + s) + s · |value|

which covers both the original sampling error (inflated by the same
growth) and the drift. The ``degraded_stale_widened`` audit path
replays this rung against an exact oracle to verify the widened CIs
still cover at the claimed rate.
"""

from __future__ import annotations

import math
import threading
import warnings
from dataclasses import replace
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.advisor import Advisor
from ..core.errorspec import ErrorSpec
from ..core.exceptions import (
    BudgetExhausted,
    DeadlineExceeded,
    DegradedAnswer,
    InfeasiblePlanError,
    InjectedFault,
    QueryRefused,
    ReproError,
    SynopsisUnavailable,
    UnsupportedQueryError,
)
from ..core.result import ApproximateResult, QueryResult
from ..engine.executor import ExecutionStats
from ..engine.fused import SliceRelation
from ..engine.optimizer import optimize_plan
from ..engine.table import Table
from ..obs.metrics import get_metrics
from ..obs.trace import event, span
from ..offline.catalog import SynopsisCatalog
from ..online.ola import OnlineAggregator
from ..sql.binder import BoundQuery, bind_sql
from .deadline import Deadline, ResourceBudget, deadline_scope
from .faults import maybe_fault
from .retry import CircuitBreaker, RetryPolicy

__all__ = ["ResilientEngine", "LADDER_RUNGS", "RESHARD_RUNG"]

#: rung names in fall-through order (documentation + provenance schema)
LADDER_RUNGS = (
    "requested",
    "stale_synopsis",
    "cheaper_technique",
    "partial_ola",
    "exact_no_guarantee",
)

#: provenance rung used by the scatter-gather executor when an answer is
#: assembled from k-of-n shards with CIs widened for the missing ones —
#: the multi-shard analogue of ``stale_synopsis`` widening (DESIGN.md
#: §2.11). Not part of the single-node fall-through order above.
RESHARD_RUNG = "reshard_degraded"

#: failures worth retrying: injected/environmental, not planner refusals
_TRANSIENT = (InjectedFault, OSError, MemoryError, ConnectionError)

#: cap on the staleness used for widening — past this the synopsis
#: describes a different table and the rung refuses instead of widening
_MAX_WIDEN_STALENESS = 4.0


def _step(
    rung: str,
    outcome: str,
    detail: str = "",
    error: Optional[BaseException] = None,
    degraded: bool = False,
    technique: str = "",
) -> Dict[str, object]:
    """One provenance record. ``outcome`` ∈ ok|failed|skipped."""
    return {
        "rung": rung,
        "outcome": outcome,
        "detail": detail,
        "error": f"{type(error).__name__}: {error}" if error else "",
        "degraded": degraded,
        "technique": technique,
    }


class ResilientEngine:
    """Deadline-bounded, degradation-aware query serving over a Database.

    Parameters
    ----------
    database:
        The :class:`~repro.engine.database.Database` to serve.
    retry:
        Policy for transient failures on the synopsis-backed rungs
        (requested / stale). Defaults to 2 attempts with seeded jitter.
    breaker_threshold / breaker_cooldown:
        Per-rung circuit breakers: after this many consecutive transient
        failures a rung is skipped outright (the ladder moves on) until
        the cooldown half-opens it.
    warn_on_degrade:
        Emit a :class:`DegradedAnswer` warning whenever an answer comes
        from below the requested rung.
    """

    def __init__(
        self,
        database,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: int = 2,
        warn_on_degrade: bool = True,
    ) -> None:
        self.database = database
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy(max_attempts=2, seed=0, retry_on=_TRANSIENT)
        )
        self._one_shot = RetryPolicy(
            max_attempts=1, jitter=0.0, seed=0, retry_on=_TRANSIENT
        )
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self.warn_on_degrade = warn_on_degrade

    # ------------------------------------------------------------------
    def breaker(self, rung: str) -> CircuitBreaker:
        with self._breakers_lock:
            if rung not in self.breakers:
                self.breakers[rung] = CircuitBreaker(
                    failure_threshold=self._breaker_threshold,
                    cooldown=self._breaker_cooldown,
                    name=f"ladder.{rung}",
                )
            return self.breakers[rung]

    # ------------------------------------------------------------------
    def sql(self, query: str, options: Optional[QueryOptions] = None, **kwargs):
        """Serve one query through the degradation ladder.

        Returns a :class:`QueryResult` or :class:`ApproximateResult`
        whose ``provenance`` records every rung tried; raises
        :class:`QueryRefused` (with the same provenance) only when every
        rung failed or the deadline left nothing runnable.

        ``options`` is a :class:`~repro.core.options.QueryOptions`;
        legacy per-field keywords still work via the deprecation shim.
        ``options.entry_rung`` starts the fall-through at a lower rung
        than ``requested`` — the overload controller's lever: under load
        the serving layer shrinks the entry rung *fleet-wide* so
        accuracy degrades before availability does. Rungs skipped this
        way are recorded in provenance with ``shed_to=<rung>`` so a
        degraded answer is always distinguishable from a failed one. An
        ``entry_rung`` that does not apply to this query (e.g. a
        spec-less query whose only rung is exact) is ignored rather
        than refused: shedding must never make a query less servable.
        """
        from ..core.options import maybe_trace, resolve_options
        from ..tuner.workload import observe_query

        options = resolve_options(options, kwargs, entry="ResilientEngine.sql()")
        seed, spec, technique = options.seed, options.spec, options.technique
        pilot_rate = options.pilot_rate
        deadline, budget = options.deadline, options.budget
        entry_rung = options.entry_rung
        if entry_rung is not None and entry_rung not in LADDER_RUNGS:
            raise ValueError(
                f"unknown entry rung {entry_rung!r} (expected one of "
                f"{LADDER_RUNGS})"
            )
        with maybe_trace(options), span(
            "query", engine="ladder", sql=query.strip()[:200]
        ) as qsp:
            with deadline_scope(deadline, budget):
                bound = bind_sql(query, self.database)
            if spec is None and bound.error_spec is not None:
                spec = ErrorSpec(
                    relative_error=bound.error_spec.relative_error,
                    confidence=bound.error_spec.confidence,
                )
            provenance: List[Dict[str, object]] = []
            rungs = self._build_rungs(
                bound, spec, seed, technique, pilot_rate, deadline, budget
            )
            rung_names = [r[0] for r in rungs]
            if entry_rung in rung_names and rung_names.index(entry_rung) > 0:
                shed_index = rung_names.index(entry_rung)
                for name, *_ in rungs[:shed_index]:
                    step = _step(
                        name, "skipped", detail=f"shed_to={entry_rung}"
                    )
                    step["shed_to"] = entry_rung
                    provenance.append(step)
                    event(
                        "degrade",
                        rung=name,
                        outcome="skipped",
                        detail=f"shed_to={entry_rung}",
                    )
                rungs = rungs[shed_index:]
                get_metrics().inc(
                    "queries_shed_total", engine="ladder", shed_to=entry_rung
                )
                qsp.set(shed_to=entry_rung)
            for name, fn, retryable, cheap_when_expired, degrades in rungs:
                if (
                    deadline is not None
                    and deadline.expired
                    and not cheap_when_expired
                ):
                    provenance.append(
                        _step(name, "skipped", detail="deadline expired")
                    )
                    event(
                        "degrade",
                        rung=name,
                        outcome="skipped",
                        detail="deadline expired",
                    )
                    continue
                def _guarded(name=name, fn=fn):
                    # The fault hook runs inside the retry/breaker wrapper so
                    # injected rung failures are retried like any transient
                    # error and feed the rung's circuit breaker.
                    maybe_fault(f"ladder.{name}")
                    return fn()

                try:
                    with span("degrade", rung=name) as rsp:
                        result = self._attempt(
                            name,
                            _guarded,
                            retryable,
                            deadline,
                            cheap_when_expired,
                        )
                        rsp.set(outcome="ok")
                except DeadlineExceeded as exc:
                    provenance.append(
                        _step(name, "failed", detail="deadline", error=exc)
                    )
                    continue
                except BudgetExhausted as exc:
                    provenance.append(
                        _step(name, "failed", detail="budget", error=exc)
                    )
                    continue
                except (UnsupportedQueryError, InfeasiblePlanError) as exc:
                    provenance.append(
                        _step(name, "failed", detail="not applicable", error=exc)
                    )
                    continue
                except SynopsisUnavailable as exc:
                    provenance.append(
                        _step(name, "failed", detail="synopsis unavailable", error=exc)
                    )
                    continue
                except ReproError as exc:
                    provenance.append(_step(name, "failed", error=exc))
                    continue
                except Exception as exc:  # a bug or injected chaos: degrade, don't die
                    provenance.append(
                        _step(name, "failed", detail="unexpected", error=exc)
                    )
                    continue
                degraded = degrades and len(provenance) > 0
                provenance.append(
                    _step(
                        name,
                        "ok",
                        degraded=degraded,
                        technique=getattr(result, "technique", "exact"),
                        detail=self._describe(result),
                    )
                )
                result.provenance = provenance
                served_technique = str(provenance[-1]["technique"])
                qsp.set(
                    rung=name,
                    technique=served_technique,
                    degraded=degraded,
                    stats=result.stats.to_dict(),
                )
                get_metrics().inc(
                    "queries_total",
                    engine="ladder",
                    rung=name,
                    technique=served_technique,
                )
                if degraded and self.warn_on_degrade:
                    warnings.warn(
                        DegradedAnswer(
                            f"query served from degraded rung {name!r}: "
                            f"{provenance[-1]['detail']}"
                        ),
                        stacklevel=2,
                    )
                observe_query(bound, options.replace(spec=spec), result)
                return result
            get_metrics().inc("queries_refused_total", engine="ladder")
            raise QueryRefused(
                "every rung of the degradation ladder failed: "
                + "; ".join(
                    f"{p['rung']}={p['outcome']}" for p in provenance
                ),
                provenance=provenance,
            )

    # ------------------------------------------------------------------
    def _attempt(
        self,
        name: str,
        fn: Callable[[], object],
        retryable: bool,
        deadline: Optional[Deadline],
        cheap_when_expired: bool = False,
    ):
        policy = self.retry if retryable else self._one_shot
        # Cheap rungs must still run after expiry (that is their point),
        # so the pre-attempt deadline check is suppressed — the rung's
        # own loop observes the deadline and stops gracefully.
        return policy.call(
            fn,
            site=name,
            deadline=None if cheap_when_expired else deadline,
            breaker=self.breaker(name),
        )

    @staticmethod
    def _describe(result) -> str:
        if isinstance(result, ApproximateResult):
            return (
                f"technique={result.technique} spec={result.spec} "
                f"scanned={result.fraction_scanned:.2%}"
            )
        return "exact answer"

    # ------------------------------------------------------------------
    def _build_rungs(
        self,
        bound: BoundQuery,
        spec: Optional[ErrorSpec],
        seed: Optional[int],
        technique: Optional[str],
        pilot_rate: float,
        deadline: Optional[Deadline],
        budget: Optional[ResourceBudget],
    ):
        """(name, fn, retryable, cheap_when_expired, degrades) tuples."""
        if spec is None:
            # No error contract: exact is the requested rung, the ladder
            # only protects termination (deadline/budget + refusal).
            return [
                (
                    "exact_no_guarantee",
                    lambda: self._run_exact(bound, seed, deadline, budget),
                    False,
                    False,
                    False,
                ),
            ]
        return [
            (
                "requested",
                lambda: self._run_requested(
                    bound, spec, seed, technique, pilot_rate, deadline, budget
                ),
                True,
                False,
                False,
            ),
            (
                "stale_synopsis",
                lambda: self._run_stale(bound, spec, seed, deadline, budget),
                True,
                False,
                True,
            ),
            (
                "cheaper_technique",
                lambda: self._run_cheaper(
                    bound, spec, seed, technique, pilot_rate, deadline, budget
                ),
                False,
                False,
                True,
            ),
            (
                "partial_ola",
                lambda: self._run_partial_ola(
                    bound, spec, seed, deadline, budget
                ),
                False,
                True,  # cheap: snapshots are O(1) once built
                True,
            ),
            (
                "exact_no_guarantee",
                lambda: self._run_exact(bound, seed, deadline, budget),
                False,
                False,
                True,
            ),
        ]

    # ------------------------------------------------------------------
    # Rung implementations
    # ------------------------------------------------------------------
    def _run_requested(
        self, bound, spec, seed, technique, pilot_rate, deadline, budget
    ):
        advisor = Advisor(self.database)
        with deadline_scope(deadline, budget):
            if technique is not None:
                return advisor.run(
                    bound,
                    spec,
                    seed=seed,
                    force_technique=technique,
                    pilot_rate=pilot_rate,
                )
            # The advisor's preference chain *without* its silent exact
            # fallback: exact-with-no-guarantee is an explicit lower
            # rung here, not an invisible default.
            last: Optional[BaseException] = None
            for t in ("offline_sample", "pilot", "quickr"):
                try:
                    return advisor.run(
                        bound,
                        spec,
                        seed=seed,
                        force_technique=t,
                        pilot_rate=pilot_rate,
                    )
                except (UnsupportedQueryError, InfeasiblePlanError) as exc:
                    last = exc
            raise InfeasiblePlanError(
                "no approximate technique can honor the requested spec"
            ) from last

    def _run_stale(self, bound, spec, seed, deadline, budget):
        from ..offline.rewriter import OfflineRewriter

        catalog = SynopsisCatalog.for_database(self.database)
        if not catalog.samples and not catalog.join_synopses:
            raise SynopsisUnavailable("no synopses exist, stale or otherwise")
        marker = maybe_fault("sample.metadata")
        if marker == "corrupt":
            raise SynopsisUnavailable(
                "sample metadata failed validation (corrupted)"
            )
        self._validate_samples(catalog, bound)
        staleness = self._staleness_for(catalog, bound)
        if staleness > _MAX_WIDEN_STALENESS:
            raise SynopsisUnavailable(
                f"synopsis staleness {staleness:.2f} beyond the widening cap"
            )
        # Relax only the width gate — confidence (and its union-bound
        # split) stays the user's, so widened CIs keep their coverage.
        relaxed = replace(spec, relative_error=0.9)
        with deadline_scope(deadline, budget):
            with catalog.allow_stale():
                result = OfflineRewriter(self.database).run(
                    bound, relaxed, seed=seed
                )
        return self._widen(result, spec, staleness)

    def _run_cheaper(
        self, bound, spec, seed, technique, pilot_rate, deadline, budget
    ):
        advisor = Advisor(self.database)
        last: Optional[BaseException] = None
        with deadline_scope(deadline, budget):
            for t in ("quickr", "pilot"):
                if t == technique:
                    continue  # already failed as the requested rung
                try:
                    return advisor.run(
                        bound,
                        spec,
                        seed=seed,
                        force_technique=t,
                        pilot_rate=pilot_rate,
                    )
                except (UnsupportedQueryError, InfeasiblePlanError) as exc:
                    last = exc
        raise InfeasiblePlanError("no cheaper technique is applicable") from last

    def _run_partial_ola(self, bound, spec, seed, deadline, budget):
        if len(bound.tables) != 1:
            raise UnsupportedQueryError("partial OLA serves single-table queries")
        if bound.group_keys:
            raise UnsupportedQueryError("partial OLA does not serve GROUP BY")
        if len(bound.aggregates) != 1:
            raise UnsupportedQueryError("partial OLA serves one aggregate")
        agg = bound.aggregates[0]
        if agg.func not in ("sum", "avg", "count"):
            raise UnsupportedQueryError(
                f"partial OLA cannot serve {agg.func.upper()}"
            )
        if len(bound.output_aliases) != 1:
            raise UnsupportedQueryError(
                "partial OLA serves bare aggregate outputs"
            )
        target = bound.tables[0]
        base = self.database.table(target.name)
        if base.num_rows == 0:
            raise UnsupportedQueryError("empty table")
        qualified = SliceRelation(
            base, 0, base.num_rows,
            {c: f"{target.alias}.{c}" for c in base.column_names},
        )
        mask = (
            np.asarray(bound.where.evaluate(qualified), dtype=bool)
            if bound.where is not None
            else None
        )
        values = np.asarray(agg.input_values(qualified), dtype=np.float64)
        # COUNT used to pass value_column=None (expanded internally to
        # all-ones); hand from_values the same vector so snapshots stay
        # bitwise-identical, minus the wrapper-Table allocation.
        ola = OnlineAggregator.from_values(
            values if agg.func != "count" else np.ones(base.num_rows),
            agg=agg.func,
            predicate_mask=mask,
            confidence=spec.confidence,
            seed=seed,
        )
        # Fixed, data-independent stopping: the deadline (external) or a
        # fixed 30% fraction — never "stop when the CI first looks
        # good", which would forfeit coverage (the peeking fallacy).
        max_fraction = 1.0 if deadline is not None else 0.30
        batch = max(512, base.num_rows // 50)
        snap = None
        for snap in ola.run(
            batch_size=batch, max_fraction=max_fraction, deadline=deadline
        ):
            event(
                "ola_step",
                rows_seen=snap.rows_seen,
                fraction=snap.fraction_seen,
            )
        if snap is None:
            snap = ola.snapshot(min(batch, base.num_rows))
        if budget is not None:
            budget.charge(rows=snap.rows_seen, site="partial_ola")
        alias = bound.output_aliases[0]
        stats = ExecutionStats()
        stats.rows_scanned = snap.rows_seen
        stats.agg_input_rows = snap.rows_seen
        stats.rows_output = 1
        achieved = snap.relative_half_width
        claimed = replace(
            spec,
            relative_error=min(
                0.99,
                max(
                    spec.relative_error,
                    achieved if math.isfinite(achieved) else 0.99,
                ),
            ),
        )
        return ApproximateResult(
            table=Table({alias: np.array([snap.value])}, name="aggregate"),
            stats=stats,
            spec=claimed,
            technique="partial_ola",
            ci_low={alias: np.array([snap.ci_low])},
            ci_high={alias: np.array([snap.ci_high])},
            fraction_scanned=snap.fraction_seen,
            approx_cost=float(snap.rows_seen),
            exact_cost=float(base.num_rows),
            diagnostics={
                "rows_seen": snap.rows_seen,
                "fraction_seen": snap.fraction_seen,
                "stopped_by": "deadline" if deadline is not None else "fixed_fraction",
            },
        )

    def _run_exact(self, bound, seed, deadline, budget):
        with deadline_scope(deadline, budget):
            plan = optimize_plan(bound.plan, self.database)
            table, stats = self.database.execute(
                plan, seed=seed, optimize=False, deadline=deadline, budget=budget
            )
        return QueryResult(table=table, stats=stats, plan_text=plan.explain())

    # ------------------------------------------------------------------
    # Stale-synopsis helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_samples(catalog: SynopsisCatalog, bound: BoundQuery) -> None:
        """Reject synopses with corrupted metadata before answering."""
        names = {t.name for t in bound.tables}
        for entry in catalog.samples:
            if entry.table not in names:
                continue
            weights = np.asarray(entry.sample.weights, dtype=np.float64)
            if weights.size and (
                not np.all(np.isfinite(weights)) or np.any(weights <= 0)
            ):
                raise SynopsisUnavailable(
                    f"sample of {entry.table!r} carries invalid HT weights"
                )
            if entry.built_at_rows < 0:
                raise SynopsisUnavailable(
                    f"sample of {entry.table!r} has negative built_at_rows"
                )

    def _staleness_for(
        self, catalog: SynopsisCatalog, bound: BoundQuery
    ) -> float:
        """Worst staleness among synopses that could answer ``bound``."""
        names = {t.name for t in bound.tables}
        worst = 0.0
        found = False
        for entry in catalog.samples:
            if entry.table in names:
                found = True
                worst = max(worst, entry.staleness(self.database))
        for syn in catalog.join_synopses:
            if syn.fact_table in names:
                found = True
                current = self.database.table(syn.fact_table).num_rows
                built = max(syn.built_at_rows, 1)
                worst = max(worst, abs(current - built) / built)
        if not found:
            raise SynopsisUnavailable(
                "no synopsis covers the query's tables"
            )
        return worst

    @staticmethod
    def _widen(
        result: ApproximateResult, spec: ErrorSpec, staleness: float
    ) -> ApproximateResult:
        """Apply the staleness drift bound to every CI (see module doc)."""
        s = min(max(staleness, 0.0), _MAX_WIDEN_STALENESS)
        for alias in list(result.ci_low):
            values = np.asarray(result.table[alias], dtype=np.float64)
            low = np.asarray(result.ci_low[alias], dtype=np.float64)
            high = np.asarray(result.ci_high[alias], dtype=np.float64)
            half = (high - low) / 2.0
            center = (high + low) / 2.0
            new_half = half * (1.0 + s) + s * np.abs(values)
            result.ci_low[alias] = center - new_half
            result.ci_high[alias] = center + new_half
        result.technique = f"{result.technique}_stale"
        result.spec = replace(
            spec,
            relative_error=min(
                0.99, spec.relative_error * (1.0 + s) + s
            ),
        )
        result.diagnostics = dict(result.diagnostics)
        result.diagnostics.update(
            {"staleness": s, "widen_rule": "half*(1+s) + s*|value|"}
        )
        return result
