"""Deterministic retry/backoff and circuit breaking.

Synopsis builds and cache fills are the two operations in this engine
that can *transiently* fail (in production: an object store hiccup, a
maintenance job holding a lock; here: whatever the fault injector
decides). The policy is the classic pair:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic jitter (seeded, so a chaos schedule replays exactly);
* :class:`CircuitBreaker` — after enough consecutive failures the
  breaker opens and callers skip the operation outright (the ladder
  moves to its next rung) instead of hammering a flapping builder; after
  a cooldown it half-opens and lets one probe through.

Both are hand-rolled: no external dependency, no wall-clock sleeping by
default. Backoff "sleeps" go through an injectable ``sleeper`` so tests
use a :class:`~repro.resilience.deadline.ManualClock` and real callers
may pass ``time.sleep``.
"""

from __future__ import annotations

import threading
import zlib
from typing import Callable, List, Optional, TypeVar

import numpy as np

from ..core.exceptions import DeadlineExceeded, SynopsisUnavailable
from ..obs.metrics import get_metrics
from ..obs.trace import event
from .deadline import Deadline, current_deadline
from .faults import current_query_id, splitmix_uniform

__all__ = ["RetryPolicy", "CircuitBreaker"]

T = TypeVar("T")


class RetryPolicy:
    """Bounded retries with seeded exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (so ``1`` disables retrying).
    base_delay / multiplier / max_delay:
        Backoff schedule: attempt ``k`` (0-based) waits
        ``min(base_delay * multiplier**k, max_delay)`` scaled by jitter.
    jitter:
        Fractional jitter width; the delay is scaled by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]``. With a ``seed`` the
        draw is a *pure function* of ``(seed, site, ambient query id,
        attempt)`` — not a shared stream — so two policies with the same
        seed back off identically **and** concurrent queries cannot
        reorder each other's draws (one policy instance is safely shared
        across serving threads). With ``seed=None`` a stateful
        process-local RNG is used (non-reproducible by construction).
    sleeper:
        Callable receiving each delay. Defaults to a no-op that only
        records (simulated time); pass ``time.sleep`` for real waits or
        a ``ManualClock.advance`` for deterministic chaos time.
    retry_on:
        Exception classes that are considered transient. Anything else
        (notably :class:`DeadlineExceeded`) propagates immediately.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.01,
        multiplier: float = 2.0,
        max_delay: float = 1.0,
        jitter: float = 0.1,
        seed: Optional[int] = None,
        sleeper: Optional[Callable[[float], None]] = None,
        retry_on: tuple = (Exception,),
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self.retry_on = retry_on
        self._rng = np.random.default_rng(seed)
        self._sleeper = sleeper
        #: simulated/real delays actually waited, for tests & provenance
        self.delays: List[float] = []

    # ------------------------------------------------------------------
    def backoff(self, attempt: int, site: str = "") -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        raw = min(
            self.base_delay * (self.multiplier ** attempt), self.max_delay
        )
        if self.jitter > 0:
            if self.seed is not None:
                query_id = current_query_id()
                u = splitmix_uniform(
                    self.seed,
                    zlib.crc32(site.encode("utf-8")),
                    query_id if query_id is not None else 0,
                    attempt,
                )
            else:
                u = float(self._rng.random())
            raw *= (1.0 - self.jitter) + 2.0 * self.jitter * u
        return raw

    def call(
        self,
        fn: Callable[[], T],
        site: str = "",
        deadline: Optional[Deadline] = None,
        breaker: Optional["CircuitBreaker"] = None,
    ) -> T:
        """Run ``fn`` under the policy; raise the last error when beaten.

        A ``breaker`` is consulted before every attempt and fed every
        outcome; an open breaker raises :class:`SynopsisUnavailable`
        without calling ``fn`` — the caller's cue to degrade. A
        ``deadline`` (explicit, else the ambient one) is checked between
        attempts, and backoff sleeps are capped at its remaining time, so
        retries never push a query past its time budget.

        :class:`DeadlineExceeded` from inside ``fn`` propagates without
        consuming a retry — but it still re-opens a half-open breaker: a
        probe that blew the deadline has not demonstrated recovery, and
        leaving the breaker ``half_open`` would hand the next caller a
        free probe against an operation we know nothing new about.
        """
        if deadline is None:
            deadline = current_deadline()
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            if attempt > 0:
                # Retries (not first attempts) are span-worthy: they mark
                # the transient failures the trace should surface.
                event(
                    "retry",
                    site=site or "operation",
                    attempt=attempt,
                    error=f"{type(last).__name__}: {last}" if last else "",
                )
                get_metrics().inc(
                    "retry_attempts_total", site=site or "operation"
                )
            if deadline is not None:
                deadline.check(site=f"retry:{site}")
            if breaker is not None and not breaker.allow():
                raise SynopsisUnavailable(
                    f"circuit open for {site or 'operation'}; not retrying"
                )
            try:
                result = fn()
            except DeadlineExceeded:
                # Never retry past a deadline checkpoint — but an aborted
                # half-open probe must not leave the breaker half-open.
                if breaker is not None and breaker.state == "half_open":
                    breaker.reopen()
                raise
            except self.retry_on as exc:
                last = exc
                if breaker is not None:
                    breaker.record_failure()
                if attempt + 1 < self.max_attempts:
                    delay = self.backoff(attempt, site=site)
                    if deadline is not None:
                        delay = min(delay, max(deadline.remaining(), 0.0))
                    self.delays.append(delay)
                    if self._sleeper is not None and delay > 0:
                        self._sleeper(delay)
                continue
            if breaker is not None:
                breaker.record_success()
            return result
        assert last is not None
        raise last


class CircuitBreaker:
    """A counting (not wall-clock) circuit breaker.

    State machine: ``closed`` → (``failure_threshold`` consecutive
    failures) → ``open`` → (``cooldown`` rejected ``allow()`` calls) →
    ``half_open`` → one probe; success closes, failure re-opens.

    Counting cooldowns instead of timing them keeps chaos runs
    deterministic: the breaker's behaviour is a pure function of the
    call sequence. State transitions are taken under a lock so breakers
    shared across serving threads (the ladder's per-rung breakers, the
    scatter-gather executor's per-shard breakers) count exactly.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: int = 5,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        #: label for the breaker's state-flip metrics ("anon" if unset)
        self.name = name
        self.state = "closed"
        self.consecutive_failures = 0
        self._rejections_while_open = 0
        #: lifetime counters for reports
        self.total_failures = 0
        self.total_successes = 0
        self.times_opened = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _flip(self, to: str) -> None:
        """Transition + the state-flip metric (no-op when already there)."""
        if self.state == to:
            return
        self.state = to
        get_metrics().inc(
            "breaker_transitions_total",
            breaker=self.name or "anon",
            to=to,
        )

    def allow(self) -> bool:
        """May the protected operation run right now?"""
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                self._rejections_while_open += 1
                if self._rejections_while_open >= self.cooldown:
                    self._flip("half_open")
                return False
            # half_open: let exactly one probe through
            return True

    def record_success(self) -> None:
        with self._lock:
            self.total_successes += 1
            self.consecutive_failures = 0
            self._flip("closed")

    def record_failure(self) -> None:
        with self._lock:
            self.total_failures += 1
            self.consecutive_failures += 1
            if self.state == "half_open" or (
                self.consecutive_failures >= self.failure_threshold
            ):
                self._flip("open")
                self.times_opened += 1
                self._rejections_while_open = 0

    def reopen(self) -> None:
        """Re-open without recording an ordinary failure.

        For probes that were *aborted* (e.g. by a deadline) rather than
        observed to fail: the operation's health is unknown, so the
        breaker returns to ``open`` and the cooldown restarts, but the
        failure counters — which describe the protected operation, not
        the caller's time budget — are untouched.
        """
        with self._lock:
            self._flip("open")
            self.times_opened += 1
            self._rejections_while_open = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CircuitBreaker({self.state}, "
            f"failures={self.consecutive_failures})"
        )
