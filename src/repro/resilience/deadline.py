"""Cooperative deadlines and resource budgets.

Nothing in this engine preempts anything: a :class:`Deadline` is a shared
object that long-running loops *check* at natural boundaries (plan
operators, scans, OLA/ripple batches, synopsis builds). A check either
passes or raises :class:`~repro.core.exceptions.DeadlineExceeded` with
the name of the site that fired, so a query can never run unbounded but
also never stops mid-block with inconsistent state.

Two clock styles are supported:

* the default ``time.monotonic`` for real deployments, and
* :class:`ManualClock` for tests and the chaos harness, where only
  injected "slow" faults advance time — making every deadline scenario
  deterministic under a seed.

:class:`ResourceBudget` is the same idea for work instead of wall-clock:
rows/blocks charged past the budget raise
:class:`~repro.core.exceptions.BudgetExhausted`.

Deadlines travel two ways: explicitly (every executor/OLA entry point
takes a ``deadline=`` parameter) and ambiently via :func:`deadline_scope`
— a context manager the serving layer uses so that planner code paths it
does not control (advisor → rewriter → executor) still observe the
query's deadline through :func:`current_deadline`.
"""

from __future__ import annotations

import contextlib
import time
from contextvars import ContextVar
from typing import Callable, Iterator, Optional, Tuple

from ..core.exceptions import BudgetExhausted, DeadlineExceeded

__all__ = [
    "ManualClock",
    "Deadline",
    "ResourceBudget",
    "deadline_scope",
    "current_deadline",
    "current_budget",
    "resolve_deadline",
    "resolve_budget",
]


class ManualClock:
    """A clock that only moves when told to — the chaos tests' timebase."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clocks do not run backwards")
        self._now += float(seconds)


class Deadline:
    """A point in time past which cooperative checkpoints raise.

    Parameters
    ----------
    seconds:
        Time allowed from construction (or the explicit ``start``).
    clock:
        Monotonic time source; defaults to ``time.monotonic``. Pass a
        :class:`ManualClock` for deterministic tests.
    grace_fraction:
        How far past the deadline the serving layer may run while
        *unwinding* (finishing the current block, recording provenance,
        taking the final snapshot). The chaos suite asserts total time
        stays within ``seconds * (1 + grace_fraction)``.
    """

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
        grace_fraction: float = 0.10,
        start: Optional[float] = None,
    ) -> None:
        if seconds <= 0:
            raise ValueError("deadline must be positive")
        if grace_fraction < 0:
            raise ValueError("grace_fraction must be >= 0")
        self.seconds = float(seconds)
        self.clock = clock
        self.grace_fraction = float(grace_fraction)
        self.started_at = clock() if start is None else float(start)
        #: checkpoint sites that observed expiry (diagnostics)
        self.fired_sites: list = []

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return self.clock() - self.started_at

    def remaining(self) -> float:
        return self.seconds - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    @property
    def grace_seconds(self) -> float:
        return self.seconds * self.grace_fraction

    def within_grace(self) -> bool:
        """Still inside deadline + grace (the unwind allowance)."""
        return self.elapsed() <= self.seconds + self.grace_seconds

    def check(self, site: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired:
            self.fired_sites.append(site)
            from ..obs.metrics import get_metrics

            get_metrics().inc(
                "deadline_misses_total", site=site or "unknown"
            )
            raise DeadlineExceeded(
                f"deadline of {self.seconds:.3f}s exceeded after "
                f"{self.elapsed():.3f}s"
                + (f" at {site}" if site else ""),
                site=site,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Deadline({self.seconds}s, remaining={self.remaining():.3f}s)"
        )


class ResourceBudget:
    """Caps on rows/blocks a query may touch, charged cooperatively.

    ``None`` for either cap means unlimited. Like deadlines, budgets are
    checked at block boundaries, so a single charge may overshoot by at
    most one block's worth of rows.
    """

    def __init__(
        self,
        max_rows: Optional[int] = None,
        max_blocks: Optional[int] = None,
    ) -> None:
        if max_rows is not None and max_rows < 0:
            raise ValueError("max_rows must be >= 0")
        if max_blocks is not None and max_blocks < 0:
            raise ValueError("max_blocks must be >= 0")
        self.max_rows = max_rows
        self.max_blocks = max_blocks
        self.rows_charged = 0
        self.blocks_charged = 0

    # ------------------------------------------------------------------
    def charge(self, rows: int = 0, blocks: int = 0, site: str = "") -> None:
        self.rows_charged += int(rows)
        self.blocks_charged += int(blocks)
        if self.max_rows is not None and self.rows_charged > self.max_rows:
            raise BudgetExhausted(
                f"row budget of {self.max_rows} exhausted "
                f"({self.rows_charged} charged)"
                + (f" at {site}" if site else ""),
                resource="rows",
            )
        if (
            self.max_blocks is not None
            and self.blocks_charged > self.max_blocks
        ):
            raise BudgetExhausted(
                f"block budget of {self.max_blocks} exhausted "
                f"({self.blocks_charged} charged)"
                + (f" at {site}" if site else ""),
                resource="blocks",
            )

    def remaining_rows(self) -> Optional[int]:
        if self.max_rows is None:
            return None
        return max(self.max_rows - self.rows_charged, 0)

    def remaining_blocks(self) -> Optional[int]:
        if self.max_blocks is None:
            return None
        return max(self.max_blocks - self.blocks_charged, 0)


# ----------------------------------------------------------------------
# Ambient (contextvar) propagation
# ----------------------------------------------------------------------

_SCOPE: ContextVar[Tuple[Optional[Deadline], Optional[ResourceBudget]]] = (
    ContextVar("repro_deadline_scope", default=(None, None))
)


@contextlib.contextmanager
def deadline_scope(
    deadline: Optional[Deadline], budget: Optional[ResourceBudget] = None
) -> Iterator[None]:
    """Make ``deadline``/``budget`` ambient for the enclosed code.

    The executor and the online loops fall back to the ambient scope
    when not handed an explicit deadline, so the serving layer can bound
    *every* code path of a query — including planner internals it never
    sees — with one ``with`` block.

    ``None`` arguments inherit from any enclosing scope rather than
    clearing it, so a nested ``deadline_scope(None, budget)`` tightens
    the budget without losing the outer deadline.
    """
    prev_deadline, prev_budget = _SCOPE.get()
    token = _SCOPE.set(
        (
            deadline if deadline is not None else prev_deadline,
            budget if budget is not None else prev_budget,
        )
    )
    try:
        yield
    finally:
        _SCOPE.reset(token)


def current_deadline() -> Optional[Deadline]:
    return _SCOPE.get()[0]


def current_budget() -> Optional[ResourceBudget]:
    return _SCOPE.get()[1]


def resolve_deadline(explicit: Optional[Deadline]) -> Optional[Deadline]:
    """Explicit parameter if given, else the ambient scope's deadline."""
    return explicit if explicit is not None else current_deadline()


def resolve_budget(explicit: Optional[ResourceBudget]) -> Optional[ResourceBudget]:
    """Explicit parameter if given, else the ambient scope's budget."""
    return explicit if explicit is not None else current_budget()
