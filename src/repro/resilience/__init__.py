"""Resilient query serving: deadlines, degradation, retries, chaos.

The paper's survey is about what AQP techniques *trade away*; this
package is about what a deployment must survive *around* them: synopses
that are stale, missing, or mid-rebuild, estimators that blow their
deadline, and queries the planner cannot serve at the requested error.
Four pieces:

* :mod:`~repro.resilience.deadline` — cooperative :class:`Deadline` /
  :class:`ResourceBudget` objects threaded through the executor, the
  OLA/ripple loops, and synopsis builds;
* :mod:`~repro.resilience.ladder` — :class:`ResilientEngine`, the
  degradation ladder that turns any failure into the best answer the
  remaining budget allows (or a typed refusal with full provenance);
* :mod:`~repro.resilience.retry` — deterministic retry/backoff and
  circuit breaking for synopsis construction and cache fills;
* :mod:`~repro.resilience.faults` — the seeded fault-injection harness
  the chaos suite drives.
"""

from .deadline import (
    Deadline,
    ManualClock,
    ResourceBudget,
    current_budget,
    current_deadline,
    deadline_scope,
)
from .faults import (
    FaultInjector,
    FaultSpec,
    corrupt_shard,
    inject,
    install_injector,
    kill_shard,
    maybe_fault,
    shard_site,
    slow_shard,
)
from .ladder import LADDER_RUNGS, RESHARD_RUNG, ResilientEngine
from .retry import CircuitBreaker, RetryPolicy

__all__ = [
    "Deadline",
    "ManualClock",
    "ResourceBudget",
    "deadline_scope",
    "current_deadline",
    "current_budget",
    "FaultInjector",
    "FaultSpec",
    "inject",
    "install_injector",
    "maybe_fault",
    "shard_site",
    "kill_shard",
    "slow_shard",
    "corrupt_shard",
    "ResilientEngine",
    "LADDER_RUNGS",
    "RESHARD_RUNG",
    "CircuitBreaker",
    "RetryPolicy",
]
