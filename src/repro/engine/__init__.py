"""The in-memory columnar query engine substrate."""

from .aggregates import AggregateSpec
from .database import Database
from .executor import ExecutionStats, Executor
from .expressions import col, compile_expression
from .fused import SliceRelation, extract_chain
from .kernel_cache import (
    KernelCache,
    KernelCacheStats,
    configure_kernel_cache,
    get_kernel_cache,
    set_kernel_cache,
)
from .plan import (
    Filter,
    GroupByAggregate,
    HashJoin,
    Limit,
    OrderBy,
    Project,
    SampleClause,
    Scan,
    UnionAll,
)
from .table import Table, TableAllocationProbe, count_table_allocations

__all__ = [
    "AggregateSpec",
    "Database",
    "ExecutionStats",
    "Executor",
    "Filter",
    "GroupByAggregate",
    "HashJoin",
    "KernelCache",
    "KernelCacheStats",
    "Limit",
    "OrderBy",
    "Project",
    "SampleClause",
    "Scan",
    "SliceRelation",
    "Table",
    "TableAllocationProbe",
    "UnionAll",
    "col",
    "compile_expression",
    "configure_kernel_cache",
    "count_table_allocations",
    "extract_chain",
    "get_kernel_cache",
    "set_kernel_cache",
]
