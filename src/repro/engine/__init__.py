"""The in-memory columnar query engine substrate."""

from .aggregates import AggregateSpec
from .database import Database
from .executor import ExecutionStats, Executor
from .expressions import col
from .plan import (
    Filter,
    GroupByAggregate,
    HashJoin,
    Limit,
    OrderBy,
    Project,
    SampleClause,
    Scan,
    UnionAll,
)
from .table import Table

__all__ = [
    "AggregateSpec",
    "Database",
    "ExecutionStats",
    "Executor",
    "Filter",
    "GroupByAggregate",
    "HashJoin",
    "Limit",
    "OrderBy",
    "Project",
    "SampleClause",
    "Scan",
    "Table",
    "UnionAll",
    "col",
]
