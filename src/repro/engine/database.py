"""The database catalog: tables, statistics, synopses, and entry points.

``Database`` is the object users hold. It stores base tables, lazily
computes catalog statistics, owns the synopsis registry used by offline
AQP, and exposes two entry points:

* :meth:`Database.execute` — run a logical plan exactly as given
  (including any sampling clauses it carries), and
* :meth:`Database.sql` — parse/bind/optimize/execute a SQL string. If the
  query carries an ``ERROR WITHIN ... CONFIDENCE ...`` clause the call is
  routed through :class:`repro.core.session.AQPEngine`.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.exceptions import SchemaError
from ..storage.cost import CostParameters, DEFAULT_COST
from ..storage.statistics import TableStats, compute_table_stats
from .executor import ExecutionStats, Executor
from .plan import PlanNode
from .table import DEFAULT_BLOCK_SIZE, Table


class Database:
    """An in-memory database instance."""

    def __init__(self, cost_params: CostParameters = DEFAULT_COST) -> None:
        self._tables: Dict[str, Table] = {}
        self._stats: Dict[str, TableStats] = {}
        self.cost_params = cost_params
        #: registry used by repro.offline: (kind, table, key) -> synopsis
        self.synopses: Dict[Tuple[str, str, str], object] = {}
        # Serving re-entrancy: concurrent queries share one Database, so
        # catalog mutation and lazy-stats computation are serialized.
        # Reentrant because append_rows -> replace_table nests.
        self._catalog_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        data: Union[Table, Mapping[str, Iterable]],
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> Table:
        """Register a table. ``data`` may be a Table or a columns mapping."""
        with self._catalog_lock:
            if name in self._tables:
                raise SchemaError(f"table {name!r} already exists")
            if isinstance(data, Table):
                table = Table(
                    data.columns_dict(), name=name, block_size=data.block_size
                )
            else:
                table = Table(data, name=name, block_size=block_size)
            self._tables[name] = table
            return table

    def drop_table(self, name: str) -> None:
        with self._catalog_lock:
            self._tables.pop(name, None)
            self._stats.pop(name, None)
        self._invalidate_synopses(name)

    def replace_table(self, name: str, table: Table) -> None:
        """Swap a table's contents (used by update/maintenance simulations)."""
        with self._catalog_lock:
            if name not in self._tables:
                raise SchemaError(f"no table {name!r}")
            self._tables[name] = Table(
                table.columns_dict(), name=name, block_size=table.block_size
            )
            self._stats.pop(name, None)
        self._invalidate_synopses(name)

    @staticmethod
    def _invalidate_synopses(name: str) -> None:
        """Evict cached synopses of a table whose content changed.

        The cache is content-addressed (keys embed the table
        fingerprint), so this is a space reclamation, not a correctness
        requirement — stale entries could never be returned for the new
        content anyway.
        """
        from ..storage.synopsis_cache import get_global_cache

        get_global_cache().invalidate_table(name)

    def append_rows(self, name: str, data: Mapping[str, Iterable]) -> None:
        """Append rows to a table (invalidates cached stats)."""
        with self._catalog_lock:
            base = self.table(name)
            extra = Table(data, name=name, block_size=base.block_size)
            self.replace_table(name, Table.concat([base, extra], name=name))

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(
                f"no table {name!r} (have {sorted(self._tables)})"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def stats(self, name: str) -> TableStats:
        """Catalog statistics, computed on first use and cached.

        Computation happens outside the catalog lock (it can be a full
        pass over the table); racing computations of the same table's
        stats produce identical values, and ``setdefault`` keeps exactly
        one.
        """
        with self._catalog_lock:
            cached = self._stats.get(name)
        if cached is not None:
            return cached
        computed = compute_table_stats(self.table(name))
        with self._catalog_lock:
            return self._stats.setdefault(name, computed)

    def invalidate_stats(self, name: Optional[str] = None) -> None:
        with self._catalog_lock:
            if name is None:
                self._stats.clear()
            else:
                self._stats.pop(name, None)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: PlanNode,
        seed: Optional[int] = None,
        optimize: bool = True,
        deadline=None,
        budget=None,
        fused: bool = True,
    ) -> Tuple[Table, ExecutionStats]:
        """Optimize (optionally) and run a logical plan.

        ``deadline``/``budget`` bound the execution cooperatively; when
        omitted, the ambient :func:`repro.resilience.deadline_scope` (if
        any) applies, so serving-layer limits reach every plan run on
        this query's behalf.

        ``fused=False`` forces the legacy per-operator materializing
        executor — kept as the differential-testing reference; results
        and accounting are identical either way, only wall-clock differs.
        """
        if optimize:
            from .optimizer import optimize_plan

            plan = optimize_plan(plan, self)
        executor = Executor(
            self,
            seed=seed,
            cost_params=self.cost_params,
            deadline=deadline,
            budget=budget,
            fused=fused,
        )
        return executor.execute(plan)

    def sql(self, query: str, options: Optional[QueryOptions] = None, **kwargs):
        """Run a SQL string.

        Returns a :class:`~repro.core.result.QueryResult` for exact queries
        or an :class:`~repro.core.result.ApproximateResult` when the query
        carries an error specification. ``EXPLAIN <sql>`` returns the
        optimized plan text; ``EXPLAIN ANALYZE <sql>`` executes the query
        under a tracer and returns an
        :class:`~repro.obs.explain.ExplainResult` bundling the answer,
        the span tree, and the metrics delta.

        ``options`` is a :class:`~repro.core.options.QueryOptions`; legacy
        per-field keywords (``seed=...``, ``spec=...``) still work via the
        deprecation shim.
        """
        from ..core.options import resolve_options
        from ..core.session import AQPEngine
        from ..sql.parser import split_explain

        options = resolve_options(options, kwargs, entry="Database.sql()")
        mode, inner = split_explain(query)
        if mode == "explain":
            return self.explain(inner)
        if mode == "analyze":
            from ..obs.explain import run_explain_analyze

            return run_explain_analyze(self, inner, options=options)
        return AQPEngine(self).sql(inner, options=options)

    def explain(self, query: str) -> str:
        """Textual optimized plan for a SQL string."""
        from ..sql.binder import bind_sql
        from .optimizer import optimize_plan

        bound = bind_sql(query, self)
        return optimize_plan(bound.plan, self).explain()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(
            f"{n}({self._tables[n].num_rows})" for n in self.table_names
        )
        return f"Database({parts})"
