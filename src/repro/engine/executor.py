"""Plan execution.

The executor is deliberately simple: each operator materializes its full
output (a :class:`~repro.engine.table.Table`). What makes it useful for
AQP research is the *accounting*: every execution returns an
:class:`ExecutionStats` recording rows/blocks touched per table and rows
flowing through joins/aggregations, from which the cost model computes a
simulated "work" number. Speedups reported by the benchmarks are ratios of
that work, so they reflect data touched rather than Python overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import PlanError, SchemaError
from ..storage import blocks as blockio
from ..storage.cost import (
    CostEstimate,
    CostParameters,
    DEFAULT_COST,
    aggregation_cost,
    join_cost,
)
from .aggregates import (
    AggregateSpec,
    compute_aggregate,
    compute_grouped_aggregate,
    encode_groups,
)
from .expressions import Expression
from .fused import (
    FusedChain,
    apply_steps,
    chain_signature,
    compile_chain,
    extract_chain,
    materialize_relation,
    run_prepared_aggregate,
    scan_relation,
    signature_digest,
)
from .kernel_cache import get_kernel_cache
from .plan import (
    Filter,
    GroupByAggregate,
    HashJoin,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    SampleClause,
    Scan,
    UnionAll,
)
from .table import Table


@dataclass
class ExecutionStats:
    """Work accounting for one plan execution."""

    rows_scanned: int = 0
    blocks_scanned: int = 0
    rows_sampled: int = 0
    join_input_rows: int = 0
    agg_input_rows: int = 0
    rows_output: int = 0
    per_table: Dict[str, blockio.AccessStats] = field(default_factory=dict)
    #: total blocks that exist in the scanned tables (for fraction-read)
    blocks_available: int = 0

    def record_scan(self, table_name: str, access: blockio.AccessStats, total_blocks: int) -> None:
        self.rows_scanned += access.rows_scanned
        self.blocks_scanned += access.blocks_scanned
        self.rows_sampled += access.rows_returned
        self.blocks_available += total_blocks
        slot = self.per_table.setdefault(table_name, blockio.AccessStats())
        slot.merge(access)

    @property
    def fraction_blocks_read(self) -> float:
        if self.blocks_available == 0:
            return 0.0
        return self.blocks_scanned / self.blocks_available

    def simulated_cost(self, params: CostParameters = DEFAULT_COST) -> CostEstimate:
        """Convert the accounting into cost-model units."""
        io = self.blocks_scanned * params.block_read_cost
        cpu = (
            self.rows_scanned * params.row_cpu_cost
            + self.join_input_rows * params.row_join_cost
            + self.agg_input_rows * params.row_agg_cost
        )
        return CostEstimate(io=io, cpu=cpu, detail={"blocks": float(self.blocks_scanned)})

    def to_dict(self) -> Dict[str, object]:
        """One canonical JSON-able form, shared by results and spans.

        Every execution path (fused, materializing, sharded, ladder)
        reports through this dataclass, so the key set here *is* the
        stats contract — ``test_observability`` pins that all paths
        populate identical keys.
        """
        return {
            "rows_scanned": int(self.rows_scanned),
            "blocks_scanned": int(self.blocks_scanned),
            "rows_sampled": int(self.rows_sampled),
            "join_input_rows": int(self.join_input_rows),
            "agg_input_rows": int(self.agg_input_rows),
            "rows_output": int(self.rows_output),
            "blocks_available": int(self.blocks_available),
            "fraction_blocks_read": float(self.fraction_blocks_read),
            "simulated_cost": float(self.simulated_cost().total),
            "per_table": {
                name: {
                    "rows_scanned": int(a.rows_scanned),
                    "blocks_scanned": int(a.blocks_scanned),
                    "rows_returned": int(a.rows_returned),
                }
                for name, a in sorted(self.per_table.items())
            },
        }

    def merge(self, other: "ExecutionStats") -> None:
        self.rows_scanned += other.rows_scanned
        self.blocks_scanned += other.blocks_scanned
        self.rows_sampled += other.rows_sampled
        self.join_input_rows += other.join_input_rows
        self.agg_input_rows += other.agg_input_rows
        self.blocks_available += other.blocks_available
        for name, access in other.per_table.items():
            self.per_table.setdefault(name, blockio.AccessStats()).merge(access)


class Executor:
    """Executes logical plans against a database catalog.

    Cooperative interruption: when a
    :class:`~repro.resilience.deadline.Deadline` or
    :class:`~repro.resilience.deadline.ResourceBudget` is attached —
    explicitly or through the ambient
    :func:`~repro.resilience.deadline.deadline_scope` — the executor
    checkpoints at every operator boundary and charges every scan, so a
    runaway plan raises ``DeadlineExceeded``/``BudgetExhausted`` at the
    next block boundary instead of running unbounded.
    """

    def __init__(self, database, seed: Optional[int] = None,
                 cost_params: CostParameters = DEFAULT_COST,
                 deadline=None, budget=None,
                 fused: bool = True, kernel_cache=None) -> None:
        from ..resilience.deadline import resolve_budget, resolve_deadline

        self.database = database
        self.rng = np.random.default_rng(seed)
        self.cost_params = cost_params
        self.deadline = resolve_deadline(deadline)
        self.budget = resolve_budget(budget)
        #: When True (default), Filter/Project/GroupByAggregate chains run
        #: through the fused zero-copy pipeline; the materializing path
        #: below is kept verbatim as the differential-testing reference.
        self.fused = fused
        self.kernel_cache = kernel_cache if kernel_cache is not None else get_kernel_cache()

    def execute(self, plan: PlanNode) -> Tuple[Table, ExecutionStats]:
        stats = ExecutionStats()
        result = self._run(plan, stats)
        stats.rows_output = result.num_rows
        return result, stats

    # ------------------------------------------------------------------
    def _checkpoint(self, node: PlanNode) -> None:
        if self.deadline is not None:
            self.deadline.check(site=f"executor.{type(node).__name__}")

    def _run(self, node: PlanNode, stats: ExecutionStats) -> Table:
        if self.fused:
            chain = extract_chain(node)
            if chain is not None:
                return self._run_fused(chain, stats)
        self._checkpoint(node)
        if isinstance(node, Scan):
            return self._run_scan(node, stats)
        if isinstance(node, Filter):
            child = self._run(node.child, stats)
            mask = np.asarray(node.predicate.evaluate(child), dtype=bool)
            return child.take(mask)
        if isinstance(node, Project):
            child = self._run(node.child, stats)
            cols = {alias: _materialize(expr, child) for expr, alias in node.items}
            return Table(cols, name=child.name, block_size=child.block_size)
        if isinstance(node, HashJoin):
            return self._run_join(node, stats)
        if isinstance(node, GroupByAggregate):
            return self._run_aggregate(node, stats)
        if isinstance(node, OrderBy):
            child = self._run(node.child, stats)
            return _order_by(child, node.items)
        if isinstance(node, Limit):
            child = self._run(node.child, stats)
            return child.head(node.count)
        if isinstance(node, UnionAll):
            parts = [self._run(c, stats) for c in node.inputs]
            return Table.concat(parts)
        raise PlanError(f"unknown plan node {type(node).__name__}")

    # ------------------------------------------------------------------
    def _run_scan(self, node: Scan, stats: ExecutionStats) -> Table:
        table = self.database.table(node.table_name)
        if node.columns is not None:
            missing = [c for c in node.columns if c not in table]
            if missing:
                raise SchemaError(
                    f"columns {missing} not in table {node.table_name!r}"
                )
            table = table.select(list(node.columns))
        total_blocks = table.num_blocks
        from ..obs.trace import span
        from ..resilience.faults import maybe_fault

        with span(
            "scan", table=node.table_name, sampled=node.sample is not None
        ) as sp:
            maybe_fault("executor.scan")  # chaos: slow blocks burn the clock here
            selection = self._scan_selection(table, node.sample)
            result = blockio.materialize_selection(selection)
            self._account_scan(node, selection.access, total_blocks, stats)
            sp.set(
                rows_scanned=int(selection.access.rows_scanned),
                blocks_scanned=int(selection.access.blocks_scanned),
                rows_returned=int(selection.access.rows_returned),
            )
        if node.alias is not None:
            # Qualified output names let the SQL layer join a table with
            # itself and disambiguate columns across tables.
            result = result.rename(
                {c: f"{node.alias}.{c}" for c in result.column_names}
            )
        return result

    def _account_scan(
        self,
        node: Scan,
        access: blockio.AccessStats,
        total_blocks: int,
        stats: ExecutionStats,
    ) -> None:
        """Shared scan accounting — identical for both execution modes."""
        stats.record_scan(node.table_name, access, total_blocks)
        if self.budget is not None:
            self.budget.charge(
                rows=access.rows_scanned,
                blocks=access.blocks_scanned,
                site=f"scan:{node.table_name}",
            )
        if self.deadline is not None:
            self.deadline.check(site=f"scan:{node.table_name}")

    def _scan_selection(
        self, table: Table, sample: Optional[SampleClause]
    ) -> blockio.ScanSelection:
        """Row selection for a scan; consumes ``self.rng`` identically in
        both execution modes (selection, not materialization, is where the
        randomness lives)."""
        if sample is None:
            return blockio.full_selection(table)
        rng = (
            np.random.default_rng(sample.seed)
            if sample.seed is not None
            else self.rng
        )
        n = table.num_rows
        nb = table.num_blocks
        if sample.method == "bernoulli_rows":
            mask = rng.random(n) < sample.rate
            return blockio.row_sample_selection(table, np.flatnonzero(mask))
        if sample.method == "system_blocks":
            mask = rng.random(nb) < sample.rate
            return blockio.block_sample_selection(table, np.flatnonzero(mask))
        if sample.method == "fixed_rows":
            size = min(sample.size, n)
            idx = rng.choice(n, size=size, replace=False) if size else np.array([], dtype=np.int64)
            return blockio.row_sample_selection(table, np.sort(idx))
        if sample.method == "fixed_blocks":
            size = min(sample.size, nb)
            ids = rng.choice(nb, size=size, replace=False) if size else np.array([], dtype=np.int64)
            return blockio.block_sample_selection(table, ids)
        raise PlanError(f"unknown sampling method {sample.method!r}")

    def _sampled_scan(
        self, table: Table, sample: SampleClause
    ) -> Tuple[Table, blockio.AccessStats]:
        selection = self._scan_selection(table, sample)
        return blockio.materialize_selection(selection), selection.access

    # ------------------------------------------------------------------
    def _run_fused(self, chain: FusedChain, stats: ExecutionStats) -> Table:
        """Execute a fused chain: one pass, zero intermediate Tables.

        Accounting, fault-injection arrivals, RNG consumption and
        deadline-check sites replay the materializing recursion exactly;
        only the copies are gone.
        """
        for plan_node in chain.nodes_top_down:
            self._checkpoint(plan_node)
        node = chain.scan
        table = self.database.table(node.table_name)
        scan_columns = table.column_names
        if node.columns is not None:
            missing = [c for c in node.columns if c not in table]
            if missing:
                raise SchemaError(
                    f"columns {missing} not in table {node.table_name!r}"
                )
            scan_columns = list(node.columns)
        total_blocks = table.num_blocks
        from ..obs.trace import span
        from ..resilience.faults import maybe_fault

        with span(
            "scan", table=node.table_name, sampled=node.sample is not None
        ) as sp:
            maybe_fault("executor.scan")  # chaos: same site as the materializing scan
            selection = self._scan_selection(table, node.sample)
            self._account_scan(node, selection.access, total_blocks, stats)
            sp.set(
                rows_scanned=int(selection.access.rows_scanned),
                blocks_scanned=int(selection.access.blocks_scanned),
                rows_returned=int(selection.access.rows_returned),
            )
        signature = chain_signature(chain)
        key = (table.fingerprint(), signature)
        compiled = []

        def _compile():
            compiled.append(True)
            return compile_chain(chain)

        with span("kernel", signature=signature_digest(signature)) as sp:
            prepared = self.kernel_cache.get_or_compile(key, _compile)
            sp.set(cache_hit=not compiled)
        rel = scan_relation(table, scan_columns, selection, node.alias)
        rel = apply_steps(prepared, rel)
        if prepared.aggregate is not None:
            stats.agg_input_rows += rel.num_rows
            return run_prepared_aggregate(prepared, rel)
        return materialize_relation(rel, table.name, table.block_size)

    # ------------------------------------------------------------------
    def _run_join(self, node: HashJoin, stats: ExecutionStats) -> Table:
        left = self._run(node.left, stats)
        right = self._run(node.right, stats)
        stats.join_input_rows += left.num_rows + right.num_rows
        left_idx, right_idx, unmatched_left = join_indices(
            [left[k] for k in node.left_keys],
            [right[k] for k in node.right_keys],
        )
        out: Dict[str, np.ndarray] = {}
        if node.how == "inner":
            for name in left.column_names:
                out[name] = left[name][left_idx]
            for name in right.column_names:
                out_name = name if name not in out else f"{name}__r"
                out[out_name] = right[name][right_idx]
        else:  # left join: append unmatched left rows padded with nulls
            all_left = np.concatenate([left_idx, unmatched_left])
            for name in left.column_names:
                out[name] = left[name][all_left]
            pad = len(unmatched_left)
            for name in right.column_names:
                matched = right[name][right_idx]
                if matched.dtype == object:
                    filler = np.empty(pad, dtype=object)
                else:
                    matched = matched.astype(np.float64)
                    filler = np.full(pad, np.nan)
                out_name = name if name not in out else f"{name}__r"
                out[out_name] = np.concatenate([matched, filler]) if pad else matched
        return Table(out, name=f"join", block_size=left.block_size)

    # ------------------------------------------------------------------
    def _run_aggregate(self, node: GroupByAggregate, stats: ExecutionStats) -> Table:
        child = self._run(node.child, stats)
        stats.agg_input_rows += child.num_rows
        if not node.keys:
            cols = {
                spec.alias: np.array([compute_aggregate(spec, child)])
                for spec in node.aggregates
            }
            result = Table(cols, name="aggregate")
        else:
            key_arrays = [_materialize(expr, child) for expr, _ in node.keys]
            if child.num_rows == 0:
                cols = {alias: np.array([]) for _, alias in node.keys}
                for spec in node.aggregates:
                    cols[spec.alias] = np.array([])
                result = Table(cols, name="aggregate")
            else:
                group_ids, key_tuples = encode_groups(key_arrays)
                num_groups = len(key_tuples)
                cols = {}
                for pos, (_, alias) in enumerate(node.keys):
                    cols[alias] = np.array(
                        [kt[pos] for kt in key_tuples],
                        dtype=key_arrays[pos].dtype if key_arrays[pos].dtype != object else object,
                    )
                for spec in node.aggregates:
                    cols[spec.alias] = compute_grouped_aggregate(
                        spec, child, group_ids, num_groups
                    )
                result = Table(cols, name="aggregate")
        if node.having is not None:
            mask = np.asarray(node.having.evaluate(result), dtype=bool)
            result = result.take(mask)
        return result


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def _materialize(expr: Expression, table: Table) -> np.ndarray:
    values = expr.evaluate(table)
    arr = np.asarray(values)
    if arr.ndim == 0:
        arr = np.full(table.num_rows, arr[()])
    return arr


def _order_by(table: Table, items: Sequence[Tuple[str, bool]]) -> Table:
    if table.num_rows == 0 or not items:
        return table
    # lexsort: last key is primary, so reverse the item list.
    keys = []
    for name, ascending in reversed(items):
        arr = table[name]
        if arr.dtype == object:
            _, codes = np.unique(arr, return_inverse=True)
            arr = codes
        keys.append(arr if ascending else _descending_key(arr))
    order = np.lexsort(tuple(keys))
    return table.take(order)


def _descending_key(arr: np.ndarray) -> np.ndarray:
    if arr.dtype.kind in ("i", "u"):
        return -arr.astype(np.int64)
    return -np.asarray(arr, dtype=np.float64)


def join_indices(
    left_keys: Sequence[np.ndarray], right_keys: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized equi-join index computation.

    Returns ``(left_idx, right_idx, unmatched_left)`` such that row pairs
    ``(left_idx[i], right_idx[i])`` form the inner join, and
    ``unmatched_left`` lists left rows with no partner (for LEFT joins).
    """
    nl = len(left_keys[0])
    nr = len(right_keys[0])
    if nl == 0 or nr == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty, np.arange(nl, dtype=np.int64)
    left_codes, right_codes = _joint_codes(left_keys, right_keys)
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    lo = np.searchsorted(sorted_codes, left_codes, side="left")
    hi = np.searchsorted(sorted_codes, left_codes, side="right")
    counts = hi - lo
    left_idx = np.repeat(np.arange(nl, dtype=np.int64), counts)
    total = int(counts.sum())
    if total == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty, np.arange(nl, dtype=np.int64)
    starts = np.repeat(lo, counts)
    within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    right_idx = order[starts + within]
    unmatched_left = np.flatnonzero(counts == 0).astype(np.int64)
    return left_idx, right_idx, unmatched_left


def _joint_codes(
    left_keys: Sequence[np.ndarray], right_keys: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Factorize composite keys over the union of both sides."""
    nl = len(left_keys[0])
    combined_code_l = np.zeros(nl, dtype=np.int64)
    combined_code_r = np.zeros(len(right_keys[0]), dtype=np.int64)
    multiplier = 1
    for lk, rk in zip(reversed(list(left_keys)), reversed(list(right_keys))):
        both = np.concatenate([
            lk.astype(object) if lk.dtype == object or rk.dtype == object else lk,
            rk.astype(object) if lk.dtype == object or rk.dtype == object else rk,
        ])
        _, codes = np.unique(both, return_inverse=True)
        ndv = int(codes.max()) + 1 if len(codes) else 1
        combined_code_l += codes[:nl] * multiplier
        combined_code_r += codes[nl:] * multiplier
        multiplier *= ndv
    return combined_code_l, combined_code_r
