"""Vectorized expression trees.

Expressions evaluate against a :class:`~repro.engine.table.Table` and return
numpy arrays (or scalars broadcastable against the table length). They are
shared between the SQL binder, the plan operators, and the AQP rewriters,
which inspect and rewrite them (e.g. to scale SUM aggregates by inverse
sampling rates).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import PlanError, SchemaError
from .table import Table


class Expression:
    """Base class for all scalar expressions."""

    def evaluate(self, table: Table) -> np.ndarray:
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        """Names of columns this expression reads."""
        raise NotImplementedError

    def children(self) -> Tuple["Expression", ...]:
        return ()

    def replace_children(self, children: Sequence["Expression"]) -> "Expression":
        """Rebuild this node with new children (for tree rewrites)."""
        if children:
            raise PlanError(f"{type(self).__name__} takes no children")
        return self

    # -- operator sugar -------------------------------------------------
    def __add__(self, other) -> "Expression":
        return BinaryOp("+", self, lift(other))

    def __radd__(self, other) -> "Expression":
        return BinaryOp("+", lift(other), self)

    def __sub__(self, other) -> "Expression":
        return BinaryOp("-", self, lift(other))

    def __rsub__(self, other) -> "Expression":
        return BinaryOp("-", lift(other), self)

    def __mul__(self, other) -> "Expression":
        return BinaryOp("*", self, lift(other))

    def __rmul__(self, other) -> "Expression":
        return BinaryOp("*", lift(other), self)

    def __truediv__(self, other) -> "Expression":
        return BinaryOp("/", self, lift(other))

    def __rtruediv__(self, other) -> "Expression":
        return BinaryOp("/", lift(other), self)

    def __neg__(self) -> "Expression":
        return UnaryOp("-", self)

    def __eq__(self, other) -> "Expression":  # type: ignore[override]
        return Comparison("=", self, lift(other))

    def __ne__(self, other) -> "Expression":  # type: ignore[override]
        return Comparison("<>", self, lift(other))

    def __lt__(self, other) -> "Expression":
        return Comparison("<", self, lift(other))

    def __le__(self, other) -> "Expression":
        return Comparison("<=", self, lift(other))

    def __gt__(self, other) -> "Expression":
        return Comparison(">", self, lift(other))

    def __ge__(self, other) -> "Expression":
        return Comparison(">=", self, lift(other))

    def __and__(self, other) -> "Expression":
        return BooleanOp("AND", [self, lift(other)])

    def __or__(self, other) -> "Expression":
        return BooleanOp("OR", [self, lift(other)])

    def __invert__(self) -> "Expression":
        return NotOp(self)

    def __hash__(self) -> int:  # __eq__ is overloaded, keep hashable by id
        return id(self)

    def isin(self, values: Iterable) -> "Expression":
        return InList(self, list(values))

    def between(self, lo, hi) -> "Expression":
        return Between(self, lift(lo), lift(hi))


def lift(value) -> Expression:
    """Wrap a Python scalar into a :class:`Literal`; pass expressions through."""
    if isinstance(value, Expression):
        return value
    return Literal(value)


class Column(Expression):
    """Reference to a column by name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, table: Table) -> np.ndarray:
        return table[self.name]

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def evaluate(self, table: Table) -> np.ndarray:
        n = table.num_rows
        if isinstance(self.value, str):
            out = np.empty(n, dtype=object)
            out[:] = self.value
            return out
        return np.full(n, self.value)

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_ARITH: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "%": np.mod,
}


class BinaryOp(Expression):
    """Arithmetic between two expressions: ``+ - * / %``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in ("+", "-", "*", "/", "%"):
            raise PlanError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, table: Table) -> np.ndarray:
        lhs = self.left.evaluate(table)
        rhs = self.right.evaluate(table)
        if self.op == "/":
            lhs = np.asarray(lhs, dtype=np.float64)
            rhs = np.asarray(rhs, dtype=np.float64)
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(rhs == 0, np.nan, lhs / np.where(rhs == 0, 1, rhs))
        return _ARITH[self.op](lhs, rhs)

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def replace_children(self, children: Sequence[Expression]) -> Expression:
        left, right = children
        return BinaryOp(self.op, left, right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class UnaryOp(Expression):
    """Unary minus."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expression) -> None:
        if op != "-":
            raise PlanError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, table: Table) -> np.ndarray:
        return -self.operand.evaluate(table)

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def replace_children(self, children: Sequence[Expression]) -> Expression:
        return UnaryOp(self.op, children[0])

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


_CMP: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison(Expression):
    """Comparison producing a boolean mask."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _CMP:
            raise PlanError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, table: Table) -> np.ndarray:
        lhs = self.left.evaluate(table)
        rhs = self.right.evaluate(table)
        return np.asarray(_CMP[self.op](lhs, rhs), dtype=bool)

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def replace_children(self, children: Sequence[Expression]) -> Expression:
        left, right = children
        return Comparison(self.op, left, right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BooleanOp(Expression):
    """N-ary AND / OR over boolean expressions."""

    __slots__ = ("op", "operands")

    def __init__(self, op: str, operands: Sequence[Expression]) -> None:
        if op not in ("AND", "OR"):
            raise PlanError(f"unknown boolean operator {op!r}")
        if not operands:
            raise PlanError(f"{op} needs at least one operand")
        self.op = op
        self.operands = list(operands)

    def evaluate(self, table: Table) -> np.ndarray:
        result = np.asarray(self.operands[0].evaluate(table), dtype=bool)
        for operand in self.operands[1:]:
            mask = np.asarray(operand.evaluate(table), dtype=bool)
            result = result & mask if self.op == "AND" else result | mask
        return result

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for operand in self.operands:
            out |= operand.columns()
        return out

    def children(self) -> Tuple[Expression, ...]:
        return tuple(self.operands)

    def replace_children(self, children: Sequence[Expression]) -> Expression:
        return BooleanOp(self.op, list(children))

    def __repr__(self) -> str:
        sep = f" {self.op} "
        return "(" + sep.join(repr(o) for o in self.operands) + ")"


class NotOp(Expression):
    """Boolean negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def evaluate(self, table: Table) -> np.ndarray:
        return ~np.asarray(self.operand.evaluate(table), dtype=bool)

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def replace_children(self, children: Sequence[Expression]) -> Expression:
        return NotOp(children[0])

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


class InList(Expression):
    """``expr IN (v1, v2, ...)`` membership test."""

    __slots__ = ("operand", "values")

    def __init__(self, operand: Expression, values: Sequence) -> None:
        self.operand = operand
        self.values = list(values)

    def evaluate(self, table: Table) -> np.ndarray:
        arr = self.operand.evaluate(table)
        if len(self.values) == 0:
            return np.zeros(len(arr), dtype=bool)
        return np.isin(arr, np.asarray(self.values, dtype=arr.dtype if arr.dtype != object else object))

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def replace_children(self, children: Sequence[Expression]) -> Expression:
        return InList(children[0], self.values)

    def __repr__(self) -> str:
        return f"({self.operand!r} IN {self.values!r})"


class Between(Expression):
    """``expr BETWEEN lo AND hi`` (inclusive both ends, as in SQL)."""

    __slots__ = ("operand", "low", "high")

    def __init__(self, operand: Expression, low: Expression, high: Expression) -> None:
        self.operand = operand
        self.low = low
        self.high = high

    def evaluate(self, table: Table) -> np.ndarray:
        arr = self.operand.evaluate(table)
        lo = self.low.evaluate(table)
        hi = self.high.evaluate(table)
        return np.asarray((arr >= lo) & (arr <= hi), dtype=bool)

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns() | self.low.columns() | self.high.columns()

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand, self.low, self.high)

    def replace_children(self, children: Sequence[Expression]) -> Expression:
        operand, low, high = children
        return Between(operand, low, high)

    def __repr__(self) -> str:
        return f"({self.operand!r} BETWEEN {self.low!r} AND {self.high!r})"


class CaseWhen(Expression):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    __slots__ = ("branches", "default")

    def __init__(
        self,
        branches: Sequence[Tuple[Expression, Expression]],
        default: Optional[Expression] = None,
    ) -> None:
        if not branches:
            raise PlanError("CASE requires at least one WHEN branch")
        self.branches = list(branches)
        self.default = default if default is not None else Literal(0)

    def evaluate(self, table: Table) -> np.ndarray:
        result = np.asarray(self.default.evaluate(table), dtype=np.float64)
        # Apply branches in reverse so the first matching WHEN wins.
        for cond, value in reversed(self.branches):
            mask = np.asarray(cond.evaluate(table), dtype=bool)
            vals = np.asarray(value.evaluate(table), dtype=np.float64)
            result = np.where(mask, vals, result)
        return result

    def columns(self) -> FrozenSet[str]:
        out = self.default.columns()
        for cond, value in self.branches:
            out |= cond.columns() | value.columns()
        return out

    def children(self) -> Tuple[Expression, ...]:
        flat: List[Expression] = []
        for cond, value in self.branches:
            flat.extend((cond, value))
        flat.append(self.default)
        return tuple(flat)

    def replace_children(self, children: Sequence[Expression]) -> Expression:
        pairs = [
            (children[i], children[i + 1]) for i in range(0, len(children) - 1, 2)
        ]
        return CaseWhen(pairs, children[-1])

    def __repr__(self) -> str:
        parts = " ".join(f"WHEN {c!r} THEN {v!r}" for c, v in self.branches)
        return f"(CASE {parts} ELSE {self.default!r} END)"


_FUNCTIONS: Dict[str, Callable[..., np.ndarray]] = {
    "abs": np.abs,
    "sqrt": np.sqrt,
    "ln": np.log,
    "log": np.log,
    "exp": np.exp,
    "floor": np.floor,
    "ceil": np.ceil,
    "round": np.round,
    "lower": np.vectorize(lambda s: s.lower(), otypes=[object]),
    "upper": np.vectorize(lambda s: s.upper(), otypes=[object]),
    "length": np.vectorize(len, otypes=[np.int64]),
}


class FunctionCall(Expression):
    """Scalar function application, e.g. ``abs(x)``."""

    __slots__ = ("func_name", "args")

    def __init__(self, func_name: str, args: Sequence[Expression]) -> None:
        key = func_name.lower()
        if key not in _FUNCTIONS:
            raise PlanError(
                f"unknown function {func_name!r}; "
                f"supported: {sorted(_FUNCTIONS)}"
            )
        self.func_name = key
        self.args = list(args)

    def evaluate(self, table: Table) -> np.ndarray:
        values = [a.evaluate(table) for a in self.args]
        return _FUNCTIONS[self.func_name](*values)

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for a in self.args:
            out |= a.columns()
        return out

    def children(self) -> Tuple[Expression, ...]:
        return tuple(self.args)

    def replace_children(self, children: Sequence[Expression]) -> Expression:
        return FunctionCall(self.func_name, list(children))

    def __repr__(self) -> str:
        return f"{self.func_name}({', '.join(repr(a) for a in self.args)})"


def col(name: str) -> Column:
    """Shorthand constructor used throughout examples and tests."""
    return Column(name)


def compile_expression(expr: Expression) -> Callable[[Table], np.ndarray]:
    """Compile an expression tree into a single closure.

    The returned callable evaluates against any relation offering
    ``__getitem__(name)`` and ``num_rows`` — a :class:`Table` or one of
    the fused executor's lazy relation views — and produces output
    bit-identical to ``expr.evaluate`` (each node's compiled form runs
    the exact numpy operations of its ``evaluate``). Compiling flattens
    the per-row-batch cost of tree dispatch into plain function calls;
    the kernel cache memoizes the result per plan signature so repeated
    query shapes skip the tree walk entirely.

    Unknown :class:`Expression` subclasses fall back to their own
    ``evaluate`` — compilation is an optimization, never a semantics
    fork.
    """
    if isinstance(expr, Column):
        name = expr.name

        def _column(rel, _name=name):
            return rel[_name]

        return _column
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, str):

            def _str_literal(rel, _value=value):
                out = np.empty(rel.num_rows, dtype=object)
                out[:] = _value
                return out

            return _str_literal

        def _literal(rel, _value=value):
            return np.full(rel.num_rows, _value)

        return _literal
    if isinstance(expr, BinaryOp):
        left = compile_expression(expr.left)
        right = compile_expression(expr.right)
        if expr.op == "/":

            def _divide(rel, _l=left, _r=right):
                lhs = np.asarray(_l(rel), dtype=np.float64)
                rhs = np.asarray(_r(rel), dtype=np.float64)
                with np.errstate(divide="ignore", invalid="ignore"):
                    return np.where(rhs == 0, np.nan, lhs / np.where(rhs == 0, 1, rhs))

            return _divide
        op_fn = _ARITH[expr.op]

        def _arith(rel, _l=left, _r=right, _op=op_fn):
            return _op(_l(rel), _r(rel))

        return _arith
    if isinstance(expr, UnaryOp):
        operand = compile_expression(expr.operand)

        def _negate(rel, _o=operand):
            return -_o(rel)

        return _negate
    if isinstance(expr, Comparison):
        left = compile_expression(expr.left)
        right = compile_expression(expr.right)
        cmp_fn = _CMP[expr.op]

        def _compare(rel, _l=left, _r=right, _op=cmp_fn):
            return np.asarray(_op(_l(rel), _r(rel)), dtype=bool)

        return _compare
    if isinstance(expr, BooleanOp):
        operands = [compile_expression(o) for o in expr.operands]
        is_and = expr.op == "AND"

        def _boolean(rel, _ops=operands, _and=is_and):
            result = np.asarray(_ops[0](rel), dtype=bool)
            for operand_fn in _ops[1:]:
                mask = np.asarray(operand_fn(rel), dtype=bool)
                result = result & mask if _and else result | mask
            return result

        return _boolean
    if isinstance(expr, NotOp):
        operand = compile_expression(expr.operand)

        def _not(rel, _o=operand):
            return ~np.asarray(_o(rel), dtype=bool)

        return _not
    if isinstance(expr, InList):
        operand = compile_expression(expr.operand)
        values = list(expr.values)

        def _in_list(rel, _o=operand, _values=values):
            arr = _o(rel)
            if len(_values) == 0:
                return np.zeros(len(arr), dtype=bool)
            return np.isin(
                arr,
                np.asarray(
                    _values, dtype=arr.dtype if arr.dtype != object else object
                ),
            )

        return _in_list
    if isinstance(expr, Between):
        operand = compile_expression(expr.operand)
        low = compile_expression(expr.low)
        high = compile_expression(expr.high)

        def _between(rel, _o=operand, _lo=low, _hi=high):
            arr = _o(rel)
            return np.asarray((arr >= _lo(rel)) & (arr <= _hi(rel)), dtype=bool)

        return _between
    if isinstance(expr, CaseWhen):
        branches = [
            (compile_expression(cond), compile_expression(value))
            for cond, value in expr.branches
        ]
        default = compile_expression(expr.default)

        def _case(rel, _branches=branches, _default=default):
            result = np.asarray(_default(rel), dtype=np.float64)
            for cond_fn, value_fn in reversed(_branches):
                mask = np.asarray(cond_fn(rel), dtype=bool)
                vals = np.asarray(value_fn(rel), dtype=np.float64)
                result = np.where(mask, vals, result)
            return result

        return _case
    if isinstance(expr, FunctionCall):
        args = [compile_expression(a) for a in expr.args]
        fn = _FUNCTIONS[expr.func_name]

        def _function(rel, _args=args, _fn=fn):
            return _fn(*[a(rel) for a in _args])

        return _function
    return expr.evaluate


def walk(expr: Expression) -> Iterable[Expression]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def transform(expr: Expression, fn: Callable[[Expression], Optional[Expression]]) -> Expression:
    """Bottom-up rewrite: ``fn`` may return a replacement node or ``None``."""
    children = expr.children()
    if children:
        new_children = [transform(c, fn) for c in children]
        if any(n is not o for n, o in zip(new_children, children)):
            expr = expr.replace_children(new_children)
    replacement = fn(expr)
    return replacement if replacement is not None else expr


def conjuncts(predicate: Optional[Expression]) -> List[Expression]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, BooleanOp) and predicate.op == "AND":
        out: List[Expression] = []
        for operand in predicate.operands:
            out.extend(conjuncts(operand))
        return out
    return [predicate]


def combine_conjuncts(predicates: Sequence[Expression]) -> Optional[Expression]:
    """Inverse of :func:`conjuncts`."""
    preds = [p for p in predicates if p is not None]
    if not preds:
        return None
    if len(preds) == 1:
        return preds[0]
    return BooleanOp("AND", preds)
