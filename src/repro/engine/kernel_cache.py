"""Plan-signature kernel cache.

The fused executor compiles every (sub)plan it serves into *prepared
kernels* — closures that evaluate predicates, projection items, group
keys and aggregate inputs against a relation without walking the
expression tree node-by-node. Compilation is cheap but not free, and the
steady state this engine targets (millions of users issuing the same
dashboard shapes) repeats plan shapes endlessly; this cache memoizes the
compiled form so a repeated shape skips plan normalization and
expression-tree walking entirely.

Keys are ``(table_fingerprint, plan_signature)``:

* the *plan signature* is a normalized textual form of the operator
  chain (expressions print deterministically, sampling seeds are
  excluded because kernels are seed-independent), and
* the *table fingerprint* (:meth:`repro.engine.table.Table.fingerprint`)
  makes the key content-addressed, exactly like
  :mod:`repro.storage.synopsis_cache`: replacing a table's data yields a
  new fingerprint, so stale kernels (today structurally identical, in
  the future possibly dtype-specialized) can never be served for new
  content, and no explicit invalidation hook is required.

Entries are held under an LRU entry budget; hit/miss/eviction counters
are exported to the benchmark harness next to the synopsis-cache stats.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "KernelCacheStats",
    "KernelCache",
    "get_kernel_cache",
    "set_kernel_cache",
    "configure_kernel_cache",
]

#: Default entry budget. Prepared chains are a handful of closures each
#: (no data), so the cap bounds key churn, not memory pressure.
DEFAULT_MAX_ENTRIES = 512


@dataclass
class KernelCacheStats:
    """Counters exposed for tests and the benchmark harness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0


class KernelCache:
    """Memoizing LRU cache of prepared kernels, keyed by plan signature."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = KernelCacheStats()
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get_or_compile(self, key: Tuple, compiler: Callable[[], Any]) -> Any:
        """Return the cached kernel bundle for ``key`` or compile + admit it.

        ``compiler`` runs outside the lock; concurrent compilers of the
        same key may race and both compile — last write wins, and the
        results are interchangeable pure functions of the plan.
        """
        from ..obs.metrics import get_metrics

        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                get_metrics().inc(
                    "kernel_cache_lookups_total", result="hit"
                )
                return value
            self.stats.misses += 1
        get_metrics().inc("kernel_cache_lookups_total", result="miss")
        value = compiler()
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries


# ----------------------------------------------------------------------
# Process-wide default instance
# ----------------------------------------------------------------------
_global_cache: Optional[KernelCache] = None
_global_lock = threading.Lock()


def get_kernel_cache() -> KernelCache:
    """The process-wide kernel cache the fused executor uses by default."""
    global _global_cache
    with _global_lock:
        if _global_cache is None:
            _global_cache = KernelCache()
        return _global_cache


def set_kernel_cache(cache: Optional[KernelCache]) -> None:
    """Swap (or, with ``None``, reset) the process-wide kernel cache."""
    global _global_cache
    with _global_lock:
        _global_cache = cache


def configure_kernel_cache(max_entries: int) -> KernelCache:
    """Install a fresh global kernel cache with the given entry budget."""
    cache = KernelCache(max_entries=max_entries)
    set_kernel_cache(cache)
    return cache
