"""Fused, block-pipelined plan execution.

The materializing executor copies a full :class:`Table` at every operator
boundary: ``Filter`` gathers every column through ``take(mask)``,
``Project`` re-allocates its output, and ``GroupByAggregate`` reads the
copies back. On the serving path that copy overhead — not data touched —
dominates wall-clock, which is exactly the constant-factor failure mode
the paper's "no silver bullet" argument warns AQP layers about.

This module implements the fused alternative. A scan produces a
:class:`~repro.storage.blocks.ScanSelection` (which rows, what the touch
cost) instead of a Table; ``Filter``/``Project`` steps compose over lazy
*relations* — duck-typed namespaces that hand out zero-copy column views
and only gather (``col[mask]``) the columns an operator actually reads;
and linear aggregates fold directly over the masked views, so a
``Filter→Project→GroupByAggregate`` plan allocates exactly one Table: the
result. Because every expression operator is elementwise,
``f(col)[mask] == f(col[mask])`` holds bitwise, and the fused pipeline
produces results, ``ExecutionStats`` and provenance identical to the
materializing executor (the differential suite in
``tests/test_fused_executor.py`` fuzzes this).

Selection-vector lifetime: a selection is born at the scan (``None`` for
full scans, int64 row indices for samples), narrows through filters as
boolean masks layered on the lazy relations, and dies either inside the
aggregate fold (never materialized) or at :func:`materialize_relation`
when a consumer — join, union, ORDER BY, or the plan top — truly needs a
contiguous Table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..storage.blocks import BLOCK_ID_COLUMN, ScanSelection
from ..core.exceptions import SchemaError
from .aggregates import (
    AggregateSpec,
    compute_aggregate_values,
    compute_grouped_aggregate_values,
    encode_groups_arrays,
)
from .expressions import compile_expression
from .plan import Filter, GroupByAggregate, PlanNode, Project, Scan
from .table import Table

__all__ = [
    "FusedChain",
    "PreparedChain",
    "extract_chain",
    "chain_signature",
    "signature_digest",
    "compile_chain",
    "scan_relation",
    "apply_steps",
    "run_prepared_aggregate",
    "materialize_relation",
    "LazyRelation",
    "MaskedRelation",
    "SliceRelation",
]


# ----------------------------------------------------------------------
# Lazy relations
# ----------------------------------------------------------------------

class LazyRelation:
    """A named set of lazily computed, memoized columns.

    Duck-type compatible with :class:`Table` for everything expressions
    need (``rel[name]`` and ``rel.num_rows``); nothing is computed until
    a column is read, and each column is computed at most once.
    """

    __slots__ = ("_getters", "_cache", "num_rows")

    def __init__(
        self, getters: Dict[str, Callable[[], np.ndarray]], num_rows: int
    ) -> None:
        self._getters = getters
        self._cache: Dict[str, np.ndarray] = {}
        self.num_rows = num_rows

    @property
    def column_names(self) -> List[str]:
        return list(self._getters)

    def __contains__(self, name: str) -> bool:
        return name in self._getters

    def __getitem__(self, name: str) -> np.ndarray:
        arr = self._cache.get(name)
        if arr is None:
            getter = self._getters.get(name)
            if getter is None:
                raise SchemaError(
                    f"no column {name!r} in fused pipeline "
                    f"(have {self.column_names})"
                )
            arr = getter()
            self._cache[name] = arr
        return arr


class MaskedRelation:
    """A parent relation narrowed by a boolean selection mask.

    Columns compact lazily (``parent[name][mask]``) and are memoized, so
    a downstream aggregate touching 3 of 24 columns gathers exactly 3.
    """

    __slots__ = ("_parent", "_mask", "_cache", "num_rows")

    def __init__(self, parent, mask: np.ndarray) -> None:
        self._parent = parent
        self._mask = mask
        self._cache: Dict[str, np.ndarray] = {}
        self.num_rows = int(np.count_nonzero(mask))

    @property
    def column_names(self) -> List[str]:
        return self._parent.column_names

    def __contains__(self, name: str) -> bool:
        return name in self._parent

    def __getitem__(self, name: str) -> np.ndarray:
        arr = self._cache.get(name)
        if arr is None:
            arr = self._parent[name][self._mask]
            self._cache[name] = arr
        return arr


class SliceRelation:
    """A zero-copy, optionally renamed row-range view of a Table.

    Backed by ``arr[start:stop]`` basic slicing, so no data is copied —
    the per-block replacement for ``table.block(b).rename(...)`` on the
    sharded partial-scan path, which used to allocate two Tables per
    block.
    """

    __slots__ = ("_table", "_start", "_stop", "_rename", "num_rows")

    def __init__(
        self,
        table: Table,
        start: int,
        stop: int,
        rename: Optional[Dict[str, str]] = None,
    ) -> None:
        self._table = table
        self._start = start
        self._stop = stop
        # Map output name -> source name (inverted from Table.rename form).
        if rename:
            self._rename = {rename.get(k, k): k for k in table.column_names}
        else:
            self._rename = None
        self.num_rows = stop - start

    @property
    def column_names(self) -> List[str]:
        if self._rename is not None:
            return list(self._rename)
        return self._table.column_names

    def __contains__(self, name: str) -> bool:
        if self._rename is not None:
            return name in self._rename
        return name in self._table

    def __getitem__(self, name: str) -> np.ndarray:
        source = name
        if self._rename is not None:
            try:
                source = self._rename[name]
            except KeyError:
                raise SchemaError(
                    f"no column {name!r} in shard view "
                    f"(have {self.column_names})"
                ) from None
        return self._table[source][self._start : self._stop]


# ----------------------------------------------------------------------
# Chain extraction
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FusedChain:
    """A fusable linear plan fragment.

    ``steps`` are bottom-up (scan-adjacent first); ``nodes_top_down``
    preserves the materializing executor's recursion order so deadline
    checkpoints fire at the same sites in the same order.
    """

    scan: Scan
    steps: Tuple[Tuple[str, Any], ...]
    aggregate: Optional[GroupByAggregate]
    nodes_top_down: Tuple[PlanNode, ...]


def extract_chain(node: PlanNode) -> Optional[FusedChain]:
    """Recognize ``[GroupByAggregate] → (Filter|Project)* → Scan`` chains.

    Returns ``None`` for anything else — including a bare Scan, where the
    materializing path is already zero-copy for full scans and a single
    gather for samples, so fusion has nothing to remove.
    """
    nodes: List[PlanNode] = []
    aggregate: Optional[GroupByAggregate] = None
    cur = node
    if isinstance(cur, GroupByAggregate):
        aggregate = cur
        nodes.append(cur)
        cur = cur.child
    steps_top_down: List[Tuple[str, Any]] = []
    while isinstance(cur, (Filter, Project)):
        nodes.append(cur)
        if isinstance(cur, Filter):
            steps_top_down.append(("filter", cur.predicate))
        else:
            steps_top_down.append(("project", cur.items))
        cur = cur.child
    if not isinstance(cur, Scan):
        return None
    if aggregate is None and not steps_top_down:
        return None
    nodes.append(cur)
    return FusedChain(
        scan=cur,
        steps=tuple(reversed(steps_top_down)),
        aggregate=aggregate,
        nodes_top_down=tuple(nodes),
    )


def chain_signature(chain: FusedChain) -> str:
    """Normalized textual form of a chain, the kernel-cache key half.

    Every expression node prints deterministically, so two structurally
    identical chains produce equal signatures. The sampling seed is
    deliberately excluded: prepared kernels never consume randomness
    (row selection happens at scan time, outside the kernels).
    """
    parts = [
        f"scan={chain.scan.table_name}",
        f"cols={list(chain.scan.columns) if chain.scan.columns is not None else None}",
        f"alias={chain.scan.alias}",
    ]
    sample = chain.scan.sample
    if sample is not None:
        parts.append(f"sample={sample.method}:{sample.rate}:{sample.size}")
    for kind, payload in chain.steps:
        if kind == "filter":
            parts.append(f"filter={payload!r}")
        else:
            items = ";".join(f"{alias}={expr!r}" for expr, alias in payload)
            parts.append(f"project={items}")
    agg = chain.aggregate
    if agg is not None:
        keys = ";".join(f"{alias}={expr!r}" for expr, alias in agg.keys)
        aggs = ";".join(repr(spec) for spec in agg.aggregates)
        parts.append(f"agg=[{keys}]|[{aggs}]|having={agg.having!r}")
    return "\n".join(parts)


def signature_digest(signature: str) -> str:
    """Short stable digest of a chain signature, for span attributes.

    Full signatures are multi-line and repeat per scan; traces carry
    this 12-hex-char handle instead so equal plans are still trivially
    equatable across spans without bloating every trace document.
    """
    import hashlib

    return hashlib.sha1(signature.encode("utf-8")).hexdigest()[:12]


# ----------------------------------------------------------------------
# Chain compilation
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PreparedAggregate:
    """Compiled closures for a GroupByAggregate terminal."""

    key_fns: Tuple[Callable, ...]
    key_aliases: Tuple[str, ...]
    specs: Tuple[AggregateSpec, ...]
    input_fns: Tuple[Optional[Callable], ...]
    having_fn: Optional[Callable]


@dataclass(frozen=True)
class PreparedChain:
    """Compiled kernels for a :class:`FusedChain` — what the cache stores.

    Pure functions of the plan shape: no data, no RNG state, so one
    prepared chain serves every execution of the same shape.
    """

    steps: Tuple[Tuple[str, Any], ...]
    aggregate: Optional[PreparedAggregate]


def _broadcast_item(fn: Callable, rel) -> np.ndarray:
    """Evaluate a projection/key closure with scalar broadcast.

    Mirrors the materializing executor's ``_materialize``: a 0-d result
    (e.g. a constant folded to a scalar) broadcasts to relation length.
    """
    arr = np.asarray(fn(rel))
    if arr.ndim == 0:
        arr = np.full(rel.num_rows, arr[()])
    return arr


def compile_chain(chain: FusedChain) -> PreparedChain:
    """Compile every expression in the chain into closures."""
    steps: List[Tuple[str, Any]] = []
    for kind, payload in chain.steps:
        if kind == "filter":
            steps.append(("filter", compile_expression(payload)))
        else:
            steps.append(
                (
                    "project",
                    tuple(
                        (compile_expression(expr), alias)
                        for expr, alias in payload
                    ),
                )
            )
    prepared_agg: Optional[PreparedAggregate] = None
    agg = chain.aggregate
    if agg is not None:
        prepared_agg = PreparedAggregate(
            key_fns=tuple(compile_expression(expr) for expr, _ in agg.keys),
            key_aliases=tuple(alias for _, alias in agg.keys),
            specs=tuple(agg.aggregates),
            input_fns=tuple(
                compile_expression(spec.argument)
                if spec.argument is not None
                else None
                for spec in agg.aggregates
            ),
            having_fn=(
                compile_expression(agg.having)
                if agg.having is not None
                else None
            ),
        )
    return PreparedChain(steps=tuple(steps), aggregate=prepared_agg)


# ----------------------------------------------------------------------
# Runtime
# ----------------------------------------------------------------------

def scan_relation(
    table: Table,
    scan_columns: Sequence[str],
    selection: ScanSelection,
    alias: Optional[str],
) -> LazyRelation:
    """Build the scan-output namespace without materializing anything.

    Column names mirror the materializing scan exactly — pruned to
    ``scan_columns``, alias-qualified when an alias is set, with the
    block-id provenance column appended last for block samples — but each
    column is a thunk: a shared view for full scans, a single lazy gather
    for samples.
    """
    row_indices = selection.row_indices
    getters: Dict[str, Callable[[], np.ndarray]] = {}

    def make_getter(name: str) -> Callable[[], np.ndarray]:
        if row_indices is None:
            return lambda: table[name]
        return lambda: table[name][row_indices]

    prefix = f"{alias}." if alias is not None else ""
    for name in scan_columns:
        getters[f"{prefix}{name}"] = make_getter(name)
    if selection.block_id_column is not None:
        ids = selection.block_id_column
        getters[f"{prefix}{BLOCK_ID_COLUMN}"] = lambda: ids
    return LazyRelation(getters, selection.num_rows)


def apply_steps(prepared: PreparedChain, rel):
    """Run the compiled Filter/Project steps over a relation.

    Filters evaluate their compiled predicate against the *current*
    (already narrowed) relation and layer the resulting mask lazily;
    projections swap in a new namespace of item thunks. No copies happen
    here beyond the per-referenced-column gathers the masks force.
    """
    for kind, payload in prepared.steps:
        if kind == "filter":
            mask = np.asarray(payload(rel), dtype=bool)
            rel = MaskedRelation(rel, mask)
        else:
            parent = rel

            def make_item(fn: Callable, source=parent) -> Callable[[], np.ndarray]:
                return lambda: _broadcast_item(fn, source)

            getters = {alias: make_item(fn) for fn, alias in payload}
            rel = LazyRelation(getters, parent.num_rows)
    return rel


def _aggregate_inputs(
    spec: AggregateSpec, input_fn: Optional[Callable], rel
) -> Optional[np.ndarray]:
    """Per-row aggregate input, matching ``AggregateSpec.input_values``.

    Plain COUNT needs no vector at all; COUNT(*) variants that do
    (count_distinct without an argument) fall back to the same implicit
    ones vector the materializing path uses.
    """
    if spec.func == "count":
        return None
    if input_fn is None:
        return np.ones(rel.num_rows, dtype=np.float64)
    return input_fn(rel)


def run_prepared_aggregate(prepared: PreparedChain, rel) -> Table:
    """Fold the compiled aggregate directly over the (masked) relation.

    Reproduces ``Executor._run_aggregate`` arithmetic exactly — same
    kernels, same empty-input special case, same key-column dtypes — but
    allocates only the result Table (plus one more if HAVING prunes it,
    matching the materializing path's own output-side ``take``).
    """
    pa = prepared.aggregate
    assert pa is not None
    cols: Dict[str, np.ndarray] = {}
    if not pa.key_aliases:
        for spec, input_fn in zip(pa.specs, pa.input_fns):
            values = _aggregate_inputs(spec, input_fn, rel)
            cols[spec.alias] = np.array(
                [compute_aggregate_values(spec, values, rel.num_rows)]
            )
        result = Table(cols, name="aggregate")
    elif rel.num_rows == 0:
        for alias in pa.key_aliases:
            cols[alias] = np.array([])
        for spec in pa.specs:
            cols[spec.alias] = np.array([])
        result = Table(cols, name="aggregate")
    else:
        key_arrays = [_broadcast_item(fn, rel) for fn in pa.key_fns]
        group_ids, key_columns = encode_groups_arrays(key_arrays)
        num_groups = len(key_columns[0])
        for alias, key_column in zip(pa.key_aliases, key_columns):
            cols[alias] = key_column
        for spec, input_fn in zip(pa.specs, pa.input_fns):
            values = _aggregate_inputs(spec, input_fn, rel)
            cols[spec.alias] = compute_grouped_aggregate_values(
                spec, values, group_ids, num_groups
            )
        result = Table(cols, name="aggregate")
    if pa.having_fn is not None:
        mask = np.asarray(pa.having_fn(result), dtype=bool)
        result = result.take(mask)
    return result


def materialize_relation(rel, name: str, block_size: int) -> Table:
    """Force a lazy relation out into a contiguous Table.

    Called only when a consumer genuinely needs one — the chain sits
    under a join/union/ORDER BY/LIMIT or is the plan top. Column order,
    name and block size match what the materializing operator stack
    would have produced.
    """
    return Table(
        {n: rel[n] for n in rel.column_names},
        name=name,
        block_size=block_size,
    )
