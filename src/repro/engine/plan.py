"""Logical query plans.

Plans are immutable trees of dataclass nodes. The same representation is
used for exact queries and for the rewritten approximate queries the AQP
layers produce — a sampler is just a ``SampleClause`` attached to a
``Scan`` node, exactly as ``TABLESAMPLE`` attaches to a table reference in
SQL. That uniformity is what lets the online planners (Quickr-lite, the
pilot planner) rewrite plans without any engine modification.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..core.exceptions import PlanError
from .aggregates import AggregateSpec
from .expressions import Expression

# Sampling methods a Scan can carry. These correspond to the SQL standard's
# TABLESAMPLE BERNOULLI (row-level) and TABLESAMPLE SYSTEM (block-level),
# plus fixed-size variants some engines expose as extensions.
SAMPLE_METHODS = ("bernoulli_rows", "system_blocks", "fixed_rows", "fixed_blocks")


@dataclass(frozen=True)
class SampleClause:
    """Sampling directive attached to a scan.

    ``rate`` is a probability in (0, 1] for Bernoulli methods; ``size`` is
    an absolute row/block count for fixed-size methods.
    """

    method: str
    rate: Optional[float] = None
    size: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.method not in SAMPLE_METHODS:
            raise PlanError(f"unknown sampling method {self.method!r}")
        if self.method in ("bernoulli_rows", "system_blocks"):
            if self.rate is None or not (0.0 < self.rate <= 1.0):
                raise PlanError(f"{self.method} requires rate in (0, 1]")
        else:
            if self.size is None or self.size < 0:
                raise PlanError(f"{self.method} requires a non-negative size")

    @property
    def is_block_level(self) -> bool:
        return self.method in ("system_blocks", "fixed_blocks")


class PlanNode:
    """Base class for plan operators."""

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def replace_children(self, children: Sequence["PlanNode"]) -> "PlanNode":
        if children:
            raise PlanError(f"{type(self).__name__} takes no children")
        return self

    def explain(self, indent: int = 0) -> str:
        """Multi-line textual plan, EXPLAIN-style."""
        lines = ["  " * indent + self._describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Scan(PlanNode):
    """Base table access, optionally sampled and column-pruned."""

    table_name: str
    columns: Optional[Tuple[str, ...]] = None
    sample: Optional[SampleClause] = None
    alias: Optional[str] = None

    def _describe(self) -> str:
        parts = [f"Scan({self.table_name}"]
        if self.alias and self.alias != self.table_name:
            parts.append(f" AS {self.alias}")
        if self.columns is not None:
            parts.append(f", cols={list(self.columns)}")
        if self.sample is not None:
            if self.sample.rate is not None:
                parts.append(f", sample={self.sample.method}@{self.sample.rate:g}")
            else:
                parts.append(f", sample={self.sample.method}#{self.sample.size}")
        parts.append(")")
        return "".join(parts)


@dataclass(frozen=True)
class Filter(PlanNode):
    child: PlanNode
    predicate: Expression

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def replace_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return replace(self, child=children[0])

    def _describe(self) -> str:
        return f"Filter({self.predicate!r})"


@dataclass(frozen=True)
class Project(PlanNode):
    """Compute named output expressions."""

    child: PlanNode
    items: Tuple[Tuple[Expression, str], ...]  # (expression, alias)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def replace_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return replace(self, child=children[0])

    def _describe(self) -> str:
        cols = ", ".join(alias for _, alias in self.items)
        return f"Project({cols})"


@dataclass(frozen=True)
class HashJoin(PlanNode):
    """Equi-join; left side builds the hash table."""

    left: PlanNode
    right: PlanNode
    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]
    how: str = "inner"

    def __post_init__(self) -> None:
        if len(self.left_keys) != len(self.right_keys) or not self.left_keys:
            raise PlanError("join requires matching non-empty key lists")
        if self.how not in ("inner", "left"):
            raise PlanError(f"unsupported join type {self.how!r}")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def replace_children(self, children: Sequence[PlanNode]) -> PlanNode:
        left, right = children
        return replace(self, left=left, right=right)

    def _describe(self) -> str:
        keys = ", ".join(
            f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin[{self.how}]({keys})"


@dataclass(frozen=True)
class GroupByAggregate(PlanNode):
    """Grouped (or, with no keys, scalar) aggregation."""

    child: PlanNode
    keys: Tuple[Tuple[Expression, str], ...]  # (expression, alias)
    aggregates: Tuple[AggregateSpec, ...]
    having: Optional[Expression] = None

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def replace_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return replace(self, child=children[0])

    def _describe(self) -> str:
        keys = ", ".join(alias for _, alias in self.keys) or "<none>"
        aggs = ", ".join(repr(a) for a in self.aggregates)
        return f"GroupByAggregate(keys=[{keys}], aggs=[{aggs}])"


@dataclass(frozen=True)
class OrderBy(PlanNode):
    child: PlanNode
    items: Tuple[Tuple[str, bool], ...]  # (column name, ascending)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def replace_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return replace(self, child=children[0])

    def _describe(self) -> str:
        items = ", ".join(f"{c} {'ASC' if a else 'DESC'}" for c, a in self.items)
        return f"OrderBy({items})"


@dataclass(frozen=True)
class Limit(PlanNode):
    child: PlanNode
    count: int

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def replace_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return replace(self, child=children[0])

    def _describe(self) -> str:
        return f"Limit({self.count})"


@dataclass(frozen=True)
class UnionAll(PlanNode):
    inputs: Tuple[PlanNode, ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return self.inputs

    def replace_children(self, children: Sequence[PlanNode]) -> PlanNode:
        return UnionAll(tuple(children))

    def _describe(self) -> str:
        return f"UnionAll({len(self.inputs)} inputs)"


# ----------------------------------------------------------------------
# Tree utilities
# ----------------------------------------------------------------------

def walk_plan(node: PlanNode):
    """Pre-order traversal."""
    yield node
    for child in node.children():
        yield from walk_plan(child)


def transform_plan(node: PlanNode, fn) -> PlanNode:
    """Bottom-up rewrite; ``fn(node)`` may return a replacement or ``None``."""
    children = node.children()
    if children:
        new_children = [transform_plan(c, fn) for c in children]
        if any(n is not o for n, o in zip(new_children, children)):
            node = node.replace_children(new_children)
    result = fn(node)
    return result if result is not None else node


def scans_in(node: PlanNode) -> List[Scan]:
    """All Scan leaves of a plan, left-to-right."""
    return [n for n in walk_plan(node) if isinstance(n, Scan)]


def attach_sample(node: PlanNode, table_name: str, sample: SampleClause) -> PlanNode:
    """Return a plan with ``sample`` attached to every scan of ``table_name``."""

    def rewrite(n: PlanNode) -> Optional[PlanNode]:
        if isinstance(n, Scan) and n.table_name == table_name:
            return replace(n, sample=sample)
        return None

    return transform_plan(node, rewrite)


def strip_samples(node: PlanNode) -> PlanNode:
    """Return a plan with all sampling clauses removed (the exact plan)."""

    def rewrite(n: PlanNode) -> Optional[PlanNode]:
        if isinstance(n, Scan) and n.sample is not None:
            return replace(n, sample=None)
        return None

    return transform_plan(node, rewrite)
