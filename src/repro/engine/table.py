"""Columnar in-memory tables.

The engine stores data column-wise in numpy arrays, which is the layout
assumed throughout the AQP literature the paper surveys: scans touch only
the referenced columns, and block/page structure is expressed as contiguous
row ranges (see :mod:`repro.storage.blocks`).
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import SchemaError

#: Values sampled per column by :meth:`Table.fingerprint`. Enough that a
#: table swap is detected with near-certainty, small enough that the
#: fingerprint stays O(columns) regardless of row count.
_FINGERPRINT_SAMPLES = 64

#: Default number of rows per storage block. Chosen so that laptop-scale
#: tables (1e5-1e7 rows) have enough blocks for block sampling to be
#: meaningful, mirroring an 8KB page holding ~1000 narrow rows.
DEFAULT_BLOCK_SIZE = 1024


def _as_column_array(values: Iterable) -> np.ndarray:
    """Coerce ``values`` into a 1-D numpy array suitable for a column.

    Numeric and boolean data keep their native dtypes; anything else
    (strings, mixed) is stored as ``object`` so equality and hashing work
    uniformly in joins and group-bys.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise SchemaError(f"columns must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind in ("i", "u", "f", "b"):
        return arr
    if arr.dtype.kind == "U" or arr.dtype.kind == "S" or arr.dtype == object:
        return arr.astype(object)
    if arr.dtype.kind == "M":  # datetimes: keep as int64 days for simplicity
        return arr.astype("datetime64[D]").astype(np.int64)
    raise SchemaError(f"unsupported column dtype: {arr.dtype}")


class Table:
    """An immutable, named collection of equal-length columns.

    Parameters
    ----------
    columns:
        Mapping from column name to array-like of values.
    name:
        Optional table name used in error messages and plans.
    block_size:
        Number of rows per storage block; drives block sampling and the
        cost model's notion of I/O.
    """

    __slots__ = ("_columns", "name", "block_size", "_fingerprint_cache")

    #: Monotonic count of Table constructions in this process. The fused
    #: executor's "zero intermediate Tables" guarantee is asserted against
    #: deltas of this counter (see :func:`count_table_allocations`).
    _allocations: int = 0

    def __init__(
        self,
        columns: Mapping[str, Iterable],
        name: str = "",
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        Table._allocations += 1
        if block_size <= 0:
            raise SchemaError("block_size must be positive")
        self._columns: Dict[str, np.ndarray] = {}
        nrows: Optional[int] = None
        for col_name, values in columns.items():
            arr = _as_column_array(values)
            if nrows is None:
                nrows = len(arr)
            elif len(arr) != nrows:
                raise SchemaError(
                    f"column {col_name!r} has {len(arr)} rows, expected {nrows}"
                )
            self._columns[col_name] = arr
        self.name = name
        self.block_size = block_size
        self._fingerprint_cache: Optional[str] = None

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r} in table {self.name or '<anonymous>'} "
                f"(have {self.column_names})"
            ) from None

    def column(self, name: str) -> np.ndarray:
        """Alias of ``table[name]``."""
        return self[name]

    def columns_dict(self) -> Dict[str, np.ndarray]:
        """A shallow copy of the name -> array mapping."""
        return dict(self._columns)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray, name: Optional[str] = None) -> "Table":
        """Row subset/reorder by integer indices or boolean mask.

        Exactly two selector forms are accepted, and they are
        distinguished by dtype, never by length:

        * **boolean mask** — must have exactly ``num_rows`` entries; rows
          where the mask is True are kept, in table order (the Filter and
          HAVING call sites).
        * **integer index array** — any length; rows are gathered in the
          given order, duplicates and reordering allowed (the sampling
          and ORDER BY call sites). Empty arrays of any dtype are
          treated as an empty integer selector.

        Any other dtype (e.g. a float array that "looks like" indices)
        raises :class:`SchemaError` so mask-vs-index semantics can never
        silently diverge at a call site.
        """
        indices = np.asarray(indices)
        if indices.ndim != 1:
            raise SchemaError(
                f"take() selector must be 1-D, got shape {indices.shape}"
            )
        if indices.dtype == bool:
            if len(indices) != self.num_rows:
                raise SchemaError(
                    f"boolean mask length {len(indices)} != rows {self.num_rows}"
                )
        elif indices.dtype.kind not in ("i", "u"):
            if indices.size == 0:
                indices = indices.astype(np.int64)
            else:
                raise SchemaError(
                    "take() selector must be a boolean mask or integer "
                    f"indices, got dtype {indices.dtype}"
                )
        return Table(
            {k: v[indices] for k, v in self._columns.items()},
            name=name if name is not None else self.name,
            block_size=self.block_size,
        )

    def select(self, names: Sequence[str], name: Optional[str] = None) -> "Table":
        """Column subset (projection)."""
        return Table(
            {n: self[n] for n in names},
            name=name if name is not None else self.name,
            block_size=self.block_size,
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a table with columns renamed per ``mapping``."""
        return Table(
            {mapping.get(k, k): v for k, v in self._columns.items()},
            name=self.name,
            block_size=self.block_size,
        )

    def with_column(self, name: str, values: Iterable) -> "Table":
        """Return a copy with column ``name`` added or replaced."""
        cols = dict(self._columns)
        cols[name] = values
        return Table(cols, name=self.name, block_size=self.block_size)

    def head(self, n: int) -> "Table":
        return self.take(np.arange(min(n, self.num_rows)))

    def slice_rows(self, start: int, stop: int) -> "Table":
        return Table(
            {k: v[start:stop] for k, v in self._columns.items()},
            name=self.name,
            block_size=self.block_size,
        )

    @staticmethod
    def concat(tables: Sequence["Table"], name: str = "") -> "Table":
        """Vertical concatenation (bag UNION ALL)."""
        if not tables:
            return Table({}, name=name)
        names = tables[0].column_names
        for t in tables[1:]:
            if t.column_names != names:
                raise SchemaError(
                    f"UNION ALL schema mismatch: {names} vs {t.column_names}"
                )
        cols = {}
        for col in names:
            parts = [t[col] for t in tables]
            if any(p.dtype == object for p in parts):
                parts = [p.astype(object) for p in parts]
            cols[col] = np.concatenate(parts)
        return Table(cols, name=name, block_size=tables[0].block_size)

    @staticmethod
    def empty_like(template: "Table") -> "Table":
        return template.take(np.array([], dtype=np.int64))

    def split_by_assignment(
        self, assignment: np.ndarray, num_parts: int
    ) -> List["Table"]:
        """Partition rows into ``num_parts`` tables by an assignment vector.

        ``assignment[i]`` names the part row ``i`` belongs to; parts with
        no rows come back empty. Row order within each part follows the
        original table (a stable partition), which keeps block structure
        and downstream fingerprints deterministic.
        """
        assignment = np.asarray(assignment)
        if len(assignment) != self.num_rows:
            raise SchemaError(
                f"assignment length {len(assignment)} != rows {self.num_rows}"
            )
        if num_parts < 1:
            raise SchemaError("num_parts must be >= 1")
        if len(assignment) and (
            assignment.min() < 0 or assignment.max() >= num_parts
        ):
            raise SchemaError(
                f"assignment values must lie in [0, {num_parts})"
            )
        order = np.argsort(assignment, kind="stable")
        sorted_assign = assignment[order]
        ids = np.arange(num_parts)
        starts = np.searchsorted(sorted_assign, ids, side="left")
        stops = np.searchsorted(sorted_assign, ids, side="right")
        return [
            self.take(order[start:stop])
            for start, stop in zip(starts, stops)
        ]

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        if self.num_rows == 0:
            return 0
        return (self.num_rows + self.block_size - 1) // self.block_size

    def block_bounds(self, block_id: int) -> Tuple[int, int]:
        """Row range ``[start, stop)`` covered by ``block_id``."""
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(f"block {block_id} out of range [0, {self.num_blocks})")
        start = block_id * self.block_size
        stop = min(start + self.block_size, self.num_rows)
        return start, stop

    def block(self, block_id: int) -> "Table":
        start, stop = self.block_bounds(block_id)
        return self.slice_rows(start, stop)

    def block_ids_of_rows(self, row_indices: np.ndarray) -> np.ndarray:
        """Block id of each row index."""
        return np.asarray(row_indices) // self.block_size

    # ------------------------------------------------------------------
    # Convenience / debug
    # ------------------------------------------------------------------
    def iter_rows(self) -> Iterator[Tuple]:
        """Iterate rows as tuples (slow; tests/debug only)."""
        arrays = list(self._columns.values())
        for i in range(self.num_rows):
            yield tuple(arr[i] for arr in arrays)

    def to_pylist(self) -> List[Dict[str, object]]:
        """Rows as list of dicts (slow; tests/debug only)."""
        names = self.column_names
        return [dict(zip(names, row)) for row in self.iter_rows()]

    def fingerprint(self) -> str:
        """Cheap, deterministic content hash for synopsis-cache keys.

        Hashes the schema (column names + dtypes), the row count, and a
        checksum of up to ``_FINGERPRINT_SAMPLES`` evenly spaced values
        per column (always including the first and last row). Any length
        change and almost any content change flips the digest; a change
        confined entirely to unsampled rows of an equal-length table can
        escape — the documented price of an O(columns) fingerprint.

        Tables are immutable, so the digest is computed once and cached.
        """
        if self._fingerprint_cache is not None:
            return self._fingerprint_cache
        h = hashlib.blake2b(digest_size=16)
        n = self.num_rows
        h.update(f"rows={n};block={self.block_size};".encode())
        if n:
            take = min(n, _FINGERPRINT_SAMPLES)
            probe = np.unique(
                np.concatenate(
                    [np.linspace(0, n - 1, take).astype(np.int64), [0, n - 1]]
                )
            )
        else:
            probe = np.array([], dtype=np.int64)
        from ..sketches.hashing import hash64

        for name in sorted(self._columns):
            arr = self._columns[name]
            h.update(f"{name}:{arr.dtype.str};".encode())
            if len(probe):
                # Position-sensitive: the raw hash vector, not a reduction.
                h.update(np.ascontiguousarray(hash64(arr[probe], seed=1)).tobytes())
        self._fingerprint_cache = h.hexdigest()
        return self._fingerprint_cache

    def estimated_bytes(self) -> int:
        """Rough in-memory footprint used by the cost model."""
        total = 0
        for arr in self._columns.values():
            if arr.dtype == object:
                total += arr.size * 24  # pointer + small-string estimate
            else:
                total += arr.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Table(name={self.name!r}, rows={self.num_rows}, "
            f"cols={self.column_names})"
        )


class TableAllocationProbe:
    """Handle yielded by :func:`count_table_allocations`."""

    __slots__ = ("_start",)

    def __init__(self, start: int) -> None:
        self._start = start

    @property
    def count(self) -> int:
        """Tables constructed since the probe was opened."""
        return Table._allocations - self._start


@contextmanager
def count_table_allocations() -> Iterator[TableAllocationProbe]:
    """Count Table constructions inside a ``with`` block.

    The counter is process-global and monotonic, so the probe is a pure
    observer — nesting probes or running them around arbitrary engine
    code has no side effects. The differential tests use this to assert
    the fused executor's zero-intermediate-Table property.
    """
    yield TableAllocationProbe(Table._allocations)
