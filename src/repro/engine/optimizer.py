"""Rule-based logical optimizer.

Three rewrites are applied, in order:

1. **Predicate pushdown** — filter conjuncts move below projections and
   joins toward the scans whose columns they reference. Besides being a
   standard optimization, this interacts with sampling: a predicate pushed
   *below* a sampler filters the sample exactly as it would filter the
   table (the selection/sampling commutativity every sampling-based AQP
   scheme relies on), so pushdown never changes estimate distributions.
2. **Join input ordering** — the smaller estimated input becomes the hash
   build side.
3. **Projection pruning** — scans load only the columns the rest of the
   plan needs, mirroring columnar execution.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Set, Tuple

from ..core.exceptions import PlanError
from .expressions import Expression, combine_conjuncts, conjuncts
from .plan import (
    Filter,
    GroupByAggregate,
    HashJoin,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    UnionAll,
    transform_plan,
)


def optimize_plan(plan: PlanNode, database) -> PlanNode:
    """Apply all rewrite rules."""
    from ..obs.trace import span

    with span("optimize"):
        plan = push_down_with_catalog(plan, database)
        plan = order_join_inputs(plan, database)
        plan = prune_scan_columns(plan, database)
        return plan


# ----------------------------------------------------------------------
# Output-column inference
# ----------------------------------------------------------------------

def output_columns(node: PlanNode, database) -> Set[str]:
    """Column names produced by a plan node."""
    if isinstance(node, Scan):
        table = database.table(node.table_name)
        names = (
            list(node.columns) if node.columns is not None else table.column_names
        )
        if node.alias is not None:
            return {f"{node.alias}.{n}" for n in names}
        return set(names)
    if isinstance(node, Filter):
        return output_columns(node.child, database)
    if isinstance(node, Project):
        return {alias for _, alias in node.items}
    if isinstance(node, HashJoin):
        left = output_columns(node.left, database)
        right = output_columns(node.right, database)
        merged = set(left)
        for name in right:
            merged.add(name if name not in merged else f"{name}__r")
        return merged
    if isinstance(node, GroupByAggregate):
        names = {alias for _, alias in node.keys}
        names |= {spec.alias for spec in node.aggregates}
        return names
    if isinstance(node, (OrderBy, Limit)):
        return output_columns(node.child, database)
    if isinstance(node, UnionAll):
        return output_columns(node.inputs[0], database)
    raise PlanError(f"unknown node {type(node).__name__}")


# ----------------------------------------------------------------------
# Rule 1: predicate pushdown
# ----------------------------------------------------------------------

def push_down_predicates(plan: PlanNode) -> PlanNode:
    def rewrite(node: PlanNode) -> Optional[PlanNode]:
        if not isinstance(node, Filter):
            return None
        remaining: List[Expression] = []
        child = node.child
        for conj in conjuncts(node.predicate):
            pushed = _try_push(child, conj)
            if pushed is not None:
                child = pushed
            else:
                remaining.append(conj)
        pred = combine_conjuncts(remaining)
        if pred is None:
            return child
        if child is node.child and len(remaining) == len(conjuncts(node.predicate)):
            return None  # nothing changed
        return Filter(child, pred)

    # Apply top-down repeatedly until fixpoint (pushdowns may cascade).
    for _ in range(8):
        new_plan = transform_plan(plan, rewrite)
        if new_plan is plan:
            break
        plan = new_plan
    return plan


def _try_push(node: PlanNode, predicate: Expression) -> Optional[PlanNode]:
    """Push one conjunct into ``node`` if its columns are available below.

    Returns the rewritten node, or None if it cannot descend.
    """
    needed = predicate.columns()
    if isinstance(node, Scan):
        # Predicate sits directly above the scan (and above its sampler,
        # which is statistically equivalent to below it for Bernoulli
        # samplers — selection commutes with sampling).
        return Filter(node, predicate)
    if isinstance(node, Filter):
        deeper = _try_push(node.child, predicate)
        if deeper is not None:
            return Filter(deeper, node.predicate)
        return Filter(node, predicate)
    if isinstance(node, HashJoin):
        left_cols = _available_columns(node.left)
        right_cols = _available_columns(node.right)
        if left_cols is not None and needed <= left_cols:
            deeper = _try_push(node.left, predicate)
            if deeper is not None:
                return replace(node, left=deeper)
        if right_cols is not None and needed <= right_cols:
            deeper = _try_push(node.right, predicate)
            if deeper is not None:
                return replace(node, right=deeper)
        return None
    if isinstance(node, Project):
        # Only push through if the predicate references pass-through columns.
        passthrough = {
            alias
            for expr, alias in node.items
            if _is_simple_column(expr) and expr.name == alias  # type: ignore[attr-defined]
        }
        if needed <= passthrough:
            deeper = _try_push(node.child, predicate)
            if deeper is not None:
                return replace(node, child=deeper)
        return None
    return None


def _is_simple_column(expr: Expression) -> bool:
    from .expressions import Column

    return isinstance(expr, Column)


def _available_columns(node: PlanNode) -> Optional[Set[str]]:
    """Columns a subtree can expose, or None if unknown (stop pushdown)."""
    if isinstance(node, Scan):
        # Without a database handle we cannot enumerate unpruned scans, but
        # qualified scans advertise their prefix so prefix-matching works.
        if node.columns is not None:
            names = set(node.columns)
            if node.alias is not None:
                names = {f"{node.alias}.{n}" for n in names}
            return names
        return None
    if isinstance(node, Filter):
        return _available_columns(node.child)
    if isinstance(node, Project):
        return {alias for _, alias in node.items}
    if isinstance(node, HashJoin):
        left = _available_columns(node.left)
        right = _available_columns(node.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(node, GroupByAggregate):
        return {alias for _, alias in node.keys} | {
            spec.alias for spec in node.aggregates
        }
    if isinstance(node, (OrderBy, Limit)):
        return _available_columns(node.child)
    return None


# ----------------------------------------------------------------------
# Rule 1b: pushdown with catalog knowledge (column sets known at scans)
# ----------------------------------------------------------------------

def push_down_with_catalog(plan: PlanNode, database) -> PlanNode:
    """Pushdown variant that can see through unpruned scans.

    The SQL binder calls this after binding, when scans do not yet carry
    explicit column lists.
    """

    def annotate(node: PlanNode) -> Optional[PlanNode]:
        if isinstance(node, Scan) and node.columns is None:
            table = database.table(node.table_name)
            return replace(node, columns=tuple(table.column_names))
        return None

    annotated = transform_plan(plan, annotate)
    return push_down_predicates(annotated)


# ----------------------------------------------------------------------
# Rule 2: join input ordering
# ----------------------------------------------------------------------

def order_join_inputs(plan: PlanNode, database) -> PlanNode:
    def estimate_rows(node: PlanNode) -> float:
        if isinstance(node, Scan):
            rows = database.table(node.table_name).num_rows
            if node.sample is not None and node.sample.rate is not None:
                rows *= node.sample.rate
            return float(rows)
        if isinstance(node, Filter):
            return 0.33 * estimate_rows(node.child)  # crude default selectivity
        if isinstance(node, (Project, OrderBy)):
            return estimate_rows(node.child)
        if isinstance(node, Limit):
            return float(node.count)
        if isinstance(node, HashJoin):
            return max(estimate_rows(node.left), estimate_rows(node.right))
        if isinstance(node, GroupByAggregate):
            return max(1.0, 0.01 * estimate_rows(node.child))
        if isinstance(node, UnionAll):
            return sum(estimate_rows(c) for c in node.inputs)
        return 1.0

    def rewrite(node: PlanNode) -> Optional[PlanNode]:
        if isinstance(node, HashJoin) and node.how == "inner":
            if estimate_rows(node.left) > estimate_rows(node.right):
                return HashJoin(
                    left=node.right,
                    right=node.left,
                    left_keys=node.right_keys,
                    right_keys=node.left_keys,
                    how="inner",
                )
        return None

    return transform_plan(plan, rewrite)


# ----------------------------------------------------------------------
# Rule 3: projection pruning
# ----------------------------------------------------------------------

def prune_scan_columns(plan: PlanNode, database) -> PlanNode:
    """Restrict every scan to the columns the plan actually references."""
    needed_by_scan: dict = {}

    def collect(node: PlanNode, needed: Optional[Set[str]]) -> None:
        if isinstance(node, Scan):
            table = database.table(node.table_name)
            prefix = f"{node.alias}." if node.alias is not None else ""
            if needed is None:
                cols = set(table.column_names)
            else:
                cols = set()
                for name in needed:
                    raw = name[len(prefix):] if prefix and name.startswith(prefix) else name
                    if raw in table:
                        cols.add(raw)
            key = id(node)
            needed_by_scan[key] = needed_by_scan.get(key, set()) | cols
            return
        if isinstance(node, Filter):
            child_needed = (
                None if needed is None else needed | set(node.predicate.columns())
            )
            collect(node.child, child_needed)
            return
        if isinstance(node, Project):
            child_needed: Set[str] = set()
            for expr, _ in node.items:
                child_needed |= set(expr.columns())
            collect(node.child, child_needed)
            return
        if isinstance(node, HashJoin):
            if needed is None:
                collect(node.left, None)
                collect(node.right, None)
                return
            join_cols = set(node.left_keys) | set(node.right_keys)
            collect(node.left, needed | join_cols)
            collect(node.right, needed | join_cols)
            return
        if isinstance(node, GroupByAggregate):
            child_needed = set()
            for expr, _ in node.keys:
                child_needed |= set(expr.columns())
            for spec in node.aggregates:
                child_needed |= set(spec.columns())
            if node.having is not None:
                # HAVING references aggregate outputs, not child columns.
                pass
            collect(node.child, child_needed)
            return
        if isinstance(node, OrderBy):
            child_needed = (
                None
                if needed is None
                else needed | {name for name, _ in node.items}
            )
            collect(node.child, child_needed)
            return
        if isinstance(node, Limit):
            collect(node.child, needed)
            return
        if isinstance(node, UnionAll):
            for child in node.inputs:
                collect(child, needed)
            return
        raise PlanError(f"unknown node {type(node).__name__}")

    collect(plan, _root_requirements(plan))

    def rewrite(node: PlanNode) -> Optional[PlanNode]:
        if isinstance(node, Scan) and id(node) in needed_by_scan:
            cols = needed_by_scan[id(node)]
            table = database.table(node.table_name)
            ordered = tuple(c for c in table.column_names if c in cols)
            if not ordered:
                ordered = (table.column_names[0],) if table.column_names else ()
            if node.columns is None or set(node.columns) != set(ordered):
                return replace(node, columns=ordered)
        return None

    return transform_plan(plan, rewrite)


def _root_requirements(plan: PlanNode) -> Optional[Set[str]]:
    """Columns the root consumer needs; None means 'everything'."""
    if isinstance(plan, (Project, GroupByAggregate)):
        return set()  # collect() derives child needs from the node itself
    if isinstance(plan, (OrderBy, Limit, Filter)):
        return None
    return None
