"""Aggregate functions and grouped reduction kernels.

The engine supports the standard SQL aggregates. The AQP layers classify
them the way the survey does: *linear* aggregates (SUM, COUNT, AVG) admit
unbiased sampling estimators with CLT error analysis, whereas MIN/MAX and
COUNT DISTINCT do not — that asymmetry is the root of several of the
paper's "no silver bullet" arguments (experiments E5, E14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import PlanError
from .expressions import Expression, Literal
from .table import Table

#: Aggregates for which sampling yields unbiased, CLT-analyzable estimates.
LINEAR_AGGREGATES = frozenset({"sum", "count", "avg"})

#: All aggregates the engine can execute exactly.
SUPPORTED_AGGREGATES = frozenset(
    {"sum", "count", "avg", "min", "max", "var", "stddev", "count_distinct"}
)


@dataclass
class AggregateSpec:
    """One aggregate in a SELECT list.

    ``func`` is lower-case; ``argument`` is ``None`` only for ``COUNT(*)``.
    """

    func: str
    argument: Optional[Expression]
    alias: str
    distinct: bool = False

    def __post_init__(self) -> None:
        func = self.func.lower()
        if func == "count" and self.distinct:
            func = "count_distinct"
        if func not in SUPPORTED_AGGREGATES:
            raise PlanError(f"unsupported aggregate function {self.func!r}")
        self.func = func
        if func != "count" and func != "count_distinct" and self.argument is None:
            raise PlanError(f"{func.upper()} requires an argument")

    @property
    def is_linear(self) -> bool:
        return self.func in LINEAR_AGGREGATES

    def input_values(self, table: Table) -> np.ndarray:
        """Per-row input to the aggregate. COUNT(*) contributes 1 per row."""
        if self.argument is None:
            return np.ones(table.num_rows, dtype=np.float64)
        return self.argument.evaluate(table)

    def columns(self) -> frozenset:
        if self.argument is None:
            return frozenset()
        return self.argument.columns()

    def __repr__(self) -> str:
        inner = "*" if self.argument is None else repr(self.argument)
        distinct = "DISTINCT " if self.func == "count_distinct" else ""
        return f"{self.func.upper()}({distinct}{inner}) AS {self.alias}"


# ----------------------------------------------------------------------
# Group encoding
# ----------------------------------------------------------------------

#: Integer-like dtype kinds eligible for the packed-int64 fast path.
_INT_KINDS = frozenset("iub")

#: Packed codes must stay comfortably inside int64; leave headroom so the
#: per-column span products can be checked with exact Python ints.
_PACK_LIMIT = 2 ** 62


def _integer_pack(key_arrays: Sequence[np.ndarray]) -> Optional[Tuple[np.ndarray, List[int], List[int]]]:
    """Try to pack integer key columns into one int64 code per row.

    Returns ``(packed, mins, spans)`` or ``None`` when any column is
    non-integer or the combined span would overflow int64. Packing uses
    ``(arr - min) * multiplier`` with the rightmost column varying
    fastest, so the packed codes sort in the same lexicographic order as
    the raw values — group ids come out identical to the generic
    rank-based encoding.
    """
    mins: List[int] = []
    spans: List[int] = []
    casted: List[np.ndarray] = []
    for arr in key_arrays:
        if arr.dtype.kind not in _INT_KINDS:
            return None
        lo = int(arr.min())
        hi = int(arr.max())
        if hi - lo + 1 > _PACK_LIMIT:
            return None
        mins.append(lo)
        spans.append(hi - lo + 1)
        casted.append(arr)
    capacity = 1
    for span in spans:
        capacity *= span
        if capacity > _PACK_LIMIT:
            return None
    packed = np.zeros(len(key_arrays[0]), dtype=np.int64)
    multiplier = 1
    for arr, lo, span in zip(reversed(casted), reversed(mins), reversed(spans)):
        packed += (arr.astype(np.int64) - lo) * multiplier
        multiplier *= span
    return packed, mins, spans


def encode_groups_arrays(
    key_arrays: Sequence[np.ndarray],
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Map composite keys to dense group ids, columnar key output.

    Returns ``(group_ids, key_columns)`` where ``key_columns[pos][g]`` is
    the value of key column ``pos`` for group ``g``. This is the kernel
    behind :func:`encode_groups`; the fused executor uses it directly so
    grouped aggregation never builds per-row (or even per-group) Python
    tuples.

    Fast paths:

    * a single key column of any dtype goes straight through
      ``np.unique(..., return_inverse=True)``;
    * composite keys whose columns are all integer/bool dtypes are packed
      into one int64 code per row (span-based, order-preserving) so a
      single ``np.unique`` call replaces per-column factorization.

    Both fast paths produce group ids and key values identical to the
    generic rank-based encoding (the property test in
    ``tests/test_fused_executor.py`` fuzzes this equivalence).
    """
    if not key_arrays:
        raise PlanError("encode_groups requires at least one key array")
    key_arrays = [np.asarray(arr) for arr in key_arrays]
    n = len(key_arrays[0])
    if n == 0:
        return np.array([], dtype=np.int64), [
            np.array([], dtype=arr.dtype) for arr in key_arrays
        ]
    if len(key_arrays) == 1:
        uniques, inverse = np.unique(key_arrays[0], return_inverse=True)
        return inverse.astype(np.int64), [uniques]
    packed = _integer_pack(key_arrays)
    if packed is not None:
        codes, mins, spans = packed
        uniq_codes, inverse = np.unique(codes, return_inverse=True)
        key_columns: List[np.ndarray] = [None] * len(key_arrays)  # type: ignore[list-item]
        rem = uniq_codes
        for pos in range(len(key_arrays) - 1, -1, -1):
            rem, offs = np.divmod(rem, spans[pos])
            key_columns[pos] = (offs + mins[pos]).astype(key_arrays[pos].dtype)
        return inverse.astype(np.int64), key_columns
    # Generic path: factorize each key column, then combine the rank codes.
    codes_list = []
    levels = []
    for arr in key_arrays:
        uniq, inv = np.unique(arr, return_inverse=True)
        codes_list.append(inv.astype(np.int64))
        levels.append(uniq)
    combined = np.zeros(n, dtype=np.int64)
    multiplier = 1
    for code, uniq in zip(reversed(codes_list), reversed(levels)):
        combined += code * multiplier
        multiplier *= len(uniq)
    uniq_combined, inverse = np.unique(combined, return_inverse=True)
    key_columns = [None] * len(key_arrays)  # type: ignore[list-item]
    rem = uniq_combined
    for pos in range(len(key_arrays) - 1, -1, -1):
        rem, idx = np.divmod(rem, len(levels[pos]))
        key_columns[pos] = levels[pos][idx]
    return inverse.astype(np.int64), key_columns


def encode_groups(key_arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, List[Tuple]]:
    """Map composite keys to dense group ids.

    Returns ``(group_ids, key_tuples)`` where ``group_ids[i]`` indexes into
    ``key_tuples``. Keys are ordered by first appearance is *not* guaranteed;
    they follow numpy's sort order, which is fine because SQL group order is
    unspecified.

    This is the tuple-producing facade over :func:`encode_groups_arrays`
    (which callers on hot paths should prefer — it skips building Python
    tuples entirely).
    """
    group_ids, key_columns = encode_groups_arrays(key_arrays)
    if len(group_ids) == 0:
        return group_ids, []
    if len(key_columns) == 1:
        return group_ids, [(u,) for u in key_columns[0].tolist()]
    return group_ids, list(zip(*key_columns))


# ----------------------------------------------------------------------
# Grouped kernels
# ----------------------------------------------------------------------

def grouped_sum(group_ids: np.ndarray, values: np.ndarray, num_groups: int) -> np.ndarray:
    vals = np.asarray(values, dtype=np.float64)
    return np.bincount(group_ids, weights=vals, minlength=num_groups)


def grouped_count(group_ids: np.ndarray, num_groups: int) -> np.ndarray:
    return np.bincount(group_ids, minlength=num_groups).astype(np.float64)


def grouped_min(group_ids: np.ndarray, values: np.ndarray, num_groups: int) -> np.ndarray:
    out = np.full(num_groups, np.inf)
    np.minimum.at(out, group_ids, np.asarray(values, dtype=np.float64))
    return out


def grouped_max(group_ids: np.ndarray, values: np.ndarray, num_groups: int) -> np.ndarray:
    out = np.full(num_groups, -np.inf)
    np.maximum.at(out, group_ids, np.asarray(values, dtype=np.float64))
    return out


def grouped_var(
    group_ids: np.ndarray, values: np.ndarray, num_groups: int, ddof: int = 1
) -> np.ndarray:
    """Per-group sample variance (ddof=1), NaN for singleton groups."""
    vals = np.asarray(values, dtype=np.float64)
    counts = np.bincount(group_ids, minlength=num_groups).astype(np.float64)
    sums = np.bincount(group_ids, weights=vals, minlength=num_groups)
    sumsq = np.bincount(group_ids, weights=vals * vals, minlength=num_groups)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        ss = sumsq - counts * means * means
        ss = np.maximum(ss, 0.0)  # guard tiny negative round-off
        denom = counts - ddof
        var = np.where(denom > 0, ss / np.maximum(denom, 1), np.nan)
    return var


def grouped_count_distinct(
    group_ids: np.ndarray, values: np.ndarray, num_groups: int
) -> np.ndarray:
    """Exact per-group distinct counts via (group, value) dedup."""
    if len(values) == 0:
        return np.zeros(num_groups, dtype=np.float64)
    # Factorize values to integer codes so lexsort works for any dtype.
    _, value_codes = np.unique(values, return_inverse=True)
    order = np.lexsort((value_codes, group_ids))
    g = group_ids[order]
    v = value_codes[order]
    new_pair = np.ones(len(v), dtype=bool)
    new_pair[1:] = (g[1:] != g[:-1]) | (v[1:] != v[:-1])
    return np.bincount(g[new_pair], minlength=num_groups).astype(np.float64)


def compute_aggregate_values(
    spec: AggregateSpec, values: Optional[np.ndarray], num_rows: int
) -> float:
    """Ungrouped (scalar) aggregate over a value vector.

    ``values`` may be ``None`` only for plain COUNT, which needs just the
    row count. This is the kernel behind :func:`compute_aggregate`; the
    fused executor calls it directly on masked column views so no Table
    wrapper is ever allocated.
    """
    if spec.func == "count":
        return float(num_rows)
    if spec.func == "count_distinct":
        return float(len(np.unique(values)))
    vals = np.asarray(values, dtype=np.float64)
    if len(vals) == 0:
        return 0.0 if spec.func == "sum" else float("nan")
    if spec.func == "sum":
        return float(np.sum(vals))
    if spec.func == "avg":
        return float(np.mean(vals))
    if spec.func == "min":
        return float(np.min(vals))
    if spec.func == "max":
        return float(np.max(vals))
    if spec.func == "var":
        return float(np.var(vals, ddof=1)) if len(vals) > 1 else float("nan")
    if spec.func == "stddev":
        return float(np.std(vals, ddof=1)) if len(vals) > 1 else float("nan")
    raise PlanError(f"unreachable aggregate {spec.func!r}")


def compute_aggregate(spec: AggregateSpec, table: Table) -> float:
    """Ungrouped (scalar) aggregate over a table."""
    values = None if spec.func == "count" else spec.input_values(table)
    return compute_aggregate_values(spec, values, table.num_rows)


def compute_grouped_aggregate_values(
    spec: AggregateSpec,
    values: Optional[np.ndarray],
    group_ids: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Per-group aggregates over a value vector aligned with ``group_ids``.

    ``values`` may be ``None`` only for plain COUNT. Kernel behind
    :func:`compute_grouped_aggregate`, shared with the fused executor.
    """
    if spec.func == "count":
        return grouped_count(group_ids, num_groups)
    if spec.func == "count_distinct":
        return grouped_count_distinct(group_ids, values, num_groups)
    if spec.func == "sum":
        return grouped_sum(group_ids, values, num_groups)
    if spec.func == "avg":
        counts = grouped_count(group_ids, num_groups)
        sums = grouped_sum(group_ids, values, num_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    if spec.func == "min":
        return grouped_min(group_ids, values, num_groups)
    if spec.func == "max":
        return grouped_max(group_ids, values, num_groups)
    if spec.func == "var":
        return grouped_var(group_ids, values, num_groups)
    if spec.func == "stddev":
        return np.sqrt(grouped_var(group_ids, values, num_groups))
    raise PlanError(f"unreachable aggregate {spec.func!r}")


def compute_grouped_aggregate(
    spec: AggregateSpec,
    table: Table,
    group_ids: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Per-group aggregate values aligned with group ids 0..num_groups-1."""
    values = None if spec.func == "count" else spec.input_values(table)
    return compute_grouped_aggregate_values(spec, values, group_ids, num_groups)
