"""Aggregate functions and grouped reduction kernels.

The engine supports the standard SQL aggregates. The AQP layers classify
them the way the survey does: *linear* aggregates (SUM, COUNT, AVG) admit
unbiased sampling estimators with CLT error analysis, whereas MIN/MAX and
COUNT DISTINCT do not — that asymmetry is the root of several of the
paper's "no silver bullet" arguments (experiments E5, E14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import PlanError
from .expressions import Expression, Literal
from .table import Table

#: Aggregates for which sampling yields unbiased, CLT-analyzable estimates.
LINEAR_AGGREGATES = frozenset({"sum", "count", "avg"})

#: All aggregates the engine can execute exactly.
SUPPORTED_AGGREGATES = frozenset(
    {"sum", "count", "avg", "min", "max", "var", "stddev", "count_distinct"}
)


@dataclass
class AggregateSpec:
    """One aggregate in a SELECT list.

    ``func`` is lower-case; ``argument`` is ``None`` only for ``COUNT(*)``.
    """

    func: str
    argument: Optional[Expression]
    alias: str
    distinct: bool = False

    def __post_init__(self) -> None:
        func = self.func.lower()
        if func == "count" and self.distinct:
            func = "count_distinct"
        if func not in SUPPORTED_AGGREGATES:
            raise PlanError(f"unsupported aggregate function {self.func!r}")
        self.func = func
        if func != "count" and func != "count_distinct" and self.argument is None:
            raise PlanError(f"{func.upper()} requires an argument")

    @property
    def is_linear(self) -> bool:
        return self.func in LINEAR_AGGREGATES

    def input_values(self, table: Table) -> np.ndarray:
        """Per-row input to the aggregate. COUNT(*) contributes 1 per row."""
        if self.argument is None:
            return np.ones(table.num_rows, dtype=np.float64)
        return self.argument.evaluate(table)

    def columns(self) -> frozenset:
        if self.argument is None:
            return frozenset()
        return self.argument.columns()

    def __repr__(self) -> str:
        inner = "*" if self.argument is None else repr(self.argument)
        distinct = "DISTINCT " if self.func == "count_distinct" else ""
        return f"{self.func.upper()}({distinct}{inner}) AS {self.alias}"


# ----------------------------------------------------------------------
# Group encoding
# ----------------------------------------------------------------------

def encode_groups(key_arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, List[Tuple]]:
    """Map composite keys to dense group ids.

    Returns ``(group_ids, key_tuples)`` where ``group_ids[i]`` indexes into
    ``key_tuples``. Keys are ordered by first appearance is *not* guaranteed;
    they follow numpy's sort order, which is fine because SQL group order is
    unspecified.
    """
    if not key_arrays:
        raise PlanError("encode_groups requires at least one key array")
    n = len(key_arrays[0])
    if n == 0:
        return np.array([], dtype=np.int64), []
    if len(key_arrays) == 1:
        uniques, inverse = np.unique(key_arrays[0], return_inverse=True)
        return inverse.astype(np.int64), [(u,) for u in uniques.tolist()]
    # Composite key: factorize each key column, then combine the codes.
    codes = []
    levels = []
    for arr in key_arrays:
        uniq, inv = np.unique(arr, return_inverse=True)
        codes.append(inv.astype(np.int64))
        levels.append(uniq)
    combined = np.zeros(n, dtype=np.int64)
    multiplier = 1
    for code, uniq in zip(reversed(codes), reversed(levels)):
        combined += code * multiplier
        multiplier *= len(uniq)
    uniq_combined, inverse = np.unique(combined, return_inverse=True)
    # Decode combined ids back into key tuples.
    key_tuples: List[Tuple] = []
    for cid in uniq_combined.tolist():
        parts = []
        rem = cid
        for uniq in reversed(levels):
            rem, idx = divmod(rem, len(uniq))
            parts.append(uniq[idx])
        key_tuples.append(tuple(reversed(parts)))
    return inverse.astype(np.int64), key_tuples


# ----------------------------------------------------------------------
# Grouped kernels
# ----------------------------------------------------------------------

def grouped_sum(group_ids: np.ndarray, values: np.ndarray, num_groups: int) -> np.ndarray:
    vals = np.asarray(values, dtype=np.float64)
    return np.bincount(group_ids, weights=vals, minlength=num_groups)


def grouped_count(group_ids: np.ndarray, num_groups: int) -> np.ndarray:
    return np.bincount(group_ids, minlength=num_groups).astype(np.float64)


def grouped_min(group_ids: np.ndarray, values: np.ndarray, num_groups: int) -> np.ndarray:
    out = np.full(num_groups, np.inf)
    np.minimum.at(out, group_ids, np.asarray(values, dtype=np.float64))
    return out


def grouped_max(group_ids: np.ndarray, values: np.ndarray, num_groups: int) -> np.ndarray:
    out = np.full(num_groups, -np.inf)
    np.maximum.at(out, group_ids, np.asarray(values, dtype=np.float64))
    return out


def grouped_var(
    group_ids: np.ndarray, values: np.ndarray, num_groups: int, ddof: int = 1
) -> np.ndarray:
    """Per-group sample variance (ddof=1), NaN for singleton groups."""
    vals = np.asarray(values, dtype=np.float64)
    counts = np.bincount(group_ids, minlength=num_groups).astype(np.float64)
    sums = np.bincount(group_ids, weights=vals, minlength=num_groups)
    sumsq = np.bincount(group_ids, weights=vals * vals, minlength=num_groups)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        ss = sumsq - counts * means * means
        ss = np.maximum(ss, 0.0)  # guard tiny negative round-off
        denom = counts - ddof
        var = np.where(denom > 0, ss / np.maximum(denom, 1), np.nan)
    return var


def grouped_count_distinct(
    group_ids: np.ndarray, values: np.ndarray, num_groups: int
) -> np.ndarray:
    """Exact per-group distinct counts via (group, value) dedup."""
    if len(values) == 0:
        return np.zeros(num_groups, dtype=np.float64)
    # Factorize values to integer codes so lexsort works for any dtype.
    _, value_codes = np.unique(values, return_inverse=True)
    order = np.lexsort((value_codes, group_ids))
    g = group_ids[order]
    v = value_codes[order]
    new_pair = np.ones(len(v), dtype=bool)
    new_pair[1:] = (g[1:] != g[:-1]) | (v[1:] != v[:-1])
    return np.bincount(g[new_pair], minlength=num_groups).astype(np.float64)


def compute_aggregate(spec: AggregateSpec, table: Table) -> float:
    """Ungrouped (scalar) aggregate over a table."""
    values = spec.input_values(table)
    if spec.func == "count":
        return float(table.num_rows)
    if spec.func == "count_distinct":
        return float(len(np.unique(values)))
    vals = np.asarray(values, dtype=np.float64)
    if len(vals) == 0:
        return 0.0 if spec.func == "sum" else float("nan")
    if spec.func == "sum":
        return float(np.sum(vals))
    if spec.func == "avg":
        return float(np.mean(vals))
    if spec.func == "min":
        return float(np.min(vals))
    if spec.func == "max":
        return float(np.max(vals))
    if spec.func == "var":
        return float(np.var(vals, ddof=1)) if len(vals) > 1 else float("nan")
    if spec.func == "stddev":
        return float(np.std(vals, ddof=1)) if len(vals) > 1 else float("nan")
    raise PlanError(f"unreachable aggregate {spec.func!r}")


def compute_grouped_aggregate(
    spec: AggregateSpec,
    table: Table,
    group_ids: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Per-group aggregate values aligned with group ids 0..num_groups-1."""
    values = spec.input_values(table)
    if spec.func == "count":
        return grouped_count(group_ids, num_groups)
    if spec.func == "count_distinct":
        return grouped_count_distinct(group_ids, values, num_groups)
    if spec.func == "sum":
        return grouped_sum(group_ids, values, num_groups)
    if spec.func == "avg":
        counts = grouped_count(group_ids, num_groups)
        sums = grouped_sum(group_ids, values, num_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    if spec.func == "min":
        return grouped_min(group_ids, values, num_groups)
    if spec.func == "max":
        return grouped_max(group_ids, values, num_groups)
    if spec.func == "var":
        return grouped_var(group_ids, values, num_groups)
    if spec.func == "stddev":
        return np.sqrt(grouped_var(group_ids, values, num_groups))
    raise PlanError(f"unreachable aggregate {spec.func!r}")
