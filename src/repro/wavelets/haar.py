"""Haar wavelet synopses (Matias, Vitter, Wang 1998).

Wavelets compress a (bucketized) frequency vector by keeping only the
largest-energy Haar coefficients. Range sums reconstruct from O(log n)
coefficients per endpoint, so a few hundred retained numbers can answer
any range COUNT/SUM over a million-cell domain — the survey's example of
a synopsis with excellent space/accuracy on smooth data and no guarantee
on adversarial data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.exceptions import SynopsisError


def haar_transform(data: np.ndarray) -> np.ndarray:
    """Orthonormal Haar decomposition (length padded to a power of two)."""
    v = np.asarray(data, dtype=np.float64)
    n = 1 << max(int(math.ceil(math.log2(max(len(v), 1)))), 0)
    padded = np.zeros(n)
    padded[: len(v)] = v
    coeffs = padded.copy()
    length = n
    while length > 1:
        half = length // 2
        evens = coeffs[0:length:2].copy()
        odds = coeffs[1:length:2].copy()
        coeffs[:half] = (evens + odds) / math.sqrt(2.0)
        coeffs[half:length] = (evens - odds) / math.sqrt(2.0)
        length = half
    return coeffs


def inverse_haar(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_transform`."""
    c = np.asarray(coeffs, dtype=np.float64).copy()
    n = len(c)
    length = 2
    while length <= n:
        half = length // 2
        averages = c[:half].copy()
        details = c[half:length].copy()
        evens = (averages + details) / math.sqrt(2.0)
        odds = (averages - details) / math.sqrt(2.0)
        c[0:length:2] = evens
        c[1:length:2] = odds
        length *= 2
    return c


@dataclass
class WaveletSynopsis:
    """Thresholded Haar representation of a frequency/sum vector."""

    domain_low: float
    domain_high: float
    length: int  # padded power-of-two length
    original_cells: int
    kept_indices: np.ndarray
    kept_values: np.ndarray
    kind: str = "haar"

    def memory_entries(self) -> int:
        return 2 * len(self.kept_indices) + 4

    # ------------------------------------------------------------------
    def reconstruct(self) -> np.ndarray:
        """Full (approximate) cell vector."""
        coeffs = np.zeros(self.length)
        coeffs[self.kept_indices] = self.kept_values
        return inverse_haar(coeffs)[: self.original_cells]

    def cell_width(self) -> float:
        return (self.domain_high - self.domain_low) / self.original_cells

    def range_sum(self, low: Optional[float] = None, high: Optional[float] = None) -> float:
        """Estimated Σ of the summarized vector over value range [low, high]."""
        lo = self.domain_low if low is None else low
        hi = self.domain_high if high is None else high
        cells = self.reconstruct()
        width = self.cell_width()
        total = 0.0
        for i, cell_value in enumerate(cells):
            c_lo = self.domain_low + i * width
            c_hi = c_lo + width
            inter = min(hi, c_hi) - max(lo, c_lo)
            if inter <= 0:
                continue
            total += cell_value * min(inter / width, 1.0)
        return float(total)


def build_wavelet_synopsis(
    values: np.ndarray,
    num_cells: int = 1024,
    keep_coefficients: int = 64,
    domain: Optional[Tuple[float, float]] = None,
) -> WaveletSynopsis:
    """Bucketize ``values`` into ``num_cells`` counts, Haar-transform, and
    keep the ``keep_coefficients`` largest-magnitude coefficients
    (deterministic greedy thresholding — optimal for L2 reconstruction
    under the orthonormal basis)."""
    v = np.asarray(values, dtype=np.float64)
    if len(v) == 0:
        raise SynopsisError("cannot summarize an empty column")
    lo, hi = domain if domain is not None else (float(np.min(v)), float(np.max(v)))
    if hi <= lo:
        hi = lo + 1.0
    cell = (hi - lo) / num_cells
    idx = np.clip(((v - lo) / cell).astype(np.int64), 0, num_cells - 1)
    counts = np.bincount(idx, minlength=num_cells).astype(np.float64)
    coeffs = haar_transform(counts)
    k = min(keep_coefficients, len(coeffs))
    kept = np.argsort(np.abs(coeffs))[::-1][:k]
    kept = np.sort(kept)
    return WaveletSynopsis(
        domain_low=lo,
        domain_high=hi,
        length=len(coeffs),
        original_cells=num_cells,
        kept_indices=kept,
        kept_values=coeffs[kept],
    )


def reconstruction_error(
    values: np.ndarray, synopsis: WaveletSynopsis
) -> float:
    """L2 error between the true cell counts and the synopsis's cells,
    normalized by the true L2 norm (0 = perfect)."""
    v = np.asarray(values, dtype=np.float64)
    cell = synopsis.cell_width()
    idx = np.clip(
        ((v - synopsis.domain_low) / cell).astype(np.int64),
        0,
        synopsis.original_cells - 1,
    )
    truth = np.bincount(idx, minlength=synopsis.original_cells).astype(np.float64)
    approx = synopsis.reconstruct()
    denom = float(np.linalg.norm(truth))
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(truth - approx)) / denom
