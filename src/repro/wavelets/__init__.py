"""Haar wavelet synopses."""

from .haar import (
    WaveletSynopsis,
    build_wavelet_synopsis,
    haar_transform,
    inverse_haar,
    reconstruction_error,
)

__all__ = [
    "WaveletSynopsis",
    "build_wavelet_synopsis",
    "haar_transform",
    "inverse_haar",
    "reconstruction_error",
]
