"""Common histogram machinery.

All 1-D histograms share bucket structure: boundaries, per-bucket row
counts and value sums. They answer range COUNT/SUM/AVG queries under the
*continuous-values assumption* (uniform spread inside a bucket) — an
a-priori-unbounded heuristic for adversarial data, which is precisely why
the survey classifies histogram answers as estimates without guarantees
unless the bucketing rule bounds intra-bucket variation (V-optimal,
MaxDiff try; equi-width does not).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..core.exceptions import SynopsisError


@dataclass
class Histogram:
    """Bucketed summary of one numeric column."""

    #: bucket boundaries, length = num_buckets + 1; buckets are
    #: [bounds[i], bounds[i+1]) except the last which is closed.
    bounds: np.ndarray
    counts: np.ndarray
    sums: np.ndarray
    kind: str = "histogram"

    def __post_init__(self) -> None:
        self.bounds = np.asarray(self.bounds, dtype=np.float64)
        self.counts = np.asarray(self.counts, dtype=np.float64)
        self.sums = np.asarray(self.sums, dtype=np.float64)
        if len(self.bounds) != len(self.counts) + 1:
            raise SynopsisError("bounds must have len(counts)+1 entries")
        if len(self.counts) != len(self.sums):
            raise SynopsisError("counts and sums must align")

    @property
    def num_buckets(self) -> int:
        return len(self.counts)

    @property
    def total_rows(self) -> float:
        return float(np.sum(self.counts))

    def memory_entries(self) -> int:
        """Stored numbers (bounds + counts + sums)."""
        return len(self.bounds) + 2 * self.num_buckets

    # ------------------------------------------------------------------
    # Range queries (continuous-values assumption)
    # ------------------------------------------------------------------
    def _overlap_fractions(self, low: float, high: float) -> np.ndarray:
        """Fraction of each bucket's width covered by [low, high]."""
        b_lo = self.bounds[:-1]
        b_hi = self.bounds[1:]
        width = np.maximum(b_hi - b_lo, 0.0)
        inter = np.minimum(high, b_hi) - np.maximum(low, b_lo)
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = np.where(width > 0, np.clip(inter, 0.0, None) / np.where(width == 0, 1, width), 0.0)
        # Zero-width (single-value) buckets: in or out.
        point = (width == 0) & (b_lo >= low) & (b_lo <= high)
        frac = np.where(point, 1.0, frac)
        return np.clip(frac, 0.0, 1.0)

    def range_count(self, low: Optional[float] = None, high: Optional[float] = None) -> float:
        """Estimated COUNT of rows with value in [low, high]."""
        lo = self.bounds[0] if low is None else low
        hi = self.bounds[-1] if high is None else high
        return float(np.sum(self.counts * self._overlap_fractions(lo, hi)))

    def range_sum(self, low: Optional[float] = None, high: Optional[float] = None) -> float:
        """Estimated SUM of values in [low, high]."""
        lo = self.bounds[0] if low is None else low
        hi = self.bounds[-1] if high is None else high
        return float(np.sum(self.sums * self._overlap_fractions(lo, hi)))

    def range_avg(self, low: Optional[float] = None, high: Optional[float] = None) -> float:
        c = self.range_count(low, high)
        if c == 0:
            return math.nan
        return self.range_sum(low, high) / c

    def selectivity(self, low: Optional[float], high: Optional[float]) -> float:
        total = self.total_rows
        if total == 0:
            return 0.0
        return self.range_count(low, high) / total


def bucketize(values: np.ndarray, bounds: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(counts, sums) of ``values`` within each bucket of ``bounds``."""
    v = np.asarray(values, dtype=np.float64)
    idx = np.clip(np.searchsorted(bounds, v, side="right") - 1, 0, len(bounds) - 2)
    counts = np.bincount(idx, minlength=len(bounds) - 1).astype(np.float64)
    sums = np.bincount(idx, weights=v, minlength=len(bounds) - 1)
    return counts, sums
