"""Histogram construction policies.

Four classic bucketing rules, in increasing order of construction cost
and decreasing worst-case range-query error:

* **equi-width** — uniform value-range slices; trivial, terrible on skew;
* **equi-depth** — quantile boundaries (equal row mass per bucket);
* **MaxDiff(V, A)** — boundaries at the largest gaps between adjacent
  frequency/area values (Poosala et al. 1996);
* **V-optimal** — dynamic program minimizing the total within-bucket
  variance of frequencies (Jagadish et al. 1998), the accuracy gold
  standard for 1-D histograms.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.exceptions import SynopsisError
from .base import Histogram, bucketize


def equi_width(values: np.ndarray, num_buckets: int = 32) -> Histogram:
    """Uniform slices of [min, max]."""
    v = np.asarray(values, dtype=np.float64)
    if len(v) == 0 or num_buckets < 1:
        raise SynopsisError("equi_width requires data and >=1 bucket")
    lo, hi = float(np.min(v)), float(np.max(v))
    if lo == hi:
        hi = lo + 1.0
    bounds = np.linspace(lo, hi, num_buckets + 1)
    counts, sums = bucketize(v, bounds)
    return Histogram(bounds=bounds, counts=counts, sums=sums, kind="equi_width")


def equi_depth(values: np.ndarray, num_buckets: int = 32) -> Histogram:
    """Quantile boundaries: every bucket holds ~n/B rows."""
    v = np.asarray(values, dtype=np.float64)
    if len(v) == 0 or num_buckets < 1:
        raise SynopsisError("equi_depth requires data and >=1 bucket")
    qs = np.linspace(0.0, 1.0, num_buckets + 1)
    bounds = np.quantile(v, qs)
    # Collapse duplicate boundaries (heavy single values) to keep buckets
    # well-defined; counts still distribute correctly via bucketize.
    bounds = np.maximum.accumulate(bounds)
    counts, sums = bucketize(v, bounds)
    return Histogram(bounds=bounds, counts=counts, sums=sums, kind="equi_depth")


def _density_cells(
    v: np.ndarray, max_cells: int
) -> "tuple[np.ndarray, np.ndarray]":
    """(cell left edges, cell frequencies) over an equi-width grid.

    MaxDiff and V-optimal both operate on a *spatial* frequency vector:
    continuous domains are pre-quantized into fine equi-width cells so
    "frequency" means local density, which is what the continuous-values
    assumption needs to hold within the final buckets.
    """
    distinct, freq = np.unique(v, return_counts=True)
    if len(distinct) <= max_cells:
        return distinct, freq.astype(np.float64)
    lo, hi = float(v.min()), float(v.max())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, max_cells + 1)
    idx = np.clip(np.searchsorted(edges, v, side="right") - 1, 0, max_cells - 1)
    freqs = np.bincount(idx, minlength=max_cells).astype(np.float64)
    return edges[:-1], freqs


def maxdiff(
    values: np.ndarray, num_buckets: int = 32, max_cells: int = 1024
) -> Histogram:
    """Boundaries at the ``B-1`` largest area differences (MaxDiff(V, A)).

    'Area' of a cell is its frequency × spread; splitting at the biggest
    jumps isolates density cliffs (e.g. outlier regions).
    """
    v = np.asarray(values, dtype=np.float64)
    if len(v) == 0 or num_buckets < 1:
        raise SynopsisError("maxdiff requires data and >=1 bucket")
    distinct, freq = _density_cells(v, max_cells)
    if len(distinct) <= num_buckets:
        bounds = np.concatenate([distinct, [float(v.max())]])
        counts, sums = bucketize(v, bounds)
        return Histogram(bounds=bounds, counts=counts, sums=sums, kind="maxdiff")
    spread = np.empty_like(distinct)
    spread[:-1] = np.diff(distinct)
    spread[-1] = spread[-2] if len(spread) > 1 else 1.0
    area = freq * np.maximum(spread, 1e-12)
    diffs = np.abs(np.diff(area))
    cut_positions = np.sort(np.argsort(diffs)[::-1][: num_buckets - 1])
    boundary_values = distinct[cut_positions + 1]
    bounds = np.concatenate([[distinct[0]], boundary_values, [float(v.max())]])
    bounds = np.maximum.accumulate(bounds)
    counts, sums = bucketize(v, bounds)
    return Histogram(bounds=bounds, counts=counts, sums=sums, kind="maxdiff")


def v_optimal(
    values: np.ndarray, num_buckets: int = 32, max_distinct: int = 512
) -> Histogram:
    """DP-optimal bucketing minimizing Σ within-bucket frequency variance.

    The classic O(D²·B) dynamic program over the sorted distinct values'
    frequency vector. ``max_distinct`` caps D by pre-quantizing very wide
    domains (the DP is quadratic), which keeps construction tractable
    while preserving the optimality structure on the quantized domain.
    """
    v = np.asarray(values, dtype=np.float64)
    if len(v) == 0 or num_buckets < 1:
        raise SynopsisError("v_optimal requires data and >=1 bucket")
    distinct, freq = _density_cells(v, max_distinct)
    d = len(distinct)
    b = min(num_buckets, d)
    freq = freq.astype(np.float64)
    prefix = np.concatenate([[0.0], np.cumsum(freq)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(freq * freq)])

    INF = float("inf")
    dp = np.full((b + 1, d + 1), INF)
    cut = np.zeros((b + 1, d + 1), dtype=np.int64)
    dp[0, 0] = 0.0
    indices = np.arange(d + 1, dtype=np.float64)
    for k in range(1, b + 1):
        prev = dp[k - 1]
        for j in range(k, d + 1):
            # Vectorized over the split point i in [k-1, j):
            # sse(i, j) = (psq[j]-psq[i]) - (p[j]-p[i])² / (j-i)
            i_lo = k - 1
            s = prefix[j] - prefix[i_lo:j]
            sq = prefix_sq[j] - prefix_sq[i_lo:j]
            n = j - indices[i_lo:j]
            cand = prev[i_lo:j] + sq - s * s / n
            best = int(np.argmin(cand))
            dp[k, j] = cand[best]
            cut[k, j] = i_lo + best
    # Recover boundaries.
    cuts = []
    j = d
    for k in range(b, 0, -1):
        i = int(cut[k, j])
        cuts.append(i)
        j = i
    cuts = sorted(set(cuts) - {0})
    boundary_values = distinct[np.asarray(cuts, dtype=np.int64)] if cuts else np.array([])
    bounds = np.concatenate([[distinct[0]], boundary_values, [float(np.max(v))]])
    bounds = np.maximum.accumulate(bounds)
    counts, sums = bucketize(v, bounds)
    return Histogram(bounds=bounds, counts=counts, sums=sums, kind="v_optimal")
