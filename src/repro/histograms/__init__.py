"""1-D histograms: equi-width, equi-depth, MaxDiff, V-optimal."""

from .base import Histogram
from .builders import equi_depth, equi_width, maxdiff, v_optimal

__all__ = ["Histogram", "equi_depth", "equi_width", "maxdiff", "v_optimal"]
