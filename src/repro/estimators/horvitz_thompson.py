"""Horvitz–Thompson estimation for arbitrary inclusion probabilities.

Non-uniform samplers (measure-biased sampling, stratified designs with
unequal allocation, Quickr's distinct sampler) all reduce to the same
estimator: weight each sampled row by the inverse of its inclusion
probability. This module provides the generic HT total/count and its
variance estimate under Poisson (independent-inclusion) designs.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .closed_form import Estimate


def ht_total(values: np.ndarray, inclusion_probs: np.ndarray) -> Estimate:
    """HT estimate of ``Σ_pop y`` from a Poisson sample.

    Parameters
    ----------
    values:
        Sampled values ``y_i``.
    inclusion_probs:
        Per-sampled-row inclusion probabilities ``π_i`` (all in (0, 1]).
    """
    y = np.asarray(values, dtype=np.float64)
    pi = np.asarray(inclusion_probs, dtype=np.float64)
    if len(y) != len(pi):
        raise ValueError("values and inclusion_probs must align")
    if len(pi) and (np.any(pi <= 0) or np.any(pi > 1)):
        raise ValueError("inclusion probabilities must be in (0, 1]")
    total = float(np.sum(y / pi)) if len(y) else 0.0
    # Poisson-design variance: Var = Σ_pop (1-π) y²/π, estimated by
    # Σ_sample (1-π) y²/π².
    variance = float(np.sum((1.0 - pi) * y * y / (pi * pi))) if len(y) else 0.0
    return Estimate(total, variance, len(y), estimator="ht_total")


def ht_count(inclusion_probs: np.ndarray) -> Estimate:
    """HT estimate of the population size (COUNT) under Poisson sampling."""
    pi = np.asarray(inclusion_probs, dtype=np.float64)
    return ht_total(np.ones_like(pi), pi)


def ht_mean(values: np.ndarray, inclusion_probs: np.ndarray) -> Estimate:
    """Hájek (ratio-of-HT) estimator of the population mean."""
    y = np.asarray(values, dtype=np.float64)
    pi = np.asarray(inclusion_probs, dtype=np.float64)
    if len(y) == 0:
        return Estimate(math.nan, math.inf, 0, estimator="ht_mean")
    w = 1.0 / pi
    sw = float(np.sum(w))
    mean = float(np.sum(w * y)) / sw
    residuals = w * (y - mean)
    n = len(y)
    var = float(np.sum(residuals * residuals)) / (sw * sw)
    if n > 1:
        var *= n / (n - 1)
    return Estimate(mean, var, n, estimator="ht_mean")


def scale_up_weights(
    values: np.ndarray, weights: np.ndarray
) -> Estimate:
    """HT total parameterized by weights ``w_i = 1/π_i`` directly."""
    w = np.asarray(weights, dtype=np.float64)
    if len(w) and np.any(w < 1.0):
        raise ValueError("HT weights must be >= 1")
    pi = 1.0 / np.maximum(w, 1.0)
    return ht_total(values, pi)
