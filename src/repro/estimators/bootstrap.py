"""Bootstrap confidence intervals.

The survey's online-aggregation line of work popularized the bootstrap as
an alternative to closed-form CIs for statistics whose variance is hard to
derive (ratios, composite expressions, post-join aggregates). We provide
the classic resampling bootstrap plus a Poissonized variant that matches
Bernoulli-sampled inputs, and a coverage-evaluation helper the test suite
uses to compare bootstrap vs. CLT intervals empirically (experiment E13's
"peeking" discussion builds on it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np


@dataclass
class BootstrapResult:
    """Point estimate and percentile CI from bootstrap replicates."""

    value: float
    ci_low: float
    ci_high: float
    replicates: np.ndarray

    @property
    def std_error(self) -> float:
        return float(np.std(self.replicates, ddof=1)) if len(self.replicates) > 1 else math.inf


def bootstrap_ci(
    sample: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.95,
    num_replicates: int = 500,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapResult:
    """Percentile bootstrap for an arbitrary statistic of an i.i.d. sample."""
    if rng is None:
        rng = np.random.default_rng()
    data = np.asarray(sample)
    n = len(data)
    if n == 0:
        return BootstrapResult(math.nan, -math.inf, math.inf, np.array([]))
    point = float(statistic(data))
    reps = np.empty(num_replicates)
    for b in range(num_replicates):
        idx = rng.integers(0, n, size=n)
        reps[b] = statistic(data[idx])
    alpha = 1.0 - confidence
    lo, hi = np.quantile(reps, [alpha / 2.0, 1.0 - alpha / 2.0])
    return BootstrapResult(point, float(lo), float(hi), reps)


def poissonized_bootstrap_total(
    sample: np.ndarray,
    rate: float,
    confidence: float = 0.95,
    num_replicates: int = 500,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapResult:
    """Bootstrap for the HT total of a Bernoulli(rate) sample.

    Each replicate re-weights rows with i.i.d. Poisson(1) multiplicities,
    which mimics re-drawing the Bernoulli sample without touching the base
    table — the standard trick for bootstrapping scaled totals.
    """
    if rng is None:
        rng = np.random.default_rng()
    y = np.asarray(sample, dtype=np.float64)
    n = len(y)
    point = float(np.sum(y)) / rate if rate > 0 else math.nan
    if n == 0:
        return BootstrapResult(point, -math.inf, math.inf, np.array([]))
    reps = np.empty(num_replicates)
    for b in range(num_replicates):
        multiplicity = rng.poisson(1.0, size=n)
        reps[b] = float(np.sum(y * multiplicity)) / rate
    alpha = 1.0 - confidence
    lo, hi = np.quantile(reps, [alpha / 2.0, 1.0 - alpha / 2.0])
    return BootstrapResult(point, float(lo), float(hi), reps)


def coverage_probability(
    population: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    interval_fn: Callable[[np.ndarray, np.random.Generator], Tuple[float, float]],
    sample_size: int,
    num_trials: int = 200,
    seed: int = 0,
) -> float:
    """Empirical coverage of an interval procedure.

    Repeatedly draws SRS samples of ``sample_size`` from ``population``,
    builds the interval with ``interval_fn(sample, rng)``, and reports the
    fraction of trials whose interval contains the true statistic.
    """
    rng = np.random.default_rng(seed)
    pop = np.asarray(population)
    truth = float(statistic(pop))
    hits = 0
    for _ in range(num_trials):
        idx = rng.choice(len(pop), size=min(sample_size, len(pop)), replace=False)
        lo, hi = interval_fn(pop[idx], rng)
        if lo <= truth <= hi:
            hits += 1
    return hits / num_trials
