"""Closed-form (CLT-based) estimators for sampled aggregates.

These are the workhorse estimators every sampling-based AQP system in the
survey uses: unbiased point estimates for SUM/COUNT/AVG computed from a
uniform sample, with normal-approximation confidence intervals. Two
sampling designs are supported, because their variances differ:

* **Bernoulli (Poisson) sampling** — each row kept independently with
  probability ``p``. The Horvitz–Thompson total has variance
  ``(1-p)/p · Σ y_i²`` (no finite-population correction needed; the
  randomness is in the inclusion indicators).
* **Simple random sampling (SRS) without replacement** of fixed size
  ``n`` from ``N`` — the classic ``(1 - n/N) · S² / n`` variance of the
  sample mean, scaled by ``N`` for totals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.errorspec import ErrorSpec, student_t_ppf, z_value


@dataclass
class Estimate:
    """A point estimate with a variance and sample-size provenance."""

    value: float
    variance: float
    sample_size: int
    estimator: str = ""

    @property
    def std_error(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    def ci(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Two-sided CLT confidence interval.

        Uses Student's t when the sample is small (<100) and the normal
        otherwise; with tiny samples the t correction matters for the
        coverage experiments.
        """
        if self.sample_size <= 1:
            return (-math.inf, math.inf)
        if self.sample_size < 100:
            crit = student_t_ppf(0.5 + confidence / 2.0, self.sample_size - 1)
        else:
            crit = z_value(confidence)
        half = crit * self.std_error
        return (self.value - half, self.value + half)

    def relative_half_width(self, confidence: float = 0.95) -> float:
        lo, hi = self.ci(confidence)
        if self.value == 0 or not math.isfinite(lo):
            return math.inf
        return (hi - lo) / 2.0 / abs(self.value)

    def satisfies(self, spec: ErrorSpec) -> bool:
        """Would this estimate's CI meet the error spec?"""
        return self.relative_half_width(spec.confidence) <= spec.relative_error

    def covers(self, truth: float, confidence: float = 0.95) -> bool:
        """Does the CI at ``confidence`` contain the exact answer?"""
        lo, hi = self.ci(confidence)
        return lo <= truth <= hi


# ----------------------------------------------------------------------
# Bernoulli / Poisson sampling estimators
# ----------------------------------------------------------------------

def bernoulli_sum(sample_values: np.ndarray, rate: float) -> Estimate:
    """HT estimate of a population SUM from a Bernoulli sample."""
    if not (0.0 < rate <= 1.0):
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    y = np.asarray(sample_values, dtype=np.float64)
    n = len(y)
    total = float(np.sum(y)) / rate
    # HT variance for Poisson sampling, estimated from the sample:
    # Var = sum_i y_i^2 (1-p)/p; unbiased estimate divides by p once more.
    variance = float(np.sum(y * y)) * (1.0 - rate) / (rate * rate)
    return Estimate(total, variance, n, estimator="bernoulli_sum")


def bernoulli_count(sample_size: int, rate: float) -> Estimate:
    """HT estimate of a population COUNT from a Bernoulli sample."""
    if not (0.0 < rate <= 1.0):
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    total = sample_size / rate
    variance = sample_size * (1.0 - rate) / (rate * rate)
    return Estimate(total, variance, sample_size, estimator="bernoulli_count")


def bernoulli_avg(sample_values: np.ndarray, rate: float) -> Estimate:
    """AVG as the ratio SUM/COUNT with delta-method variance.

    For a Bernoulli sample the sample mean is a consistent (ratio)
    estimator of the population mean; its variance is approximately
    ``(1-p) · S² / n`` where ``S²`` is the sample variance.
    """
    y = np.asarray(sample_values, dtype=np.float64)
    n = len(y)
    if n == 0:
        return Estimate(math.nan, math.inf, 0, estimator="bernoulli_avg")
    mean = float(np.mean(y))
    s2 = float(np.var(y, ddof=1)) if n > 1 else 0.0
    variance = (1.0 - rate) * s2 / n
    return Estimate(mean, variance, n, estimator="bernoulli_avg")


# ----------------------------------------------------------------------
# SRS-without-replacement estimators
# ----------------------------------------------------------------------

def srs_mean(sample_values: np.ndarray, population_size: int) -> Estimate:
    """Mean under SRS without replacement, with FPC."""
    y = np.asarray(sample_values, dtype=np.float64)
    n = len(y)
    if n == 0:
        return Estimate(math.nan, math.inf, 0, estimator="srs_mean")
    mean = float(np.mean(y))
    s2 = float(np.var(y, ddof=1)) if n > 1 else 0.0
    fpc = 1.0 - n / population_size if population_size > 0 else 1.0
    variance = max(fpc, 0.0) * s2 / n
    return Estimate(mean, variance, n, estimator="srs_mean")


def srs_sum(sample_values: np.ndarray, population_size: int) -> Estimate:
    """Total under SRS without replacement: N · mean."""
    mean_est = srs_mean(sample_values, population_size)
    return Estimate(
        mean_est.value * population_size,
        mean_est.variance * population_size * population_size,
        mean_est.sample_size,
        estimator="srs_sum",
    )


def srs_sum_from_sums(
    n: int, population_size: int, sum_y: float, sum_y2: float
) -> Estimate:
    """:func:`srs_sum` from precomputed moments ``Σy`` and ``Σy²``.

    Lets online aggregation keep O(1) snapshots off cumulative-sum
    arrays instead of rescanning the sample prefix each time.
    """
    if n == 0:
        return Estimate(math.nan, math.inf, 0, estimator="srs_sum")
    mean = sum_y / n
    s2 = max(sum_y2 - n * mean * mean, 0.0) / (n - 1) if n > 1 else 0.0
    fpc = 1.0 - n / population_size if population_size > 0 else 1.0
    var_mean = max(fpc, 0.0) * s2 / n
    return Estimate(
        mean * population_size,
        var_mean * population_size * population_size,
        n,
        estimator="srs_sum",
    )


def ratio_from_sums(
    n: int,
    sum_num: float,
    sum_den: float,
    sum_num2: float,
    sum_den2: float,
    sum_cross: float,
) -> Estimate:
    """:func:`ratio_estimate` from precomputed moments.

    ``Σ(num - r·den)² = Σnum² - 2rΣ(num·den) + r²Σden²`` — identical to
    the residual form up to float rounding.
    """
    if n == 0 or sum_den == 0:
        return Estimate(math.nan, math.inf, n, estimator="ratio")
    r = sum_num / sum_den
    ss_resid = max(sum_num2 - 2.0 * r * sum_cross + r * r * sum_den2, 0.0)
    if n > 1:
        var = ss_resid * n / (n - 1) / (sum_den * sum_den)
    else:
        var = math.inf
    return Estimate(r, var, n, estimator="ratio")


def srs_proportion_count(
    matching: int, sample_size: int, population_size: int
) -> Estimate:
    """COUNT of rows matching a predicate from an SRS of the table."""
    if sample_size == 0:
        return Estimate(math.nan, math.inf, 0, estimator="srs_count")
    p_hat = matching / sample_size
    fpc = 1.0 - sample_size / population_size if population_size > 0 else 1.0
    var_p = max(fpc, 0.0) * p_hat * (1.0 - p_hat) / max(sample_size - 1, 1)
    return Estimate(
        p_hat * population_size,
        var_p * population_size * population_size,
        sample_size,
        estimator="srs_count",
    )


# ----------------------------------------------------------------------
# Ratio estimator (AVG over filtered subsets, per-group means, ...)
# ----------------------------------------------------------------------

def ratio_estimate(
    numerators: np.ndarray, denominators: np.ndarray
) -> Estimate:
    """Estimate ``Σ num / Σ den`` with delta-method (Taylor) variance.

    Both arrays are per-sample-row contributions (e.g. ``y_i`` and
    ``1{row matches}``). Used for AVG on Bernoulli samples and for
    per-group means where the group size is itself estimated.
    """
    num = np.asarray(numerators, dtype=np.float64)
    den = np.asarray(denominators, dtype=np.float64)
    n = len(num)
    sum_den = float(np.sum(den))
    if n == 0 or sum_den == 0:
        return Estimate(math.nan, math.inf, n, estimator="ratio")
    r = float(np.sum(num)) / sum_den
    residuals = num - r * den
    # Var(r) ~ n/(n-1) * sum(residuals^2) / (sum_den)^2
    if n > 1:
        var = float(np.sum(residuals * residuals)) * n / (n - 1) / (sum_den * sum_den)
    else:
        var = math.inf
    return Estimate(r, var, n, estimator="ratio")


# ----------------------------------------------------------------------
# Sample-size planning (inverse problems)
# ----------------------------------------------------------------------

def required_sample_size_for_mean(
    cv: float, spec: ErrorSpec, population_size: Optional[int] = None
) -> int:
    """Rows needed so a mean's relative CI half-width meets ``spec``.

    ``cv`` is the coefficient of variation (σ/|μ|) of the data. Follows
    from ``z·σ/(√n·μ) ≤ ε`` → ``n ≥ (z·cv/ε)²``, with an optional
    finite-population correction.
    """
    z = z_value(spec.confidence)
    if cv == 0:
        return 1
    n0 = (z * cv / spec.relative_error) ** 2
    if population_size is not None and population_size > 0:
        n0 = n0 / (1.0 + n0 / population_size)
    return max(1, int(math.ceil(n0)))


def required_rate_for_sum(
    sample_values: np.ndarray,
    pilot_rate: float,
    spec: ErrorSpec,
) -> float:
    """Bernoulli rate for a SUM estimate to meet ``spec``, from a pilot.

    Given pilot observations at rate ``q``, the final-rate variance of the
    HT total is ``(1-p)/p · Σ_pop y²`` with ``Σ_pop y² ≈ Σ_pilot y²/q``.
    Solving ``z·σ ≤ ε·|total|`` for ``p`` yields the returned rate
    (clamped to (0, 1]).
    """
    y = np.asarray(sample_values, dtype=np.float64)
    if len(y) == 0:
        return 1.0
    z = z_value(spec.confidence)
    total = float(np.sum(y)) / pilot_rate
    sum_sq = float(np.sum(y * y)) / pilot_rate
    if total == 0:
        return 1.0
    # (1-p)/p * sum_sq <= (eps*total/z)^2  =>  p >= sum_sq/(target + sum_sq)
    target = (spec.relative_error * abs(total) / z) ** 2
    rate = sum_sq / (target + sum_sq)
    return float(min(max(rate, 1e-9), 1.0))
