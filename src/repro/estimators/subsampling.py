"""Cluster (block-level) variance estimation.

Rows inside a storage block are correlated (they were loaded together and
often inserted together), so row-level variance formulas understate the
variance of estimates computed from *block* samples. The fix, standard in
the cluster-sampling literature, is to treat each block as the sampling
unit: compute per-block totals and apply the one-sample formulas to those
totals. This module provides that machinery plus a delete-one-block
jackknife for statistics without closed forms.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from .closed_form import Estimate


def per_block_totals(
    values: np.ndarray, block_ids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate row values into per-block (sum, row-count) arrays.

    ``block_ids`` need not be dense; blocks are keyed by distinct id.
    """
    v = np.asarray(values, dtype=np.float64)
    b = np.asarray(block_ids)
    uniq, inverse = np.unique(b, return_inverse=True)
    sums = np.bincount(inverse, weights=v, minlength=len(uniq))
    counts = np.bincount(inverse, minlength=len(uniq)).astype(np.float64)
    return sums, counts


def block_sample_sum(
    block_sums: np.ndarray,
    total_blocks: int,
    sampled_blocks: Optional[int] = None,
) -> Estimate:
    """Population SUM from a block sample (blocks as sampling units).

    The estimator is ``B · mean(block_sums)`` for ``B = total_blocks``;
    its variance uses the between-block sample variance with FPC. This is
    exactly the clustered analogue of :func:`repro.estimators.closed_form.srs_sum`.
    """
    s = np.asarray(block_sums, dtype=np.float64)
    m = sampled_blocks if sampled_blocks is not None else len(s)
    if m == 0:
        return Estimate(math.nan, math.inf, 0, estimator="block_sum")
    mean_block = float(np.mean(s))
    var_block = float(np.var(s, ddof=1)) if m > 1 else 0.0
    fpc = max(1.0 - m / total_blocks, 0.0) if total_blocks > 0 else 1.0
    total = total_blocks * mean_block
    variance = total_blocks * total_blocks * fpc * var_block / m
    return Estimate(total, variance, m, estimator="block_sum")


def block_sample_count(
    block_counts: np.ndarray, total_blocks: int
) -> Estimate:
    """Population COUNT from a block sample (counts as block 'values')."""
    return block_sample_sum(block_counts, total_blocks)


def block_sample_avg(
    block_sums: np.ndarray, block_counts: np.ndarray, total_blocks: int
) -> Estimate:
    """Population AVG from a block sample via the ratio of block totals.

    Ratio-of-means with linearized (Taylor) variance over blocks — the
    correct estimator when block sizes vary or a predicate filters rows
    unevenly across blocks.
    """
    s = np.asarray(block_sums, dtype=np.float64)
    c = np.asarray(block_counts, dtype=np.float64)
    m = len(s)
    sum_c = float(np.sum(c))
    if m == 0 or sum_c == 0:
        return Estimate(math.nan, math.inf, m, estimator="block_avg")
    r = float(np.sum(s)) / sum_c
    residuals = s - r * c
    mean_c = sum_c / m
    if m > 1:
        var = float(np.sum(residuals * residuals)) / (m - 1) / (m * mean_c * mean_c)
        fpc = max(1.0 - m / total_blocks, 0.0) if total_blocks > 0 else 1.0
        var *= fpc
    else:
        var = math.inf
    return Estimate(r, var, m, estimator="block_avg")


def design_effect(block_sums: np.ndarray, block_counts: np.ndarray) -> float:
    """Ratio of cluster variance to the naive i.i.d. variance.

    >1 means blocks are internally homogeneous (clustered layouts) and a
    block sample needs proportionally more rows than a row sample; ≈1
    means blocks look like random subsets (shuffled layouts). This is the
    quantity behind the survey's 'block sampling is statistically fine
    when blocks are heterogeneous' argument.
    """
    s = np.asarray(block_sums, dtype=np.float64)
    c = np.asarray(block_counts, dtype=np.float64)
    return _deff_from_rows(s, c)


def design_effect_from_rows(values: np.ndarray, block_ids: np.ndarray) -> float:
    """Kish design effect 1 + (b̄-1)·ρ computed from raw rows.

    ρ is the intra-block correlation estimated by one-way ANOVA: the
    between-block mean square vs. the within-block mean square.
    """
    v = np.asarray(values, dtype=np.float64)
    b = np.asarray(block_ids)
    uniq, inverse = np.unique(b, return_inverse=True)
    m = len(uniq)
    n = len(v)
    if m < 2 or n <= m:
        return 1.0
    counts = np.bincount(inverse, minlength=m).astype(np.float64)
    sums = np.bincount(inverse, weights=v, minlength=m)
    means = sums / counts
    grand = float(np.mean(v))
    ss_between = float(np.sum(counts * (means - grand) ** 2))
    ss_within = float(np.sum((v - means[inverse]) ** 2))
    ms_between = ss_between / (m - 1)
    ms_within = ss_within / (n - m)
    b_bar = n / m
    if ms_between + (b_bar - 1) * ms_within <= 0:
        return 1.0
    rho = (ms_between - ms_within) / (ms_between + (b_bar - 1) * ms_within)
    rho = min(max(rho, -1.0 / max(b_bar - 1.0, 1.0)), 1.0)
    return max(1.0 + (b_bar - 1.0) * rho, 1e-6)


def _deff_from_rows(s: np.ndarray, c: np.ndarray) -> float:
    """Fallback design-effect proxy from block totals alone.

    Without row detail we compare the observed between-block variance of
    block means with what i.i.d. rows would produce; capped at the block
    size (the theoretical maximum inflation).
    """
    m = len(s)
    total_rows = float(np.sum(c))
    if m < 2 or total_rows < 2:
        return 1.0
    b_bar = total_rows / m
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(c > 0, s / np.maximum(c, 1), 0.0)
    grand = float(np.sum(s)) / total_rows
    between = float(np.var(means, ddof=1))
    # Treat per-block means as if rows were i.i.d. with the same grand
    # variance: expected between-variance would be var_rows / b_bar. We
    # cannot see var_rows, so report the conservative bound min(b_bar, ...).
    if grand == 0 and between == 0:
        return 1.0
    scale = between / max(grand * grand, 1e-300)
    return float(min(max(1.0, 1.0 + scale * b_bar), b_bar if b_bar > 1 else 1.0))


def jackknife_blocks(
    block_values: np.ndarray,
    statistic: Callable[[np.ndarray], float],
) -> Estimate:
    """Delete-one-block jackknife variance for an arbitrary statistic of
    per-block values (e.g. a ratio or a trimmed total)."""
    v = np.asarray(block_values, dtype=np.float64)
    m = len(v)
    point = float(statistic(v))
    if m < 2:
        return Estimate(point, math.inf, m, estimator="jackknife")
    pseudo = np.empty(m)
    for i in range(m):
        pseudo[i] = statistic(np.delete(v, i))
    mean_pseudo = float(np.mean(pseudo))
    var = (m - 1) / m * float(np.sum((pseudo - mean_pseudo) ** 2))
    return Estimate(point, var, m, estimator="jackknife")
