"""Statistical estimation: CLT, HT, bootstrap, propagation, clusters."""

from .bootstrap import BootstrapResult, bootstrap_ci, poissonized_bootstrap_total
from .closed_form import (
    Estimate,
    bernoulli_avg,
    bernoulli_count,
    bernoulli_sum,
    ratio_estimate,
    required_rate_for_sum,
    required_sample_size_for_mean,
    srs_mean,
    srs_proportion_count,
    srs_sum,
)
from .horvitz_thompson import ht_count, ht_mean, ht_total
from .propagation import (
    allocate_for_product,
    allocate_for_quotient,
    propagate_product,
    propagate_quotient,
    propagate_sum,
)
from .subsampling import (
    block_sample_avg,
    block_sample_count,
    block_sample_sum,
    design_effect_from_rows,
    jackknife_blocks,
    per_block_totals,
)

__all__ = [
    "BootstrapResult",
    "Estimate",
    "allocate_for_product",
    "allocate_for_quotient",
    "bernoulli_avg",
    "bernoulli_count",
    "bernoulli_sum",
    "block_sample_avg",
    "block_sample_count",
    "block_sample_sum",
    "bootstrap_ci",
    "design_effect_from_rows",
    "ht_count",
    "ht_mean",
    "ht_total",
    "jackknife_blocks",
    "per_block_totals",
    "poissonized_bootstrap_total",
    "propagate_product",
    "propagate_quotient",
    "propagate_sum",
    "ratio_estimate",
    "required_rate_for_sum",
    "required_sample_size_for_mean",
    "srs_mean",
    "srs_proportion_count",
    "srs_sum",
]
