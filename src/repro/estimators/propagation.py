"""Relative-error propagation for composite aggregates.

SELECT lists routinely combine simple aggregates — ``SUM(a)/SUM(b)``,
``SUM(a) * AVG(b)``, ``SUM(a) + SUM(b)`` — and an AQP planner that
guarantees a relative error ``ε`` for the *composite* must decide what to
demand of each *factor*. These are the classic uncertainty-propagation
bounds (valid for positive quantities, proved by direct algebra):

* product:   ``rel(xy) ≤ rel(x) + rel(y) + rel(x)·rel(y)``
* quotient:  ``rel(x/y) ≤ (rel(x) + rel(y)) / (1 - rel(y))``
* sum:       ``rel(x+y) ≤ max(rel(x), rel(y))`` (positive terms)

The planner allocates ``ε`` evenly across factors using the inverse
direction (:func:`allocate_for_product` etc.).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..core.exceptions import ErrorSpecError


def propagate_product(rel_errors: Sequence[float]) -> float:
    """Upper bound on the relative error of a product of positive factors."""
    bound = 1.0
    for e in rel_errors:
        _check(e)
        bound *= 1.0 + e
    return bound - 1.0


def propagate_quotient(rel_num: float, rel_den: float) -> float:
    """Upper bound on the relative error of ``x / y`` (positive x, y)."""
    _check(rel_num)
    _check(rel_den)
    if rel_den >= 1.0:
        return math.inf
    return (rel_num + rel_den) / (1.0 - rel_den)


def propagate_sum(rel_errors: Sequence[float]) -> float:
    """Upper bound for a sum of positive terms: the worst factor error."""
    for e in rel_errors:
        _check(e)
    return max(rel_errors) if rel_errors else 0.0


def propagate_difference(
    rel_x: float, rel_y: float, x: float, y: float
) -> float:
    """Bound for ``x - y``; blows up as the difference cancels.

    ``rel(x-y) ≤ (rel(x)·|x| + rel(y)·|y|) / |x - y|`` — the planner uses
    this to *refuse* differences of nearly equal aggregates (no sampling
    scheme can bound them cheaply; one of the paper's generality caveats).
    """
    _check(rel_x)
    _check(rel_y)
    denom = abs(x - y)
    if denom == 0:
        return math.inf
    return (rel_x * abs(x) + rel_y * abs(y)) / denom


# ----------------------------------------------------------------------
# Inverse direction: allocate a composite budget to factors
# ----------------------------------------------------------------------

def allocate_for_product(target: float, num_factors: int) -> float:
    """Per-factor relative error so the product bound meets ``target``.

    Solves ``(1 + e)^k - 1 ≤ target`` → ``e = (1+target)^(1/k) - 1``.
    """
    if num_factors < 1:
        raise ErrorSpecError("num_factors must be >= 1")
    _check(target)
    return (1.0 + target) ** (1.0 / num_factors) - 1.0


def allocate_for_quotient(target: float) -> float:
    """Per-factor error so ``(e + e)/(1 - e) ≤ target``.

    Solves ``2e/(1-e) = t`` → ``e = t / (2 + t)``.
    """
    _check(target)
    return target / (2.0 + target)


def allocate_for_sum(target: float) -> float:
    """Positive sums are free: each term may use the full budget."""
    _check(target)
    return target


def _check(e: float) -> None:
    if e < 0 or math.isnan(e):
        raise ErrorSpecError(f"relative error must be non-negative, got {e}")


# ----------------------------------------------------------------------
# Expression-level allocation
# ----------------------------------------------------------------------

def allocate_expression(expr, target: float) -> dict:
    """Allocate a relative-error budget across the aggregate leaves of a
    post-aggregation expression tree.

    ``expr`` is an engine :class:`~repro.engine.expressions.Expression`
    over aggregate-output columns (the binder's ``output_items`` form).
    Returns ``{agg_alias: allocated_relative_error}``. Conservative: it
    descends products/quotients with the bounds above, treats additions of
    aggregates with :func:`allocate_for_sum`, and assigns the full budget
    to a bare aggregate reference.
    """
    from ..engine.expressions import BinaryOp, Column, Literal, UnaryOp

    allocation: dict = {}

    def visit(node, budget: float) -> None:
        if isinstance(node, Column):
            prev = allocation.get(node.name)
            allocation[node.name] = min(prev, budget) if prev is not None else budget
            return
        if isinstance(node, Literal):
            return
        if isinstance(node, UnaryOp):
            visit(node.operand, budget)
            return
        if isinstance(node, BinaryOp):
            if node.op == "*":
                per = allocate_for_product(budget, 2)
                visit(node.left, per)
                visit(node.right, per)
                return
            if node.op == "/":
                per = allocate_for_quotient(budget)
                visit(node.left, per)
                visit(node.right, per)
                return
            if node.op in ("+", "-"):
                # '-' is handled conservatively like '+' with halved budget;
                # heavy cancellation is rejected upstream by the advisor.
                per = budget if node.op == "+" else budget / 2.0
                visit(node.left, per)
                visit(node.right, per)
                return
        # Unknown structure: be conservative, give every leaf half budget.
        for child in node.children():
            visit(child, budget / 2.0)

    visit(expr, target)
    return allocation
