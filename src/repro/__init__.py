"""repro — an approximate query processing (AQP) toolkit.

A from-scratch reproduction of the landscape surveyed in "Approximate
Query Processing: No Silver Bullet" (Chaudhuri, Ding, Kandula; SIGMOD
2017): an in-memory SQL engine substrate, the full family of sampling
schemes and synopses the paper discusses, offline and online approximate
planners, and a technique advisor that operationalizes the paper's
generality / guarantee / speedup trade-off.

Quick start::

    import numpy as np
    from repro import Database, ErrorSpec

    db = Database()
    db.create_table("sales", {"price": np.random.exponential(100, 10**6),
                              "region": np.random.choice(list("ABCD"), 10**6)})
    result = db.sql(
        "SELECT region, SUM(price) AS total FROM sales "
        "GROUP BY region ERROR WITHIN 5% CONFIDENCE 95%"
    )
    print(result.summary())
"""

from .core.errorspec import ErrorSpec
from .core.exceptions import (
    BindError,
    ErrorSpecError,
    InfeasiblePlanError,
    PlanError,
    ReproError,
    SchemaError,
    SQLError,
    SQLSyntaxError,
    SynopsisError,
    UnsupportedQueryError,
)
from .core.options import QUERY_OPTION_FIELDS, QueryOptions
from .core.result import ENVELOPE_KEYS, ApproximateResult, QueryResult
from .core.session import AQPEngine
from .core.tradeoff import (
    TECHNIQUE_PROFILES,
    comparison_matrix,
    format_matrix,
    no_silver_bullet,
)
from .engine.database import Database
from .engine.table import Table

__version__ = "1.0.0"

__all__ = [
    "AQPEngine",
    "ApproximateResult",
    "BindError",
    "Database",
    "ENVELOPE_KEYS",
    "ErrorSpec",
    "ErrorSpecError",
    "InfeasiblePlanError",
    "PlanError",
    "QUERY_OPTION_FIELDS",
    "QueryOptions",
    "QueryResult",
    "ReproError",
    "SQLError",
    "SQLSyntaxError",
    "SchemaError",
    "SynopsisError",
    "Table",
    "TECHNIQUE_PROFILES",
    "UnsupportedQueryError",
    "comparison_matrix",
    "format_matrix",
    "no_silver_bullet",
    "__version__",
]
