"""Content-addressed memoizing cache for synopses.

The "synopsis once, answer many" economics of offline AQP (VerdictDB,
BlinkDB) only work if a rebuilt benchmark, a repeated query, or a second
session can *find* the synopsis it already paid for. This cache keys
every synopsis by what it is a function of — table content (via
:meth:`Table.fingerprint`), column set, synopsis kind, and build
parameters — so a lookup can never return a synopsis of different data,
and explicit invalidation is only an eviction hint, not a correctness
requirement.

Entries are held under an LRU byte budget; hit/miss/eviction counters
make reuse measurable (the parallel bench harness reports them per
experiment).
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

__all__ = [
    "CacheStats",
    "SynopsisCache",
    "get_global_cache",
    "set_global_cache",
    "configure_global_cache",
]

#: Default byte budget — generous for laptop-scale benchmark synopses,
#: small enough that pathological sweeps still exercise eviction.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass
class CacheStats:
    """Counters exposed for tests and the benchmark harness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    failed_builds: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "failed_builds": self.failed_builds,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.invalidations = 0
        self.failed_builds = 0


@dataclass
class _Entry:
    value: Any
    nbytes: int
    table_name: str


def _estimate_nbytes(value: Any) -> int:
    """Best-effort size of a synopsis, duck-typed across synopsis kinds."""
    for attr in ("memory_bytes", "estimated_bytes"):
        fn = getattr(value, attr, None)
        if callable(fn):
            try:
                return int(fn())
            except Exception:  # pragma: no cover - defensive
                pass
    # WeightedSample-shaped: a sample table plus a weight vector.
    inner = getattr(value, "table", None)
    if inner is not None and hasattr(inner, "estimated_bytes"):
        size = int(inner.estimated_bytes())
        weights = getattr(value, "weights", None)
        if weights is not None and hasattr(weights, "nbytes"):
            size += int(weights.nbytes)
        return size
    # SampleSeekSynopsis-shaped: sample table + postings index.
    inner = getattr(value, "sample_table", None)
    if inner is not None and hasattr(inner, "estimated_bytes"):
        size = int(inner.estimated_bytes())
        index = getattr(value, "index", None)
        if index is not None and hasattr(index, "storage_rows"):
            size += int(index.storage_rows()) * 8
        return size
    return sys.getsizeof(value)


def _freeze(obj: Any) -> Any:
    """Recursively convert params into a hashable, deterministic form."""
    if isinstance(obj, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in obj.items()))
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        return tuple(_freeze(v) for v in items)
    return obj


class SynopsisCache:
    """Memoizing LRU cache for synopses, keyed by content fingerprints."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple, _Entry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def make_key(
        table,
        kind: str,
        columns: Sequence[str] = (),
        params: Optional[Mapping[str, Any]] = None,
        shard: Optional[int] = None,
    ) -> Tuple:
        """Content-addressed key: identity AND content of the table.

        ``table`` may be a Table (fingerprinted here) or a prefabricated
        ``(name, fingerprint)`` pair.

        ``shard`` must be set for per-shard synopses. Fingerprints probe
        only a bounded sample of values, so two shards of the same parent
        — same name, same length, content differing only at unprobed rows
        — can collide on fingerprint alone; the shard id keeps their
        cache entries disjoint by construction.
        """
        if isinstance(table, tuple):
            name, fingerprint = table
        else:
            name, fingerprint = table.name, table.fingerprint()
        return (
            name,
            fingerprint,
            kind,
            tuple(columns),
            _freeze(params or {}),
            shard,
        )

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get(self, key: Tuple) -> Optional[Any]:
        from ..obs.metrics import get_metrics

        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                result = "miss"
                value = None
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                result = "hit"
                value = entry.value
        get_metrics().inc("synopsis_cache_lookups_total", result=result)
        return value

    def put(
        self, key: Tuple, value: Any, nbytes: Optional[int] = None
    ) -> None:
        nbytes = _estimate_nbytes(value) if nbytes is None else int(nbytes)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            if nbytes > self.max_bytes:
                # Larger than the whole budget: never admitted, and
                # admitting-then-evicting would just churn the counters.
                return
            self._entries[key] = _Entry(value, nbytes, key[0])
            self._bytes += nbytes
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.stats.evictions += 1

    def evict(self, key: Tuple) -> bool:
        """Drop one entry by key. Returns whether anything was dropped."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry.nbytes
            self.stats.evictions += 1
            return True

    def get_or_build(
        self,
        table,
        kind: str,
        builder: Callable[[], Any],
        columns: Sequence[str] = (),
        params: Optional[Mapping[str, Any]] = None,
        nbytes: Optional[int] = None,
        refresh: bool = False,
        shard: Optional[int] = None,
    ) -> Any:
        """Return the cached synopsis or build + admit it.

        ``builder`` runs outside the lock, so concurrent builders may
        race and both build — last write wins, answers are identical by
        construction of the key. ``refresh=True`` skips the lookup and
        rebuilds unconditionally (maintenance / forced refresh).

        Failure semantics: if ``builder`` raises, the key is evicted
        before the exception propagates, so a build that died halfway —
        even one that self-registered a partial result through a nested
        :meth:`put` — can never leave a poisoned entry behind for the
        next lookup to trust.
        """
        from ..obs.trace import span
        from ..resilience.faults import maybe_fault

        key = self.make_key(table, kind, columns, params, shard=shard)
        if maybe_fault("cache.lookup") == "evict":
            self.evict(key)
        if not refresh:
            value = self.get(key)
            if value is not None:
                return value
        with span(
            "synopsis_build",
            kind=kind,
            table=getattr(table, "name", str(key[0])),
            refresh=refresh,
        ):
            try:
                value = builder()
            except BaseException:
                with self._lock:
                    self.stats.failed_builds += 1
                self.evict(key)
                raise
        self.put(key, value, nbytes=nbytes)
        return value

    # ------------------------------------------------------------------
    # Invalidation / introspection
    # ------------------------------------------------------------------
    def invalidate_table(self, table_name: str) -> int:
        """Drop every entry built from ``table_name``.

        Content addressing already protects correctness when a table is
        replaced; this reclaims the bytes immediately instead of waiting
        for LRU pressure.
        """
        with self._lock:
            doomed = [
                k for k, e in self._entries.items() if e.table_name == table_name
            ]
            for k in doomed:
                entry = self._entries.pop(k)
                self._bytes -= entry.nbytes
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    @property
    def current_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries


# ----------------------------------------------------------------------
# Process-wide default instance
# ----------------------------------------------------------------------
_global_cache: Optional[SynopsisCache] = None
_global_lock = threading.Lock()


def get_global_cache() -> SynopsisCache:
    """The process-wide cache the offline builders use by default."""
    global _global_cache
    with _global_lock:
        if _global_cache is None:
            _global_cache = SynopsisCache()
        return _global_cache


def set_global_cache(cache: Optional[SynopsisCache]) -> None:
    """Swap (or, with ``None``, reset) the process-wide cache."""
    global _global_cache
    with _global_lock:
        _global_cache = cache


def configure_global_cache(max_bytes: int) -> SynopsisCache:
    """Install a fresh global cache with the given byte budget."""
    cache = SynopsisCache(max_bytes=max_bytes)
    set_global_cache(cache)
    return cache
