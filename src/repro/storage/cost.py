"""A simple, explicit cost model.

The model charges for the two resources AQP trades against accuracy:

* **I/O**: blocks read from the (simulated) storage layer. Block sampling
  is cheaper than row sampling precisely because it reads fewer blocks.
* **CPU**: rows flowing through operators (filters, joins, aggregation).

Costs are unitless "work" numbers; every claim we reproduce compares
*relative* costs (speedups), so only ratios matter. The defaults weight a
block read as the cost of processing one block's worth of rows times an
I/O amplification factor, which makes scan-bound queries scan-bound —
matching the regime the survey's speedup arguments assume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class CostParameters:
    """Tunable unit costs."""

    block_read_cost: float = 50.0  #: cost to fetch one block from storage
    row_cpu_cost: float = 0.01  #: cost to run one row through one operator
    row_join_cost: float = 0.03  #: cost per probe-side row in a hash join
    row_agg_cost: float = 0.02  #: cost per row entering aggregation
    sample_overhead_per_block: float = 5.0  #: RNG/bookkeeping per candidate block
    seek_cost: float = 120.0  #: one random index seek (B-tree descent + page)


DEFAULT_COST = CostParameters()


@dataclass
class CostEstimate:
    """Decomposed cost of a (sub)plan."""

    io: float = 0.0
    cpu: float = 0.0
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.io + self.cpu

    def add(self, other: "CostEstimate") -> "CostEstimate":
        merged = dict(self.detail)
        for k, v in other.detail.items():
            merged[k] = merged.get(k, 0.0) + v
        return CostEstimate(io=self.io + other.io, cpu=self.cpu + other.cpu, detail=merged)

    def __repr__(self) -> str:
        return f"CostEstimate(total={self.total:.1f}, io={self.io:.1f}, cpu={self.cpu:.1f})"


def scan_cost(
    num_blocks: int, num_rows: int, params: CostParameters = DEFAULT_COST
) -> CostEstimate:
    """Full sequential scan."""
    return CostEstimate(
        io=num_blocks * params.block_read_cost,
        cpu=num_rows * params.row_cpu_cost,
        detail={"scan_blocks": float(num_blocks)},
    )


def block_sample_cost(
    num_blocks: int,
    block_size: int,
    sampling_rate: float,
    params: CostParameters = DEFAULT_COST,
) -> CostEstimate:
    """Block Bernoulli sampling: reads ~rate fraction of blocks, plus a small
    per-block decision overhead for *every* block (the sampler must flip a
    coin per block even when it skips it)."""
    expected_blocks = num_blocks * sampling_rate
    return CostEstimate(
        io=expected_blocks * params.block_read_cost,
        cpu=(
            expected_blocks * block_size * params.row_cpu_cost
            + num_blocks * params.sample_overhead_per_block * 0.01
        ),
        detail={"sampled_blocks": expected_blocks},
    )


def row_sample_cost(
    num_blocks: int,
    block_size: int,
    sampling_rate: float,
    params: CostParameters = DEFAULT_COST,
) -> CostEstimate:
    """Row-level Bernoulli sampling on block storage.

    The expected number of blocks touched is ``B * (1 - (1-p)^b)`` for block
    size ``b``: with even modest rates nearly all blocks are read, which is
    why the survey calls row sampling "no cheaper than a scan" on disk.
    """
    prob_block_touched = 1.0 - (1.0 - sampling_rate) ** block_size
    touched = num_blocks * prob_block_touched
    return CostEstimate(
        io=touched * params.block_read_cost,
        cpu=num_blocks * block_size * sampling_rate * params.row_cpu_cost
        + num_blocks * block_size * params.sample_overhead_per_block * 0.001,
        detail={"touched_blocks": touched},
    )


def index_seek_cost(
    matching_rows: float, params: CostParameters = DEFAULT_COST
) -> CostEstimate:
    """Point lookups for ``matching_rows`` rows via a secondary index
    (the "seek" half of Sample+Seek)."""
    return CostEstimate(
        io=matching_rows * params.seek_cost * 0.05,  # amortized: clustered postings
        cpu=matching_rows * params.row_cpu_cost,
        detail={"seeks": float(matching_rows)},
    )


def join_cost(
    build_rows: float, probe_rows: float, params: CostParameters = DEFAULT_COST
) -> CostEstimate:
    return CostEstimate(
        cpu=(build_rows + probe_rows) * params.row_join_cost,
        detail={"join_rows": build_rows + probe_rows},
    )


def aggregation_cost(
    input_rows: float, params: CostParameters = DEFAULT_COST
) -> CostEstimate:
    return CostEstimate(cpu=input_rows * params.row_agg_cost)
