"""Block-structured access paths over columnar tables.

The survey's efficiency arguments hinge on *what fraction of storage a
technique touches*: row-level samplers still read every block, while
block-level samplers skip non-sampled blocks entirely. This module makes
that distinction concrete — every access path reports how many blocks and
rows it materialized, which the cost model converts into simulated I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.table import Table


@dataclass
class AccessStats:
    """What a scan actually touched. Accumulated into ExecutionStats."""

    rows_scanned: int = 0
    blocks_scanned: int = 0
    rows_returned: int = 0

    def merge(self, other: "AccessStats") -> None:
        self.rows_scanned += other.rows_scanned
        self.blocks_scanned += other.blocks_scanned
        self.rows_returned += other.rows_returned


#: Column name under which block-sampled scans expose each row's block id.
#: Downstream, pilot-style planners group by it to get per-block statistics.
BLOCK_ID_COLUMN = "__block_id"


@dataclass
class ScanSelection:
    """A scan's row selection, decoupled from its materialization.

    Every access path is the composition of two decisions: *which rows*
    (and what that touch costs — :attr:`access`) and *whether to copy
    them out*. The legacy ``*_scan`` functions fuse both; the fused
    executor wants only the first, carrying :attr:`row_indices` as a
    selection vector over zero-copy column views until (unless) a
    consumer truly needs contiguous data.

    ``row_indices is None`` means "all rows in order" — the full-scan
    case, where even materialization is the identity and the base table
    is shared, not copied.
    """

    table: Table
    row_indices: Optional[np.ndarray]
    block_id_column: Optional[np.ndarray]
    access: AccessStats

    @property
    def num_rows(self) -> int:
        if self.row_indices is None:
            return self.table.num_rows
        return len(self.row_indices)


def full_selection(table: Table) -> ScanSelection:
    """Select every row (the exact-query access path)."""
    stats = AccessStats(
        rows_scanned=table.num_rows,
        blocks_scanned=table.num_blocks,
        rows_returned=table.num_rows,
    )
    return ScanSelection(table, None, None, stats)


def row_sample_selection(table: Table, row_indices: np.ndarray) -> ScanSelection:
    """Select specific rows.

    A row-level sampler must still *touch* every block that holds at least
    one selected row; with uniform sampling at any non-trivial rate that is
    nearly all blocks — the inefficiency the paper attributes to row-level
    sampling on block-oriented stores.
    """
    row_indices = np.asarray(row_indices, dtype=np.int64)
    touched_blocks = len(np.unique(table.block_ids_of_rows(row_indices))) if len(row_indices) else 0
    stats = AccessStats(
        rows_scanned=touched_blocks * table.block_size,
        blocks_scanned=touched_blocks,
        rows_returned=len(row_indices),
    )
    return ScanSelection(table, row_indices, None, stats)


def block_sample_selection(table: Table, block_ids: Sequence[int]) -> ScanSelection:
    """Select whole blocks; non-sampled blocks are skipped entirely.

    The selection carries a :data:`BLOCK_ID_COLUMN` vector recording each
    selected row's source block, which block-aware estimators require.
    """
    block_ids = sorted(set(int(b) for b in block_ids))
    pieces: List[np.ndarray] = []
    id_pieces: List[np.ndarray] = []
    rows = 0
    for bid in block_ids:
        start, stop = table.block_bounds(bid)
        pieces.append(np.arange(start, stop, dtype=np.int64))
        id_pieces.append(np.full(stop - start, bid, dtype=np.int64))
        rows += stop - start
    indices = np.concatenate(pieces) if pieces else np.array([], dtype=np.int64)
    ids = (
        np.concatenate(id_pieces) if id_pieces else np.array([], dtype=np.int64)
    )
    stats = AccessStats(
        rows_scanned=rows,
        blocks_scanned=len(block_ids),
        rows_returned=rows,
    )
    return ScanSelection(table, indices, ids, stats)


def materialize_selection(selection: ScanSelection) -> Table:
    """Copy a selection out into a contiguous Table.

    Full-scan selections return the base table itself (zero-copy), which
    is exactly what :func:`full_scan` has always done.
    """
    if selection.row_indices is None:
        result = selection.table
    else:
        result = selection.table.take(selection.row_indices)
    if selection.block_id_column is not None:
        result = result.with_column(BLOCK_ID_COLUMN, selection.block_id_column)
    return result


def full_scan(table: Table) -> Tuple[Table, AccessStats]:
    """Read every block (the exact-query access path)."""
    selection = full_selection(table)
    return materialize_selection(selection), selection.access


def row_sample_scan(
    table: Table, row_indices: np.ndarray
) -> Tuple[Table, AccessStats]:
    """Materialize specific rows (see :func:`row_sample_selection`)."""
    selection = row_sample_selection(table, row_indices)
    return materialize_selection(selection), selection.access


def block_sample_scan(
    table: Table, block_ids: Sequence[int]
) -> Tuple[Table, AccessStats]:
    """Materialize whole blocks (see :func:`block_sample_selection`).

    The result carries a :data:`BLOCK_ID_COLUMN` column recording each
    row's source block, which block-aware estimators require.
    """
    selection = block_sample_selection(table, block_ids)
    return materialize_selection(selection), selection.access


def iter_blocks(table: Table) -> Iterator[Tuple[int, Table]]:
    """Yield ``(block_id, block_table)`` pairs."""
    for bid in range(table.num_blocks):
        yield bid, table.block(bid)


def iter_morsels(table: Table) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(block_id, start_row, stop_row)`` morsels, in block order.

    Morsels describe block-granular row ranges without materializing
    anything — the unit of work for fused per-block pipelines (sharded
    execution checkpoints deadlines between morsels).
    """
    for bid in range(table.num_blocks):
        start, stop = table.block_bounds(bid)
        yield bid, start, stop


def block_row_counts(table: Table) -> np.ndarray:
    """Number of rows in each block (last block may be short)."""
    nb = table.num_blocks
    if nb == 0:
        return np.array([], dtype=np.int64)
    counts = np.full(nb, table.block_size, dtype=np.int64)
    counts[-1] = table.num_rows - (nb - 1) * table.block_size
    return counts


def assign_block_column(table: Table, name: str = "__block_id") -> Table:
    """Append a column holding each row's block id.

    Pilot-style AQP planners group by this column to measure block-level
    statistics (per-block sums and sizes) from a block sample.
    """
    ids = np.arange(table.num_rows, dtype=np.int64) // table.block_size
    return table.with_column(name, ids)


def clustered_layout(table: Table, order_by: str) -> Table:
    """Re-lay the table sorted by a column.

    Clustering makes blocks *homogeneous*, the regime where block sampling
    has poor statistical efficiency (Lemma-4.1-style analysis): every block
    looks alike internally but blocks differ from each other.
    """
    order = np.argsort(table[order_by], kind="stable")
    return table.take(order)


def shuffled_layout(table: Table, seed: int = 0) -> Table:
    """Re-lay the table in random row order.

    Shuffling makes blocks statistically *heterogeneous* (each block is a
    random sample of the table), the regime where block sampling matches
    row-level sampling's statistical efficiency while being far cheaper.
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(table.num_rows)
    return table.take(order)
