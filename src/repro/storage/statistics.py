"""Per-column and per-table statistics.

These mirror what any DBMS catalog maintains (row counts, min/max, distinct
value estimates, equi-depth histograms) and feed three consumers:

* the optimizer's selectivity estimation,
* the cost model's cardinality estimates, and
* the AQP advisor's feasibility checks (e.g. "is this table large enough
  that sampling pays off?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.table import Table


@dataclass
class ColumnStats:
    """Summary statistics for a single column."""

    name: str
    num_rows: int
    num_distinct: int
    null_count: int = 0
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    mean: Optional[float] = None
    variance: Optional[float] = None
    is_numeric: bool = True
    #: Equi-depth bucket boundaries (len = buckets+1) for numeric columns.
    histogram_bounds: Optional[np.ndarray] = None
    #: Most common values and their frequencies (for skew detection).
    mcv_values: List = field(default_factory=list)
    mcv_counts: List[int] = field(default_factory=list)

    @property
    def skew_ratio(self) -> float:
        """Ratio of most-common-value frequency to the uniform frequency.

        Values far above 1 indicate heavy skew, which makes uniform samples
        unreliable for group-by queries (experiment E2/E3).
        """
        if not self.mcv_counts or self.num_distinct == 0 or self.num_rows == 0:
            return 1.0
        uniform = self.num_rows / self.num_distinct
        return self.mcv_counts[0] / uniform if uniform > 0 else 1.0

    @property
    def coefficient_of_variation(self) -> float:
        """stddev/mean — the quantity that drives required sample sizes."""
        if self.mean is None or self.variance is None or self.mean == 0:
            return float("inf")
        return float(np.sqrt(max(self.variance, 0.0)) / abs(self.mean))


def compute_column_stats(
    name: str, values: np.ndarray, histogram_buckets: int = 32, mcv: int = 8
) -> ColumnStats:
    """Compute :class:`ColumnStats` by scanning a column once."""
    n = len(values)
    uniques, counts = np.unique(values, return_counts=True)
    order = np.argsort(counts)[::-1][:mcv]
    mcv_values = [uniques[i] for i in order]
    mcv_counts = [int(counts[i]) for i in order]
    numeric = values.dtype.kind in ("i", "u", "f", "b")
    stats = ColumnStats(
        name=name,
        num_rows=n,
        num_distinct=len(uniques),
        is_numeric=numeric,
        mcv_values=mcv_values,
        mcv_counts=mcv_counts,
    )
    if numeric and n > 0:
        vals = np.asarray(values, dtype=np.float64)
        stats.min_value = float(np.min(vals))
        stats.max_value = float(np.max(vals))
        stats.mean = float(np.mean(vals))
        stats.variance = float(np.var(vals, ddof=1)) if n > 1 else 0.0
        qs = np.linspace(0.0, 1.0, histogram_buckets + 1)
        stats.histogram_bounds = np.quantile(vals, qs)
    return stats


@dataclass
class TableStats:
    """Statistics for an entire table."""

    name: str
    num_rows: int
    num_blocks: int
    block_size: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def compute_table_stats(
    table: Table, histogram_buckets: int = 32
) -> TableStats:
    stats = TableStats(
        name=table.name,
        num_rows=table.num_rows,
        num_blocks=table.num_blocks,
        block_size=table.block_size,
    )
    for col_name in table.column_names:
        stats.columns[col_name] = compute_column_stats(
            col_name, table[col_name], histogram_buckets=histogram_buckets
        )
    return stats


# ----------------------------------------------------------------------
# Selectivity estimation (catalog-based, used by the optimizer)
# ----------------------------------------------------------------------

def estimate_range_selectivity(
    stats: ColumnStats, low: Optional[float], high: Optional[float]
) -> float:
    """Fraction of rows in ``[low, high]`` using the equi-depth histogram."""
    if stats.histogram_bounds is None or stats.num_rows == 0:
        return 1.0
    bounds = stats.histogram_bounds
    lo = bounds[0] if low is None else low
    hi = bounds[-1] if high is None else high
    if hi < bounds[0] or lo > bounds[-1]:
        return 0.0
    buckets = len(bounds) - 1
    per_bucket = 1.0 / buckets
    total = 0.0
    for b in range(buckets):
        b_lo, b_hi = bounds[b], bounds[b + 1]
        if b_hi < lo or b_lo > hi:
            continue
        width = b_hi - b_lo
        if width <= 0:
            overlap = 1.0 if (lo <= b_lo <= hi) else 0.0
        else:
            overlap = (min(hi, b_hi) - max(lo, b_lo)) / width
            overlap = min(max(overlap, 0.0), 1.0)
        total += per_bucket * overlap
    return min(max(total, 0.0), 1.0)


def estimate_equality_selectivity(stats: ColumnStats, value) -> float:
    """Fraction of rows equal to ``value`` (MCV-aware, else 1/NDV)."""
    if stats.num_rows == 0:
        return 0.0
    for mcv_value, mcv_count in zip(stats.mcv_values, stats.mcv_counts):
        if mcv_value == value:
            return mcv_count / stats.num_rows
    if stats.num_distinct <= 0:
        return 1.0
    return 1.0 / stats.num_distinct


def estimate_join_cardinality(
    left_rows: int, right_rows: int, left_ndv: int, right_ndv: int
) -> float:
    """Classic |R|·|S| / max(ndv_R, ndv_S) equi-join estimate."""
    denom = max(left_ndv, right_ndv, 1)
    return left_rows * right_rows / denom
