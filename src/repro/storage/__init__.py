"""Block storage model, catalog statistics, and the cost model."""

from .blocks import (
    AccessStats,
    BLOCK_ID_COLUMN,
    block_sample_scan,
    clustered_layout,
    full_scan,
    row_sample_scan,
    shuffled_layout,
)
from .cost import CostEstimate, CostParameters, DEFAULT_COST
from .statistics import ColumnStats, TableStats, compute_table_stats
from .synopsis_cache import (
    CacheStats,
    SynopsisCache,
    configure_global_cache,
    get_global_cache,
    set_global_cache,
)

__all__ = [
    "AccessStats",
    "BLOCK_ID_COLUMN",
    "CacheStats",
    "ColumnStats",
    "CostEstimate",
    "CostParameters",
    "DEFAULT_COST",
    "SynopsisCache",
    "TableStats",
    "configure_global_cache",
    "get_global_cache",
    "set_global_cache",
    "block_sample_scan",
    "clustered_layout",
    "compute_table_stats",
    "full_scan",
    "row_sample_scan",
    "shuffled_layout",
]
