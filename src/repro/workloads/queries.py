"""Parameterized query-workload generation.

The drift experiments (E7) need *distributions over queries*: which
columns queries group by, how those preferences shift over time, and how
selective their predicates are. A :class:`WorkloadGenerator` samples
concrete SQL strings and :class:`~repro.offline.blinkdb.QueryTemplate`
descriptors from a column-popularity distribution, and
:func:`drift` produces a shifted copy of that distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..offline.blinkdb import QueryTemplate


@dataclass
class WorkloadSpec:
    """Distribution over query templates for one table."""

    table: str
    #: candidate group-by columns with popularity weights
    column_weights: Dict[str, float]
    #: measure column aggregated by every query
    measure: str = "value"
    #: numeric column used for range predicates
    selector: Optional[str] = "selector"
    #: distribution of predicate selectivities (log-uniform bounds)
    selectivity_range: Tuple[float, float] = (0.01, 0.5)

    def normalized_weights(self) -> Dict[str, float]:
        total = sum(self.column_weights.values()) or 1.0
        return {c: w / total for c, w in self.column_weights.items()}


class WorkloadGenerator:
    """Samples concrete queries/templates from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec, seed: int = 0) -> None:
        self.spec = spec
        self.rng = np.random.default_rng(seed)

    def sample_templates(self, count: int) -> List[QueryTemplate]:
        weights = self.spec.normalized_weights()
        columns = list(weights)
        probs = np.asarray([weights[c] for c in columns])
        picks = self.rng.choice(len(columns), size=count, p=probs)
        out: List[QueryTemplate] = []
        for idx in picks:
            out.append(
                QueryTemplate(
                    table=self.spec.table,
                    columns=(columns[idx],),
                    frequency=1.0,
                )
            )
        return out

    def sample_sql(self, count: int) -> List[str]:
        """Concrete SQL strings (group-by + optional range predicate)."""
        templates = self.sample_templates(count)
        lo, hi = self.spec.selectivity_range
        out: List[str] = []
        for template in templates:
            col = template.columns[0]
            parts = [
                f"SELECT {col}, SUM({self.spec.measure}) AS total, "
                f"COUNT(*) AS cnt FROM {self.spec.table}"
            ]
            if self.spec.selector is not None:
                sel = math.exp(
                    self.rng.uniform(math.log(lo), math.log(hi))
                )
                parts.append(f"WHERE {self.spec.selector} < {sel:.6f}")
            parts.append(f"GROUP BY {col}")
            out.append(" ".join(parts))
        return out


def drift(
    spec: WorkloadSpec, amount: float, seed: int = 0
) -> WorkloadSpec:
    """A drifted copy of ``spec``: popularity mass moves from the current
    favorites toward the least popular columns.

    ``amount`` ∈ [0, 1]: 0 returns the same distribution, 1 fully inverts
    the popularity ranking — the survey's "yesterday's samples answer
    yesterday's queries" scenario, dialed.
    """
    if not (0.0 <= amount <= 1.0):
        raise ValueError("amount must be in [0, 1]")
    weights = spec.normalized_weights()
    inverted_order = sorted(weights, key=lambda c: weights[c])
    original_order = sorted(weights, key=lambda c: -weights[c])
    sorted_mass = sorted(weights.values(), reverse=True)
    drifted: Dict[str, float] = {}
    for rank, mass in enumerate(sorted_mass):
        stay_col = original_order[rank]
        move_col = inverted_order[rank]
        drifted[stay_col] = drifted.get(stay_col, 0.0) + (1.0 - amount) * mass
        drifted[move_col] = drifted.get(move_col, 0.0) + amount * mass
    return WorkloadSpec(
        table=spec.table,
        column_weights=drifted,
        measure=spec.measure,
        selector=spec.selector,
        selectivity_range=spec.selectivity_range,
    )


def template_overlap(
    a: Sequence[QueryTemplate], b: Sequence[QueryTemplate]
) -> float:
    """Jaccard overlap of the (table, columns) sets of two workloads —
    a cheap scalar summary of how much a workload drifted."""
    sa = {(t.table, t.columns) for t in a}
    sb = {(t.table, t.columns) for t in b}
    if not sa and not sb:
        return 1.0
    return len(sa & sb) / len(sa | sb)
