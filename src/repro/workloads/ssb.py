"""Star Schema Benchmark (SSB) lite.

O'Neil et al.'s star schema: one wide fact table (``lineorder``) and four
small dimensions (``date_dim``, ``customer_dim``, ``supplier_dim``,
``part_dim``). The pure-star shape — every join is fact→dimension on a
foreign key — is the sweet spot for join synopses and universe sampling,
which is why the join experiments (E6) run here.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine.database import Database
from ..engine.table import DEFAULT_BLOCK_SIZE

CITIES = [f"CITY_{i:02d}" for i in range(25)]
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
MFGRS = [f"MFGR#{i}" for i in range(1, 6)]
CATEGORIES = [f"MFGR#{i}{j}" for i in range(1, 6) for j in range(1, 6)]


def generate_ssb(
    database: Optional[Database] = None,
    scale: float = 1.0,
    seed: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Database:
    """Populate a database with the SSB-lite star schema.

    ``scale`` 1.0 ≈ 60k lineorder rows; dimension sizes follow the spec's
    ratios (customer 30k→300·scale etc., shrunk proportionally).
    """
    if database is None:
        database = Database()
    rng = np.random.default_rng(seed)

    num_facts = max(int(60_000 * scale), 1000)
    num_dates = 2556  # 7 years of days
    num_customers = max(int(600 * scale), 30)
    num_suppliers = max(int(40 * scale), 10)
    num_parts = max(int(400 * scale), 20)

    years = 1992 + (np.arange(num_dates) // 365)
    database.create_table(
        "date_dim",
        {
            "d_datekey": np.arange(num_dates, dtype=np.int64),
            "d_year": years.astype(np.int64),
            "d_month": ((np.arange(num_dates) // 30) % 12 + 1).astype(np.int64),
            "d_weeknum": ((np.arange(num_dates) // 7) % 53 + 1).astype(np.int64),
        },
        block_size=block_size,
    )
    database.create_table(
        "customer_dim",
        {
            "c_custkey": np.arange(num_customers, dtype=np.int64),
            "c_city": rng.choice(np.asarray(CITIES, dtype=object), num_customers),
            "c_region": rng.choice(np.asarray(REGIONS, dtype=object), num_customers),
        },
        block_size=block_size,
    )
    database.create_table(
        "supplier_dim",
        {
            "s_suppkey": np.arange(num_suppliers, dtype=np.int64),
            "s_city": rng.choice(np.asarray(CITIES, dtype=object), num_suppliers),
            "s_region": rng.choice(np.asarray(REGIONS, dtype=object), num_suppliers),
        },
        block_size=block_size,
    )
    database.create_table(
        "part_dim",
        {
            "p_partkey": np.arange(num_parts, dtype=np.int64),
            "p_mfgr": rng.choice(np.asarray(MFGRS, dtype=object), num_parts),
            "p_category": rng.choice(np.asarray(CATEGORIES, dtype=object), num_parts),
        },
        block_size=block_size,
    )
    quantity = rng.integers(1, 51, num_facts).astype(np.float64)
    price = np.round(rng.lognormal(7.0, 0.8, num_facts), 2)
    database.create_table(
        "lineorder",
        {
            "lo_orderkey": np.arange(num_facts, dtype=np.int64),
            "lo_custkey": rng.integers(0, num_customers, num_facts),
            "lo_suppkey": rng.integers(0, num_suppliers, num_facts),
            "lo_partkey": rng.integers(0, num_parts, num_facts),
            "lo_orderdate": rng.integers(0, num_dates, num_facts),
            "lo_quantity": quantity,
            "lo_extendedprice": price,
            "lo_discount": np.round(rng.uniform(0.0, 0.10, num_facts), 2),
            "lo_revenue": np.round(price * (1.0 - rng.uniform(0.0, 0.10, num_facts)), 2),
        },
        block_size=block_size,
    )
    return database


SSB_LITE_QUERIES: Dict[str, str] = {
    "q1_revenue": (
        "SELECT SUM(lo_extendedprice * lo_discount) AS revenue "
        "FROM lineorder WHERE lo_orderdate < 365 AND "
        "lo_discount BETWEEN 0.01 AND 0.03 AND lo_quantity < 25"
    ),
    "q2_by_year": (
        "SELECT d.d_year AS year, SUM(l.lo_revenue) AS revenue "
        "FROM lineorder l JOIN date_dim d ON l.lo_orderdate = d.d_datekey "
        "GROUP BY d.d_year"
    ),
    "q3_by_region": (
        "SELECT c.c_region AS region, SUM(l.lo_revenue) AS revenue "
        "FROM lineorder l JOIN customer_dim c ON l.lo_custkey = c.c_custkey "
        "GROUP BY c.c_region"
    ),
    "avg_quantity": "SELECT AVG(lo_quantity) AS avg_qty FROM lineorder",
}
