"""Synthetic single-table generators with controlled skew.

Every claim in the survey is conditional on a data regime — measure skew
(outliers), group-size skew (rare groups), predicate selectivity. These
generators expose each regime as a parameter so the benchmarks can sweep
it. All generators return plain column dicts ready for
``Database.create_table``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np


def uniform_table(
    num_rows: int,
    num_groups: int = 10,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Benign baseline: uniform measure, equal-sized groups."""
    rng = np.random.default_rng(seed)
    return {
        "id": np.arange(num_rows, dtype=np.int64),
        "value": rng.uniform(0.0, 100.0, num_rows),
        "group_id": rng.integers(0, num_groups, num_rows),
        "selector": rng.random(num_rows),
    }


def heavy_tailed_table(
    num_rows: int,
    sigma: float = 2.0,
    num_groups: int = 10,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Lognormal measure: ``sigma`` controls tail weight (cv grows
    exponentially in σ²). The regime where uniform sampling of SUM fails
    and outlier indexing / measure-biased sampling win (E4)."""
    rng = np.random.default_rng(seed)
    return {
        "id": np.arange(num_rows, dtype=np.int64),
        "value": rng.lognormal(mean=3.0, sigma=sigma, size=num_rows),
        "group_id": rng.integers(0, num_groups, num_rows),
        "selector": rng.random(num_rows),
    }


def zipf_group_table(
    num_rows: int,
    num_groups: int = 1000,
    zipf_s: float = 1.3,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Group sizes follow a (truncated) Zipf law: a few huge groups, a
    long tail of rare ones. The regime where uniform samples miss groups
    and stratified/distinct samplers earn their keep (E2/E3)."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_groups + 1, dtype=np.float64)
    probs = ranks ** (-zipf_s)
    probs /= probs.sum()
    groups = rng.choice(num_groups, size=num_rows, p=probs)
    return {
        "id": np.arange(num_rows, dtype=np.int64),
        "value": rng.exponential(50.0, num_rows),
        "group_id": groups,
        "selector": rng.random(num_rows),
    }


def selectivity_table(
    num_rows: int,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Uniform ``selector`` column in [0, 1): a predicate
    ``selector < s`` has selectivity exactly ~s, for selectivity sweeps (E2)."""
    rng = np.random.default_rng(seed)
    return {
        "id": np.arange(num_rows, dtype=np.int64),
        "value": rng.gamma(2.0, 10.0, num_rows),
        "selector": rng.random(num_rows),
        "group_id": rng.integers(0, 20, num_rows),
    }


def clustered_values(
    num_rows: int,
    block_size: int = 1024,
    between_std: float = 50.0,
    within_std: float = 1.0,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Values correlated with physical position: each block has its own
    level. The adversarial layout for block sampling (design effect ≈
    block size); contrast with a shuffled layout of the same values."""
    rng = np.random.default_rng(seed)
    num_blocks = (num_rows + block_size - 1) // block_size
    block_levels = rng.normal(100.0, between_std, num_blocks)
    values = np.repeat(block_levels, block_size)[:num_rows]
    values = values + rng.normal(0.0, within_std, num_rows)
    return {
        "id": np.arange(num_rows, dtype=np.int64),
        "value": values,
        "group_id": np.zeros(num_rows, dtype=np.int64),
        "selector": rng.random(num_rows),
    }


def distinct_count_table(
    num_rows: int,
    num_distinct: int,
    skew: float = 0.0,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """A column with a known number of distinct values, optionally with
    Zipf-skewed frequencies, for the COUNT DISTINCT experiments (E5)."""
    rng = np.random.default_rng(seed)
    if skew <= 0:
        ids = rng.integers(0, num_distinct, num_rows)
    else:
        ranks = np.arange(1, num_distinct + 1, dtype=np.float64)
        probs = ranks ** (-skew)
        probs /= probs.sum()
        ids = rng.choice(num_distinct, size=num_rows, p=probs)
    # Guarantee all values appear at least once so the truth equals
    # num_distinct exactly.
    ids[:num_distinct] = np.arange(num_distinct)
    rng.shuffle(ids)
    return {
        "id": np.arange(num_rows, dtype=np.int64),
        "user_id": ids,
        "value": rng.exponential(10.0, num_rows),
    }
