"""TPC-H-lite: a laptop-scale reimplementation of the TPC-H schema.

Generates the seven TPC-H tables with the standard key relationships,
realistic column domains, and the benchmark's fixed dimension vocabulary
(regions, nations, segments, priorities). ``scale`` 1.0 ≈ 60k lineitem
rows here (three orders of magnitude below real SF1 so everything runs in
seconds); all ratios between table sizes match the spec:
orders = 15k·scale, lineitem ≈ 4·orders, customer = 1.5k·scale, part =
2k·scale, supplier = 100·scale.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine.database import Database
from ..engine.table import DEFAULT_BLOCK_SIZE

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUS = ["F", "O"]
BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
TYPES = [
    f"{a} {b} {c}"
    for a in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for b in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for c in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]

#: Dates are stored as integer day offsets from 1992-01-01; the TPC-H
#: order window spans 1992-01-01 .. 1998-08-02 (about 2406 days).
DATE_LO, DATE_HI = 0, 2406


def generate_tpch(
    database: Optional[Database] = None,
    scale: float = 1.0,
    seed: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Database:
    """Populate (or create) a database with the TPC-H-lite tables."""
    if database is None:
        database = Database()
    rng = np.random.default_rng(seed)

    num_orders = max(int(15_000 * scale), 100)
    num_customers = max(int(1_500 * scale), 50)
    num_parts = max(int(2_000 * scale), 50)
    num_suppliers = max(int(100 * scale), 10)

    # region / nation ---------------------------------------------------
    database.create_table(
        "region",
        {
            "r_regionkey": np.arange(len(REGIONS), dtype=np.int64),
            "r_name": np.asarray(REGIONS, dtype=object),
        },
        block_size=block_size,
    )
    database.create_table(
        "nation",
        {
            "n_nationkey": np.arange(len(NATIONS), dtype=np.int64),
            "n_name": np.asarray([n for n, _ in NATIONS], dtype=object),
            "n_regionkey": np.asarray([r for _, r in NATIONS], dtype=np.int64),
        },
        block_size=block_size,
    )

    # supplier ----------------------------------------------------------
    database.create_table(
        "supplier",
        {
            "s_suppkey": np.arange(num_suppliers, dtype=np.int64),
            "s_nationkey": rng.integers(0, len(NATIONS), num_suppliers),
            "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, num_suppliers), 2),
        },
        block_size=block_size,
    )

    # part ----------------------------------------------------------------
    database.create_table(
        "part",
        {
            "p_partkey": np.arange(num_parts, dtype=np.int64),
            "p_brand": rng.choice(np.asarray(BRANDS, dtype=object), num_parts),
            "p_type": rng.choice(np.asarray(TYPES, dtype=object), num_parts),
            "p_size": rng.integers(1, 51, num_parts),
            "p_retailprice": np.round(900.0 + rng.uniform(0, 1200, num_parts), 2),
        },
        block_size=block_size,
    )

    # customer ------------------------------------------------------------
    database.create_table(
        "customer",
        {
            "c_custkey": np.arange(num_customers, dtype=np.int64),
            "c_nationkey": rng.integers(0, len(NATIONS), num_customers),
            "c_mktsegment": rng.choice(np.asarray(SEGMENTS, dtype=object), num_customers),
            "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, num_customers), 2),
        },
        block_size=block_size,
    )

    # orders ----------------------------------------------------------------
    o_orderdate = rng.integers(DATE_LO, DATE_HI - 150, num_orders)
    database.create_table(
        "orders",
        {
            "o_orderkey": np.arange(num_orders, dtype=np.int64),
            "o_custkey": rng.integers(0, num_customers, num_orders),
            "o_orderdate": o_orderdate,
            "o_orderpriority": rng.choice(np.asarray(PRIORITIES, dtype=object), num_orders),
            "o_totalprice": np.round(rng.lognormal(10.0, 0.6, num_orders), 2),
        },
        block_size=block_size,
    )

    # lineitem ----------------------------------------------------------------
    lines_per_order = rng.integers(1, 8, num_orders)
    l_orderkey = np.repeat(np.arange(num_orders, dtype=np.int64), lines_per_order)
    n_lines = len(l_orderkey)
    order_dates = o_orderdate[l_orderkey]
    l_shipdate = order_dates + rng.integers(1, 122, n_lines)
    l_quantity = rng.integers(1, 51, n_lines).astype(np.float64)
    l_partkey = rng.integers(0, num_parts, n_lines)
    retail = database.table("part")["p_retailprice"][l_partkey]
    l_extendedprice = np.round(l_quantity * retail / 10.0, 2)
    database.create_table(
        "lineitem",
        {
            "l_orderkey": l_orderkey,
            "l_partkey": l_partkey,
            "l_suppkey": rng.integers(0, num_suppliers, n_lines),
            "l_linenumber": np.concatenate(
                [np.arange(1, c + 1) for c in lines_per_order]
            ).astype(np.int64),
            "l_quantity": l_quantity,
            "l_extendedprice": l_extendedprice,
            "l_discount": np.round(rng.uniform(0.0, 0.10, n_lines), 2),
            "l_tax": np.round(rng.uniform(0.0, 0.08, n_lines), 2),
            "l_returnflag": rng.choice(np.asarray(RETURN_FLAGS, dtype=object), n_lines),
            "l_linestatus": rng.choice(np.asarray(LINE_STATUS, dtype=object), n_lines),
            "l_shipdate": l_shipdate,
            "l_shipmode": rng.choice(np.asarray(SHIP_MODES, dtype=object), n_lines),
        },
        block_size=block_size,
    )
    return database


#: A small library of TPC-H-flavored aggregate queries (subset the engine
#: and the AQP planners both support), used across benchmarks and tests.
TPCH_LITE_QUERIES: Dict[str, str] = {
    # Q1-flavoured pricing summary (no group to keep it scalar-friendly)
    "q1_pricing": (
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
        "SUM(l_extendedprice) AS sum_price, AVG(l_quantity) AS avg_qty, "
        "COUNT(*) AS count_order FROM lineitem WHERE l_shipdate <= 2300 "
        "GROUP BY l_returnflag, l_linestatus"
    ),
    # Q6-flavoured forecast revenue change
    "q6_forecast": (
        "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
        "WHERE l_shipdate BETWEEN 365 AND 730 AND "
        "l_discount BETWEEN 0.02 AND 0.06 AND l_quantity < 24"
    ),
    # Q5-flavoured local supplier volume (join chain)
    "q5_volume": (
        "SELECT n.n_name AS nation, SUM(l.l_extendedprice) AS revenue "
        "FROM lineitem l JOIN supplier s ON l.l_suppkey = s.s_suppkey "
        "JOIN nation n ON s.s_nationkey = n.n_nationkey "
        "GROUP BY n.n_name"
    ),
    # Q12-flavoured shipmode summary
    "q12_shipmode": (
        "SELECT l_shipmode, COUNT(*) AS line_count, "
        "SUM(l_extendedprice) AS total FROM lineitem "
        "WHERE l_shipdate > 1200 GROUP BY l_shipmode"
    ),
    # simple scalar average
    "avg_price": "SELECT AVG(l_extendedprice) AS avg_price FROM lineitem",
    # order-side join
    "priority_revenue": (
        "SELECT o.o_orderpriority AS priority, SUM(l.l_extendedprice) AS rev "
        "FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey "
        "GROUP BY o.o_orderpriority"
    ),
}
