"""Benchmark data and query-workload generators."""

from .queries import WorkloadGenerator, WorkloadSpec, drift, template_overlap
from .skew import (
    clustered_values,
    distinct_count_table,
    heavy_tailed_table,
    selectivity_table,
    uniform_table,
    zipf_group_table,
)
from .ssb import SSB_LITE_QUERIES, generate_ssb
from .tpch import TPCH_LITE_QUERIES, generate_tpch

__all__ = [
    "SSB_LITE_QUERIES",
    "TPCH_LITE_QUERIES",
    "WorkloadGenerator",
    "WorkloadSpec",
    "clustered_values",
    "distinct_count_table",
    "drift",
    "generate_ssb",
    "generate_tpch",
    "heavy_tailed_table",
    "selectivity_table",
    "template_overlap",
    "uniform_table",
    "zipf_group_table",
]
