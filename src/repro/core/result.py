"""Query result objects.

Two result types are returned to users:

* :class:`QueryResult` — an exact result: just a table plus execution
  accounting.
* :class:`ApproximateResult` — estimates with per-cell confidence
  intervals, the technique that produced them, and enough diagnostics to
  audit the guarantee (fraction of data read, estimated speedup, planner
  decisions).

Both (plus :class:`~repro.obs.explain.ExplainResult`, which wraps one of
them) expose the **common result envelope**: ``value()`` / ``values()``,
``ci()``, ``provenance``, ``stats``, and ``to_dict()`` with the exact
key set :data:`ENVELOPE_KEYS` — so tooling (the CLI, the workload tuner,
dashboards) can consume any front door's answer without type-switching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine.executor import ExecutionStats
from ..engine.table import Table
from .errorspec import ErrorSpec

#: the exact top-level key set of every result's ``to_dict()`` envelope
ENVELOPE_KEYS: Tuple[str, ...] = (
    "kind",
    "technique",
    "values",
    "ci",
    "provenance",
    "stats",
)


class ResultEnvelope:
    """Shared surface of every result type (see module docstring).

    Implementors provide ``table``, ``stats``, ``provenance``, and
    optionally ``ci_low``/``ci_high``/``technique``; the envelope
    methods are derived uniformly from those.
    """

    # -- values --------------------------------------------------------
    def values(self) -> Dict[str, List[object]]:
        """All output columns as plain Python lists, keyed by alias."""
        table = self.table
        return {
            name: np.asarray(table[name]).tolist()
            for name in table.column_names
        }

    def value(self, alias: Optional[str] = None, row: int = 0) -> float:
        """One output cell as a float; bare ``value()`` needs one row."""
        table = self.table
        if alias is None:
            return self.scalar()
        return float(table[alias][row])

    # -- confidence intervals ------------------------------------------
    def ci(
        self, alias: Optional[str] = None, row: Optional[int] = None
    ) -> object:
        """CI bounds, uniformly across exact and approximate results.

        ``ci()`` returns ``{alias: [(low, high), ...]}`` for every
        aggregate that carries intervals (empty for exact results, whose
        answers need none); ``ci(alias, row)`` returns one ``(low,
        high)`` tuple — for exact results the zero-width interval at the
        value, the honest reading of "no sampling error".
        """
        ci_low = getattr(self, "ci_low", None) or {}
        ci_high = getattr(self, "ci_high", None) or {}
        if alias is None:
            return {
                name: list(
                    zip(
                        np.asarray(ci_low[name], dtype=np.float64).tolist(),
                        np.asarray(ci_high[name], dtype=np.float64).tolist(),
                    )
                )
                for name in ci_low
            }
        r = 0 if row is None else row
        if alias in ci_low:
            return (float(ci_low[alias][r]), float(ci_high[alias][r]))
        v = float(self.table[alias][r])
        return (v, v)

    # -- envelope ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The common envelope: exactly :data:`ENVELOPE_KEYS`."""
        return {
            "kind": (
                "approximate"
                if getattr(self, "is_approximate", False)
                else "exact"
            ),
            "technique": getattr(self, "technique", "exact"),
            "values": self.values(),
            "ci": {
                name: [list(pair) for pair in pairs]
                for name, pairs in self.ci().items()
            },
            "provenance": list(self.provenance),
            "stats": self.stats.to_dict(),
        }


@dataclass
class QueryResult(ResultEnvelope):
    """Exact query output."""

    table: Table
    stats: ExecutionStats
    plan_text: str = ""
    #: degradation-ladder steps taken to produce this answer (see
    #: repro.resilience.ladder); empty when served on the direct path
    provenance: List[Dict[str, object]] = field(default_factory=list)

    @property
    def is_approximate(self) -> bool:
        return False

    @property
    def is_degraded(self) -> bool:
        """True when the degradation ladder fell past the requested rung."""
        return any(step.get("degraded") for step in self.provenance)

    def column(self, name: str) -> np.ndarray:
        return self.table[name]

    def scalar(self) -> float:
        """The single value of a 1x1 result."""
        if self.table.num_rows != 1 or self.table.num_columns != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{self.table.num_rows}x{self.table.num_columns}"
            )
        return float(self.table[self.table.column_names[0]][0])

    def to_pylist(self) -> List[Dict[str, object]]:
        return self.table.to_pylist()


@dataclass
class CellEstimate:
    """One estimated aggregate cell (one aggregate in one group)."""

    value: float
    ci_low: float
    ci_high: float

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    @property
    def relative_half_width(self) -> float:
        if self.value == 0:
            return float("inf")
        return self.half_width / abs(self.value)

    def covers(self, truth: float) -> bool:
        """Does the reported interval contain the exact answer?"""
        return self.ci_low <= truth <= self.ci_high


@dataclass
class ApproximateResult(ResultEnvelope):
    """Approximate query output with confidence intervals.

    ``table`` holds the estimated values under the user's output aliases.
    ``ci_low``/``ci_high`` map each aggregate output alias to arrays
    aligned with the table's rows.
    """

    table: Table
    stats: ExecutionStats
    spec: ErrorSpec
    technique: str
    ci_low: Dict[str, np.ndarray] = field(default_factory=dict)
    ci_high: Dict[str, np.ndarray] = field(default_factory=dict)
    #: fraction of available blocks actually read
    fraction_scanned: float = 0.0
    #: simulated cost of this query vs. the exact plan (work units)
    approx_cost: float = 0.0
    exact_cost: float = 0.0
    #: free-form planner diagnostics (sampling rates, pilot info, ...)
    diagnostics: Dict[str, object] = field(default_factory=dict)
    plan_text: str = ""
    #: degradation-ladder steps taken to produce this answer (see
    #: repro.resilience.ladder); empty when served on the direct path
    provenance: List[Dict[str, object]] = field(default_factory=list)

    @property
    def is_approximate(self) -> bool:
        return True

    @property
    def is_degraded(self) -> bool:
        """True when the degradation ladder fell past the requested rung."""
        return any(step.get("degraded") for step in self.provenance)

    @property
    def speedup(self) -> float:
        """Estimated speedup over exact execution (work-model ratio)."""
        if self.approx_cost <= 0:
            return float("inf")
        return self.exact_cost / self.approx_cost

    def column(self, name: str) -> np.ndarray:
        return self.table[name]

    def scalar(self) -> float:
        if self.table.num_rows != 1:
            raise ValueError("scalar() needs a single-row result")
        aggs = [c for c in self.table.column_names if c in self.ci_low]
        name = aggs[0] if aggs else self.table.column_names[0]
        return float(self.table[name][0])

    def estimate(self, alias: str, row: int = 0) -> CellEstimate:
        """The estimate + CI for one output cell."""
        value = float(self.table[alias][row])
        lo = float(self.ci_low[alias][row]) if alias in self.ci_low else value
        hi = float(self.ci_high[alias][row]) if alias in self.ci_high else value
        return CellEstimate(value=value, ci_low=lo, ci_high=hi)

    def iter_estimates(self) -> List[Tuple[str, int, CellEstimate]]:
        """All (alias, row, estimate) cells that carry CIs."""
        out = []
        for alias in self.ci_low:
            for row in range(self.table.num_rows):
                out.append((alias, row, self.estimate(alias, row)))
        return out

    def max_relative_half_width(self) -> float:
        """Worst-case reported relative CI half-width across all cells."""
        worst = 0.0
        for _, _, cell in self.iter_estimates():
            worst = max(worst, cell.relative_half_width)
        return worst

    def mean_relative_half_width(self) -> float:
        """Average reported relative CI half-width (audit diagnostics)."""
        widths = [
            cell.relative_half_width
            for _, _, cell in self.iter_estimates()
            if math.isfinite(cell.relative_half_width)
        ]
        if not widths:
            return math.inf
        return sum(widths) / len(widths)

    def to_pylist(self) -> List[Dict[str, object]]:
        return self.table.to_pylist()

    def summary(self) -> str:
        """Human-readable one-paragraph description of the run."""
        lines = [
            f"technique={self.technique}  spec={self.spec}  "
            f"scanned={self.fraction_scanned * 100:.2f}% of blocks  "
            f"speedup~{self.speedup:.1f}x"
        ]
        for alias, row, cell in self.iter_estimates()[:10]:
            lines.append(
                f"  {alias}[{row}] = {cell.value:.4g} "
                f"[{cell.ci_low:.4g}, {cell.ci_high:.4g}]"
            )
        return "\n".join(lines)
