"""The unified per-query options object shared by every ``sql()`` front door.

The system grew five query entry points — :meth:`AQPEngine.sql`,
:meth:`Database.sql`, :meth:`ResilientEngine.sql`,
:meth:`ScatterGatherExecutor.sql`, and :meth:`ServingFrontend.submit` —
each with its own drifting keyword list. :class:`QueryOptions` collapses
them onto one dataclass: every entry point accepts ``options=`` carrying
the same fields, so a query's *intent* (seed, error contract, technique,
deadline, tenant, ...) has exactly one spelling no matter which door it
walks through. That uniformity is what makes workload fingerprints
comparable across front doors — the :mod:`repro.tuner` reads the same
object everywhere.

Back-compat: the old per-entry keywords still work as ``**kwargs`` shims
(``db.sql(q, seed=7)``), but they emit :class:`DeprecationWarning` and
will eventually be removed; *unknown* keywords raise :class:`TypeError`
at the call site (not deep inside a worker thread), closing the old
serving-frontend hole where a typo'd kwarg only surfaced as a late
ticket exception.

Fields an entry point cannot honor are accepted but inert (documented
per entry point) — passing ``entry_rung`` to the exact
:meth:`Database.sql` path is not an error, the same way passing a
``deadline`` to a query that finishes early is not.
"""

from __future__ import annotations

import contextlib
import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from .errorspec import ErrorSpec

__all__ = [
    "QueryOptions",
    "QUERY_OPTION_FIELDS",
    "resolve_options",
    "maybe_trace",
]


@dataclass(frozen=True)
class QueryOptions:
    """Everything a caller may ask of one query, in one object.

    Parameters
    ----------
    seed:
        RNG seed for any sampling this query performs (reproducibility).
    spec:
        Error contract (:class:`~repro.core.errorspec.ErrorSpec`);
        overrides / replaces an ``ERROR WITHIN`` SQL clause.
    technique:
        Force one technique (``"exact"``, ``"pilot"``, ``"quickr"``,
        ``"offline_sample"``) instead of letting the advisor choose. The
        scatter-gather executor additionally understands ``"ola"`` and
        ``"sample"`` (its per-shard modes).
    pilot_rate:
        Stage-1 sampling rate for pilot-style online planners.
    deadline / budget:
        Cooperative :class:`~repro.resilience.deadline.Deadline` /
        :class:`~repro.resilience.deadline.ResourceBudget` bounding the
        query.
    entry_rung:
        Start the degradation ladder below ``requested`` (overload
        shedding / operator override); inert on entry points without a
        ladder.
    tenant / priority:
        Multi-tenant attribution and admission-queue class. Outside the
        serving frontend these only label spans/metrics/fingerprints.
    trace:
        When true and no ambient tracer is active, run the query under a
        fresh :class:`~repro.obs.trace.Tracer` (reachable afterwards via
        :func:`maybe_trace`'s yielded handle).
    """

    seed: Optional[int] = None
    spec: Optional[ErrorSpec] = None
    technique: Optional[str] = None
    pilot_rate: float = 0.01
    deadline: Optional[object] = None
    budget: Optional[object] = None
    entry_rung: Optional[str] = None
    tenant: str = "default"
    priority: str = "interactive"
    trace: bool = False

    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "QueryOptions":
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ish view (spec flattened; deadline/budget by repr)."""
        return {
            "seed": self.seed,
            "spec": (
                {
                    "relative_error": self.spec.relative_error,
                    "confidence": self.spec.confidence,
                }
                if self.spec is not None
                else None
            ),
            "technique": self.technique,
            "pilot_rate": self.pilot_rate,
            "deadline": repr(self.deadline) if self.deadline else None,
            "budget": repr(self.budget) if self.budget else None,
            "entry_rung": self.entry_rung,
            "tenant": self.tenant,
            "priority": self.priority,
            "trace": self.trace,
        }


#: the canonical field list every ``sql()`` entry point accepts
QUERY_OPTION_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(QueryOptions)
)


def resolve_options(
    options: Optional[QueryOptions] = None,
    kwargs: Optional[Mapping[str, Any]] = None,
    entry: str = "sql()",
    stacklevel: int = 3,
) -> QueryOptions:
    """Merge an ``options=`` object with legacy keyword arguments.

    * unknown keywords raise :class:`TypeError` immediately (admission
      time, caller thread — never inside a worker);
    * known legacy keywords emit one :class:`DeprecationWarning` naming
      them, then override the corresponding ``options`` fields;
    * with neither, the defaults apply.
    """
    if options is not None and not isinstance(options, QueryOptions):
        raise TypeError(
            f"{entry}: options must be a QueryOptions, "
            f"got {type(options).__name__}"
        )
    kwargs = dict(kwargs or {})
    if not kwargs:
        return options if options is not None else QueryOptions()
    unknown = sorted(set(kwargs) - set(QUERY_OPTION_FIELDS))
    if unknown:
        raise TypeError(
            f"{entry} got unexpected query option(s) {unknown}; "
            f"valid QueryOptions fields: {list(QUERY_OPTION_FIELDS)}"
        )
    warnings.warn(
        f"passing {sorted(kwargs)} as keyword argument(s) to {entry} is "
        "deprecated; pass options=QueryOptions(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    base = options if options is not None else QueryOptions()
    return dataclasses.replace(base, **kwargs)


@contextlib.contextmanager
def maybe_trace(options: QueryOptions) -> Iterator[Optional[object]]:
    """Honor ``options.trace``: ensure a tracer is active for the body.

    Yields the tracer that will record the query's spans — the ambient
    one if tracing is already on, a fresh one if ``trace=True`` turned
    it on for this query, or ``None`` when tracing stays off.
    """
    from ..obs.trace import Tracer, current_tracer, trace_scope

    ambient = current_tracer()
    if not options.trace or ambient is not None:
        yield ambient
        return
    tracer = Tracer()
    with trace_scope(tracer):
        yield tracer
