"""The AQP engine facade.

:class:`AQPEngine` ties the pieces together: it parses and binds SQL,
routes exact queries straight to the executor, and hands queries that
carry an error specification to the :mod:`~repro.core.advisor`, which
chooses among the approximation techniques registered with the database.

Typical use::

    engine = AQPEngine(db)
    exact = engine.sql("SELECT SUM(price) FROM sales")
    approx = engine.sql(
        "SELECT SUM(price) FROM sales ERROR WITHIN 5% CONFIDENCE 95%"
    )
"""

from __future__ import annotations

from typing import Optional

from ..engine.database import Database
from ..engine.optimizer import optimize_plan
from ..sql.binder import BoundQuery, bind_sql
from .errorspec import ErrorSpec
from .exceptions import UnsupportedQueryError
from .options import QueryOptions, maybe_trace, resolve_options
from .result import ApproximateResult, QueryResult


class AQPEngine:
    """Session object wrapping a :class:`~repro.engine.database.Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # ------------------------------------------------------------------
    def sql(self, query: str, options: Optional[QueryOptions] = None, **kwargs):
        """Run a SQL string, exactly or approximately.

        Parameters
        ----------
        query:
            SQL text; may end with ``ERROR WITHIN e% CONFIDENCE c%``.
        options:
            A :class:`~repro.core.options.QueryOptions`. This entry
            point honors ``seed``, ``spec``, ``technique``,
            ``pilot_rate``, ``deadline``, ``budget``, ``tenant`` (span
            label only), and ``trace``; ``entry_rung`` is inert (no
            ladder here — use
            :class:`~repro.resilience.ladder.ResilientEngine` for
            graceful degradation). A blown deadline raises
            ``DeadlineExceeded``.
        **kwargs:
            Legacy per-field keywords (``seed=...``, ``spec=...``);
            deprecated shims for the same fields.
        """
        from ..obs.metrics import get_metrics
        from ..obs.trace import span
        from ..resilience.deadline import deadline_scope
        from ..tuner.workload import observe_query

        options = resolve_options(options, kwargs, entry="AQPEngine.sql()")
        seed, spec, technique = options.seed, options.spec, options.technique
        with maybe_trace(options):
            with span("query", engine="aqp", sql=query.strip()[:200]) as qsp:
                if options.tenant != "default":
                    qsp.set(tenant=options.tenant)
                with deadline_scope(options.deadline, options.budget):
                    bound = bind_sql(query, self.database)
                    if spec is None and bound.error_spec is not None:
                        spec = ErrorSpec(
                            relative_error=bound.error_spec.relative_error,
                            confidence=bound.error_spec.confidence,
                        )
                    if spec is None and technique in (None, "exact"):
                        result = self.execute_exact(bound, seed=seed)
                    elif spec is None:
                        raise UnsupportedQueryError(
                            "an error specification is required for "
                            "approximate execution"
                        )
                    else:
                        from .advisor import Advisor

                        advisor = Advisor(self.database)
                        result = advisor.run(
                            bound,
                            spec,
                            seed=seed,
                            force_technique=technique,
                            pilot_rate=options.pilot_rate,
                        )
                served = getattr(result, "technique", "exact")
                qsp.set(technique=served, stats=result.stats.to_dict())
                get_metrics().inc(
                    "queries_total", engine="aqp", technique=served
                )
                observe_query(bound, options.replace(spec=spec), result)
                return result

    # ------------------------------------------------------------------
    def execute_exact(
        self, bound: BoundQuery, seed: Optional[int] = None
    ) -> QueryResult:
        plan = optimize_plan(bound.plan, self.database)
        table, stats = self.database.execute(plan, seed=seed, optimize=False)
        return QueryResult(table=table, stats=stats, plan_text=plan.explain())
