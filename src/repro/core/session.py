"""The AQP engine facade.

:class:`AQPEngine` ties the pieces together: it parses and binds SQL,
routes exact queries straight to the executor, and hands queries that
carry an error specification to the :mod:`~repro.core.advisor`, which
chooses among the approximation techniques registered with the database.

Typical use::

    engine = AQPEngine(db)
    exact = engine.sql("SELECT SUM(price) FROM sales")
    approx = engine.sql(
        "SELECT SUM(price) FROM sales ERROR WITHIN 5% CONFIDENCE 95%"
    )
"""

from __future__ import annotations

from typing import Optional

from ..engine.database import Database
from ..engine.optimizer import optimize_plan
from ..sql.binder import BoundQuery, bind_sql
from .errorspec import ErrorSpec
from .exceptions import UnsupportedQueryError
from .result import ApproximateResult, QueryResult


class AQPEngine:
    """Session object wrapping a :class:`~repro.engine.database.Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # ------------------------------------------------------------------
    def sql(
        self,
        query: str,
        seed: Optional[int] = None,
        spec: Optional[ErrorSpec] = None,
        technique: Optional[str] = None,
        pilot_rate: float = 0.01,
        deadline=None,
        budget=None,
    ):
        """Run a SQL string, exactly or approximately.

        Parameters
        ----------
        query:
            SQL text; may end with ``ERROR WITHIN e% CONFIDENCE c%``.
        seed:
            RNG seed for any sampling (reproducible runs).
        spec:
            Error specification overriding/replacing the SQL clause.
        technique:
            Force a specific technique (``"exact"``, ``"pilot"``,
            ``"quickr"``, ``"offline_sample"``, ``"sketch"``) instead of
            letting the advisor choose.
        pilot_rate:
            Sampling rate for pilot (stage-1) queries of online planners.
        deadline / budget:
            Optional :class:`~repro.resilience.deadline.Deadline` /
            :class:`~repro.resilience.deadline.ResourceBudget` bounding
            this query cooperatively. A blown deadline raises
            ``DeadlineExceeded``; for graceful degradation instead, use
            :class:`~repro.resilience.ladder.ResilientEngine`.
        """
        from ..obs.metrics import get_metrics
        from ..obs.trace import span
        from ..resilience.deadline import deadline_scope

        with span("query", engine="aqp", sql=query.strip()[:200]) as qsp:
            with deadline_scope(deadline, budget):
                bound = bind_sql(query, self.database)
                if spec is None and bound.error_spec is not None:
                    spec = ErrorSpec(
                        relative_error=bound.error_spec.relative_error,
                        confidence=bound.error_spec.confidence,
                    )
                if spec is None and technique in (None, "exact"):
                    result = self.execute_exact(bound, seed=seed)
                elif spec is None:
                    raise UnsupportedQueryError(
                        "an error specification is required for approximate "
                        "execution"
                    )
                else:
                    from .advisor import Advisor

                    advisor = Advisor(self.database)
                    result = advisor.run(
                        bound,
                        spec,
                        seed=seed,
                        force_technique=technique,
                        pilot_rate=pilot_rate,
                    )
            served = getattr(result, "technique", "exact")
            qsp.set(technique=served, stats=result.stats.to_dict())
            get_metrics().inc(
                "queries_total", engine="aqp", technique=served
            )
            return result

    # ------------------------------------------------------------------
    def execute_exact(
        self, bound: BoundQuery, seed: Optional[int] = None
    ) -> QueryResult:
        plan = optimize_plan(bound.plan, self.database)
        table, stats = self.database.execute(plan, seed=seed, optimize=False)
        return QueryResult(table=table, stats=stats, plan_text=plan.explain())
