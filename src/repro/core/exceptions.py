"""Exception hierarchy for the AQP toolkit.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses separate the three layers users interact with:
schema/data problems, SQL front-end problems, and approximation planning
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """Malformed tables or references to missing columns/tables."""


class SQLError(ReproError):
    """Problems in the SQL front-end (lexing, parsing, binding)."""


class SQLSyntaxError(SQLError):
    """The query text could not be parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        #: Character offset into the query string, or -1 if unknown.
        self.position = position


class BindError(SQLError):
    """The query parsed but refers to unknown tables/columns or is
    semantically invalid (e.g. aggregate of an aggregate)."""


class PlanError(ReproError):
    """Logical plan construction or execution failed."""


class UnsupportedQueryError(ReproError):
    """The query is valid SQL but outside the approximable class.

    The AQP layers raise this to signal "fall back to exact execution",
    mirroring the fallback behaviour every system in the survey implements.
    """


class ErrorSpecError(ReproError):
    """Invalid error specification (negative error, confidence not in (0,1), ...)."""


class InfeasiblePlanError(ReproError):
    """No sampling plan can satisfy the error specification at a profitable
    cost; the caller should execute the query exactly."""


class SynopsisError(ReproError):
    """A synopsis (sample, sketch, histogram) was asked something outside
    its contract, e.g. a column it was not built on."""


class MergeError(SynopsisError):
    """Two synopses with incompatible parameters were merged."""
