"""Exception hierarchy for the AQP toolkit.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses separate the three layers users interact with:
schema/data problems, SQL front-end problems, and approximation planning
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """Malformed tables or references to missing columns/tables."""


class SQLError(ReproError):
    """Problems in the SQL front-end (lexing, parsing, binding)."""


class SQLSyntaxError(SQLError):
    """The query text could not be parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        #: Character offset into the query string, or -1 if unknown.
        self.position = position


class BindError(SQLError):
    """The query parsed but refers to unknown tables/columns or is
    semantically invalid (e.g. aggregate of an aggregate)."""


class PlanError(ReproError):
    """Logical plan construction or execution failed."""


class UnsupportedQueryError(ReproError):
    """The query is valid SQL but outside the approximable class.

    The AQP layers raise this to signal "fall back to exact execution",
    mirroring the fallback behaviour every system in the survey implements.
    """


class ErrorSpecError(ReproError):
    """Invalid error specification (negative error, confidence not in (0,1), ...)."""


class InfeasiblePlanError(ReproError):
    """No sampling plan can satisfy the error specification at a profitable
    cost; the caller should execute the query exactly."""


class SynopsisError(ReproError):
    """A synopsis (sample, sketch, histogram) was asked something outside
    its contract, e.g. a column it was not built on."""


class MergeError(SynopsisError):
    """Two synopses with incompatible parameters were merged."""


# ----------------------------------------------------------------------
# Resilience layer (see repro.resilience and DESIGN.md §2.10)
# ----------------------------------------------------------------------

class DeadlineExceeded(ReproError):
    """A cooperative deadline checkpoint fired.

    Raised at block/operator/batch boundaries by code that was handed a
    :class:`repro.resilience.deadline.Deadline`, never asynchronously.
    ``site`` names the checkpoint that fired (for provenance records).
    """

    def __init__(self, message: str, site: str = "") -> None:
        super().__init__(message)
        self.site = site


class BudgetExhausted(ReproError):
    """A :class:`repro.resilience.deadline.ResourceBudget` ran out.

    Unlike :class:`DeadlineExceeded` (wall-clock), this is a resource
    contract: rows/blocks touched went past what the caller was willing
    to pay for this query.
    """

    def __init__(self, message: str, resource: str = "") -> None:
        super().__init__(message)
        self.resource = resource


class SynopsisUnavailable(SynopsisError):
    """A required synopsis is missing, mid-rebuild, corrupted, or its
    builder's circuit breaker is open.

    The degradation ladder treats this as "skip to the next rung";
    callers outside the ladder should fall back to exact execution.
    """


class DegradedAnswer(ReproError, UserWarning):
    """Warning category: an answer was served from a degraded rung.

    Doubles as a ReproError subclass so ``except ReproError`` filters and
    ``warnings.filterwarnings`` categories both work. Emitted (via
    ``warnings.warn``) whenever the ladder returns an answer that cannot
    honor the originally requested guarantee — widened error bars, a
    partial online snapshot, or an exact answer with no a-priori bound.
    """


class QueryRefused(ReproError):
    """The typed refusal at the bottom of the degradation ladder.

    Every rung failed (or the deadline left no room to try them); the
    ``provenance`` list records each attempted rung and why it failed,
    so a refusal is still a *useful* terminal answer.
    """

    def __init__(self, message: str, provenance=None) -> None:
        super().__init__(message)
        #: list of provenance-step dicts (see repro.resilience.ladder)
        self.provenance = list(provenance or [])


class QueryRejected(ReproError):
    """The serving front-end declined to *start* a query.

    Unlike :class:`QueryRefused` (every ladder rung was tried and
    failed), a rejection happens before any work: the admission queue is
    full (``reason="overload"``), the tenant's cost budget has no tokens
    (``reason="budget"``), or the query waited in the queue past the
    configured queue deadline (``reason="queue_deadline"``). Rejections
    are cheap by design — shedding at the front door is what keeps the
    queries that *are* admitted inside their deadlines.
    """

    def __init__(
        self, message: str, reason: str = "overload", tenant: str = ""
    ) -> None:
        super().__init__(message)
        #: why admission failed: overload | budget | queue_deadline
        self.reason = reason
        #: the tenant whose query was rejected
        self.tenant = tenant


class InjectedFault(ReproError):
    """An error deliberately raised by the fault-injection harness.

    Only :mod:`repro.resilience.faults` raises this; production code
    paths treat it like any other build/IO failure. Chaos tests assert
    it never escapes the ladder un-translated.
    """

    def __init__(self, message: str, site: str = "") -> None:
        super().__init__(message)
        self.site = site
