"""The No-Silver-Bullet trade-off model.

The paper's core argument is that every AQP technique occupies a different
point on three axes:

* **generality** — what fraction of the query class it can answer,
* **guarantee**  — whether its error is bounded *a priori*, *a posteriori*,
  or only heuristically,
* **speedup**    — how much less data it touches than exact execution.

This module encodes each implemented technique's position on those axes as
a small capability record, provides a per-query applicability check, and
produces the comparison matrix programmatically — our executable version
of the paper's qualitative comparison table. Benchmark E14 populates the
same matrix with *measured* numbers and checks no technique dominates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

GUARANTEE_LEVELS = ("none", "heuristic", "a_posteriori", "a_priori")


@dataclass(frozen=True)
class TechniqueProfile:
    """Static capability description of one AQP technique."""

    name: str
    #: supported aggregate functions
    aggregates: frozenset
    #: can it answer queries with joins of multiple sampled/large tables?
    supports_joins: bool
    #: does it survive arbitrary ad-hoc predicates?
    supports_adhoc_predicates: bool
    #: does it handle group-by with many/small groups well?
    supports_small_groups: bool
    #: error guarantee class
    guarantee: str
    #: does it need precomputation (and therefore maintenance)?
    needs_precomputation: bool
    #: typical fraction of data touched at query time (lower = faster)
    typical_touch_fraction: float
    notes: str = ""

    def __post_init__(self) -> None:
        if self.guarantee not in GUARANTEE_LEVELS:
            raise ValueError(f"unknown guarantee level {self.guarantee!r}")

    @property
    def generality_score(self) -> float:
        """0..1 composite of the coverage flags."""
        score = len(self.aggregates) / 6.0  # of sum,count,avg,min,max,distinct
        score += 1.0 if self.supports_joins else 0.0
        score += 1.0 if self.supports_adhoc_predicates else 0.0
        score += 1.0 if self.supports_small_groups else 0.0
        return min(score / 4.0, 1.0)

    @property
    def guarantee_score(self) -> float:
        return GUARANTEE_LEVELS.index(self.guarantee) / (len(GUARANTEE_LEVELS) - 1)

    @property
    def speedup_score(self) -> float:
        """0..1; 1 means it touches ~none of the data."""
        return max(0.0, 1.0 - self.typical_touch_fraction)


LINEAR = frozenset({"sum", "count", "avg"})

#: The registry of implemented techniques and their honest capabilities.
TECHNIQUE_PROFILES: Dict[str, TechniqueProfile] = {
    "exact": TechniqueProfile(
        name="exact",
        aggregates=frozenset({"sum", "count", "avg", "min", "max", "count_distinct"}),
        supports_joins=True,
        supports_adhoc_predicates=True,
        supports_small_groups=True,
        guarantee="a_priori",  # zero error, trivially
        needs_precomputation=False,
        typical_touch_fraction=1.0,
        notes="the degenerate corner: perfect generality and guarantee, no speedup",
    ),
    "uniform_sample": TechniqueProfile(
        name="uniform_sample",
        aggregates=LINEAR,
        supports_joins=False,
        supports_adhoc_predicates=True,
        supports_small_groups=False,
        guarantee="a_posteriori",
        needs_precomputation=False,
        typical_touch_fraction=0.05,
        notes="row-level uniform sampling with CLT intervals",
    ),
    "pilot": TechniqueProfile(
        name="pilot",
        aggregates=LINEAR,
        supports_joins=True,
        supports_adhoc_predicates=True,
        supports_small_groups=False,
        guarantee="a_priori",
        needs_precomputation=False,
        typical_touch_fraction=0.08,
        notes="two-stage block sampling; pays a pilot pass but bounds error upfront",
    ),
    "quickr": TechniqueProfile(
        name="quickr",
        aggregates=LINEAR,
        supports_joins=True,
        supports_adhoc_predicates=True,
        supports_small_groups=True,
        guarantee="a_posteriori",
        needs_precomputation=False,
        typical_touch_fraction=0.3,
        notes="query-time sampler injection; one pass over data, ad-hoc friendly",
    ),
    "offline_sample": TechniqueProfile(
        name="offline_sample",
        aggregates=LINEAR,
        supports_joins=True,  # via join synopses on FK paths
        supports_adhoc_predicates=False,  # only predicates the strata anticipate
        supports_small_groups=True,  # stratification protects them
        guarantee="a_priori",
        needs_precomputation=True,
        typical_touch_fraction=0.01,
        notes="BlinkDB-style stratified samples; fast but workload-bound + maintenance",
    ),
    "sketch": TechniqueProfile(
        name="sketch",
        aggregates=frozenset({"count", "count_distinct"}),
        supports_joins=False,
        supports_adhoc_predicates=False,
        supports_small_groups=False,
        guarantee="a_priori",
        needs_precomputation=True,
        typical_touch_fraction=0.0,
        notes="per-aggregate synopses (HLL, CM); tiny and guaranteed but narrow",
    ),
    "histogram": TechniqueProfile(
        name="histogram",
        aggregates=frozenset({"count", "sum"}),
        supports_joins=False,
        supports_adhoc_predicates=False,  # only range predicates on the built column
        supports_small_groups=False,
        guarantee="heuristic",
        needs_precomputation=True,
        typical_touch_fraction=0.0,
        notes="range aggregates from buckets/wavelets; tiny space, narrow class",
    ),
    "online_aggregation": TechniqueProfile(
        name="online_aggregation",
        aggregates=LINEAR,
        supports_joins=True,  # ripple join
        supports_adhoc_predicates=True,
        supports_small_groups=False,
        guarantee="a_posteriori",
        needs_precomputation=False,
        typical_touch_fraction=0.2,
        notes="progressive answers; guarantee only at the (unknown) stop time",
    ),
}


@dataclass
class MatrixRow:
    technique: str
    generality: float
    guarantee: float
    speedup: float

    @property
    def wins_all(self) -> bool:
        return self.generality >= 0.99 and self.guarantee >= 0.99 and self.speedup >= 0.5


def comparison_matrix(
    profiles: Optional[Dict[str, TechniqueProfile]] = None,
) -> List[MatrixRow]:
    """The paper's qualitative comparison, computed from the profiles."""
    profiles = profiles if profiles is not None else TECHNIQUE_PROFILES
    return [
        MatrixRow(
            technique=p.name,
            generality=round(p.generality_score, 3),
            guarantee=round(p.guarantee_score, 3),
            speedup=round(p.speedup_score, 3),
        )
        for p in profiles.values()
    ]


def no_silver_bullet(profiles: Optional[Dict[str, TechniqueProfile]] = None) -> bool:
    """True iff no non-exact technique maximizes all three axes.

    This is the thesis statement as an assertion; the test suite and
    benchmark E14 both check it against the measured matrix.
    """
    for row in comparison_matrix(profiles):
        if row.technique == "exact":
            continue
        if row.wins_all:
            return False
    return True


def dominated_techniques(
    profiles: Optional[Dict[str, TechniqueProfile]] = None,
) -> List[str]:
    """Techniques strictly dominated on the three axes by another that is
    also no worse on the maintenance dimension.

    Maintenance (``needs_precomputation``) is the survey's fourth concern:
    an offline sample that beats an online sampler on
    generality/guarantee/speedup still does not dominate it, because it
    drags a rebuild bill the online method never pays. An empty list
    supports the survey's point that the techniques form a Pareto
    frontier — each exists because it wins somewhere.
    """
    profiles = profiles if profiles is not None else TECHNIQUE_PROFILES
    rows = {r.technique: r for r in comparison_matrix(profiles)}
    dominated = []
    for name, r in rows.items():
        for other_name, other in rows.items():
            if other_name == name:
                continue
            maintenance_ok = (
                not profiles[other_name].needs_precomputation
                or profiles[name].needs_precomputation
            )
            if (
                maintenance_ok
                and other.generality > r.generality
                and other.guarantee > r.guarantee
                and other.speedup > r.speedup
            ):
                dominated.append(name)
                break
    return dominated


def format_matrix(rows: Sequence[MatrixRow]) -> str:
    """Plain-text rendering used by benchmarks and the quickstart."""
    header = f"{'technique':<20} {'generality':>10} {'guarantee':>10} {'speedup':>8}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.technique:<20} {r.generality:>10.2f} {r.guarantee:>10.2f} "
            f"{r.speedup:>8.2f}"
        )
    return "\n".join(lines)
