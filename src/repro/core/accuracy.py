"""Accuracy evaluation harness.

Utilities for auditing an AQP configuration the way the benchmarks do:
run a query approximately many times, compare every cell against the
exact answer, and report whether the error specification's *joint*
semantics actually held. Used by the test suite and benchmarks, and
useful to library users validating their own workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errorspec import ErrorSpec
from ..core.result import ApproximateResult, QueryResult


@dataclass
class CellComparison:
    """One approximate cell against its exact counterpart."""

    alias: str
    key: Tuple
    approximate: float
    exact: float

    @property
    def relative_error(self) -> float:
        if self.exact == 0:
            return 0.0 if self.approximate == 0 else math.inf
        return abs(self.approximate - self.exact) / abs(self.exact)


@dataclass
class TrialOutcome:
    """One approximate run audited against the exact answer."""

    technique: str
    cells: List[CellComparison]
    missing_groups: int
    extra_groups: int
    fell_back_to_exact: bool = False

    @property
    def max_relative_error(self) -> float:
        if self.fell_back_to_exact:
            return 0.0
        if self.missing_groups or self.extra_groups:
            return math.inf
        return max((c.relative_error for c in self.cells), default=0.0)

    def within(self, spec: ErrorSpec) -> bool:
        return self.max_relative_error <= spec.relative_error


@dataclass
class GuaranteeReport:
    """Aggregate outcome of repeated audited runs."""

    spec: ErrorSpec
    trials: int
    violations: int
    outcomes: List[TrialOutcome] = field(default_factory=list)

    @property
    def violation_rate(self) -> float:
        return self.violations / self.trials if self.trials else 0.0

    @property
    def holds(self) -> bool:
        """Is the empirical violation rate consistent with the spec?

        Accepts iff the number of non-violating trials reaches the exact
        one-sided binomial acceptance bound for the claimed confidence
        (see :func:`repro.audit.acceptance.coverage_lower_bound`), so
        small trial counts get a statistically proper tolerance instead
        of a heuristic slack.
        """
        from ..audit.acceptance import coverage_lower_bound

        if not self.trials:
            return True
        hits = self.trials - self.violations
        return hits >= coverage_lower_bound(self.trials, self.spec.confidence)

    def max_observed_error(self) -> float:
        finite = [
            o.max_relative_error
            for o in self.outcomes
            if math.isfinite(o.max_relative_error)
        ]
        return max(finite, default=0.0)


def compare_results(
    approx,
    exact: QueryResult,
) -> TrialOutcome:
    """Audit one result (approximate or fallback-exact) cell by cell."""
    if not getattr(approx, "is_approximate", False):
        return TrialOutcome(
            technique="exact",
            cells=[],
            missing_groups=0,
            extra_groups=0,
            fell_back_to_exact=True,
        )
    assert isinstance(approx, ApproximateResult)
    agg_aliases = list(approx.ci_low) or [
        c for c in approx.table.column_names if c in exact.table
    ]
    key_cols = [c for c in approx.table.column_names if c not in agg_aliases]
    exact_rows = {
        tuple(r[k] for k in key_cols): r for r in exact.table.to_pylist()
    }
    cells: List[CellComparison] = []
    extra = 0
    seen_keys = set()
    for row in approx.table.to_pylist():
        key = tuple(row[k] for k in key_cols)
        seen_keys.add(key)
        truth = exact_rows.get(key)
        if truth is None:
            extra += 1
            continue
        for alias in agg_aliases:
            cells.append(
                CellComparison(
                    alias=alias,
                    key=key,
                    approximate=float(row[alias]),
                    exact=float(truth[alias]),
                )
            )
    missing = len(set(exact_rows) - seen_keys)
    return TrialOutcome(
        technique=approx.technique,
        cells=cells,
        missing_groups=missing,
        extra_groups=extra,
    )


def audit_query(
    database,
    sql: str,
    spec: ErrorSpec,
    trials: int = 10,
    seed: int = 0,
    technique: Optional[str] = None,
) -> GuaranteeReport:
    """Run ``sql`` approximately ``trials`` times and audit each run.

    The SQL string must *not* carry its own ERROR clause; the spec is
    passed programmatically so the exact reference uses the same text.
    """
    from .session import AQPEngine

    engine = AQPEngine(database)
    exact = engine.sql(sql)
    outcomes: List[TrialOutcome] = []
    violations = 0
    for trial in range(trials):
        result = engine.sql(
            sql, spec=spec, seed=seed + trial, technique=technique
        )
        outcome = compare_results(result, exact)
        outcomes.append(outcome)
        if not outcome.within(spec):
            violations += 1
    return GuaranteeReport(
        spec=spec, trials=trials, violations=violations, outcomes=outcomes
    )


def ci_calibration(
    outcomes: Sequence[TrialOutcome],
    results: Sequence[ApproximateResult],
) -> float:
    """Fraction of audited cells whose reported CI contained the truth."""
    hits = total = 0
    for outcome, result in zip(outcomes, results):
        if outcome.fell_back_to_exact:
            continue
        exact_by = {(c.alias, c.key): c.exact for c in outcome.cells}
        key_cols = [
            c for c in result.table.column_names if c not in result.ci_low
        ]
        for alias in result.ci_low:
            for i in range(result.table.num_rows):
                key = tuple(result.table[k][i] for k in key_cols)
                truth = exact_by.get((alias, key))
                if truth is None:
                    continue
                total += 1
                cell = result.estimate(alias, i)
                if cell.ci_low <= truth <= cell.ci_high:
                    hits += 1
    return hits / total if total else 1.0
