"""Core layer: error specs, results, the advisor, the trade-off model."""

from .accuracy import GuaranteeReport, TrialOutcome, audit_query, compare_results
from .advisor import Advisor
from .errorspec import ErrorSpec
from .result import ApproximateResult, CellEstimate, QueryResult
from .session import AQPEngine
from .tradeoff import (
    TECHNIQUE_PROFILES,
    TechniqueProfile,
    comparison_matrix,
    dominated_techniques,
    format_matrix,
    no_silver_bullet,
)

__all__ = [
    "Advisor",
    "GuaranteeReport",
    "TrialOutcome",
    "audit_query",
    "compare_results",
    "AQPEngine",
    "ApproximateResult",
    "CellEstimate",
    "ErrorSpec",
    "QueryResult",
    "TECHNIQUE_PROFILES",
    "TechniqueProfile",
    "comparison_matrix",
    "dominated_techniques",
    "format_matrix",
    "no_silver_bullet",
]
