"""The technique advisor.

Given a bound query and an error spec, the advisor walks the technique
registry in preference order, checks *applicability* (can this technique
answer this query at all?) and *profitability* (will it beat exact
execution?), and runs the first that passes — falling back to exact
execution when nothing does, exactly the behaviour the survey says every
deployable AQP system needs.

Preference order encodes the paper's guidance:

1. an **offline synopsis** that already covers the query (fastest, but
   only if one was precomputed and is fresh);
2. the **pilot** two-stage online planner (a-priori guarantees, no
   precomputation);
3. **Quickr-style** query-time sampling (a-posteriori errors, still one
   pass at most);
4. **exact** execution.
"""

from __future__ import annotations

import math
from typing import Optional

from ..engine.optimizer import optimize_plan
from ..sql.binder import BoundQuery
from .errorspec import ErrorSpec
from .exceptions import InfeasiblePlanError, UnsupportedQueryError
from .result import ApproximateResult, QueryResult


class Advisor:
    """Chooses and runs an execution technique for one query."""

    def __init__(self, database) -> None:
        self.database = database

    # ------------------------------------------------------------------
    def run(
        self,
        bound: BoundQuery,
        spec: ErrorSpec,
        seed: Optional[int] = None,
        force_technique: Optional[str] = None,
        pilot_rate: float = 0.01,
    ):
        """Execute ``bound`` under ``spec``; returns an
        :class:`~repro.core.result.ApproximateResult` or, on fallback, a
        :class:`~repro.core.result.QueryResult`."""
        if force_technique == "exact":
            return self._run_exact(bound, seed)
        if force_technique is not None:
            runner = {
                "pilot": self._try_pilot,
                "quickr": self._try_quickr,
                "offline_sample": self._try_offline,
            }.get(force_technique)
            if runner is None:
                raise UnsupportedQueryError(
                    f"unknown technique {force_technique!r}"
                )
            result = runner(bound, spec, seed, pilot_rate)
            if result is None:
                raise InfeasiblePlanError(
                    f"technique {force_technique!r} is not applicable/"
                    "profitable for this query"
                )
            return result
        for runner in (self._try_offline, self._try_pilot, self._try_quickr):
            result = runner(bound, spec, seed, pilot_rate)
            if result is not None:
                return result
        return self._run_exact(bound, seed)

    # ------------------------------------------------------------------
    def _run_exact(self, bound: BoundQuery, seed: Optional[int]) -> QueryResult:
        plan = optimize_plan(bound.plan, self.database)
        table, stats = self.database.execute(plan, seed=seed, optimize=False)
        return QueryResult(table=table, stats=stats, plan_text=plan.explain())

    def _try_offline(
        self,
        bound: BoundQuery,
        spec: ErrorSpec,
        seed: Optional[int],
        pilot_rate: float,
    ) -> Optional[ApproximateResult]:
        from ..offline.rewriter import OfflineRewriter

        try:
            return OfflineRewriter(self.database).run(bound, spec, seed=seed)
        except (UnsupportedQueryError, InfeasiblePlanError):
            return None

    def _try_pilot(
        self,
        bound: BoundQuery,
        spec: ErrorSpec,
        seed: Optional[int],
        pilot_rate: float,
    ) -> Optional[ApproximateResult]:
        from ..online.pilot import PilotPlanner

        try:
            planner = PilotPlanner(
                self.database, pilot_rate=pilot_rate, seed=seed
            )
            return planner.run(bound, spec)
        except (UnsupportedQueryError, InfeasiblePlanError):
            return None

    def _try_quickr(
        self,
        bound: BoundQuery,
        spec: ErrorSpec,
        seed: Optional[int],
        pilot_rate: float,
    ) -> Optional[ApproximateResult]:
        from ..online.quickr import QuickrPlanner

        try:
            return QuickrPlanner(self.database, seed=seed).run(bound, spec)
        except (UnsupportedQueryError, InfeasiblePlanError):
            return None
