"""Error specifications and their semantics.

An :class:`ErrorSpec` states the user's accuracy contract: *every* reported
aggregate, in every group, must have relative error at most ``relative_error``
— simultaneously — with probability at least ``confidence``. This "joint"
semantics is the strong form; splitting the failure probability across
aggregates via Boole's inequality (union bound) is how planners reduce it
to per-estimate requirements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List

from .exceptions import ErrorSpecError


@dataclass(frozen=True)
class ErrorSpec:
    """Target relative error at a confidence level.

    Parameters
    ----------
    relative_error:
        Maximum allowed ``|estimate - truth| / |truth|``, e.g. ``0.05``.
    confidence:
        Probability with which all estimates must satisfy it, e.g. ``0.95``.
    min_group_size:
        Group-by guarantee knob: groups with at least this many rows must
        appear in the result with high probability; smaller groups may be
        missed (every sampling-based system has such a floor).
    """

    relative_error: float
    confidence: float = 0.95
    min_group_size: int = 100

    def __post_init__(self) -> None:
        if not (0.0 < self.relative_error < 1.0):
            raise ErrorSpecError(
                f"relative_error must be in (0, 1), got {self.relative_error}"
            )
        if not (0.0 < self.confidence < 1.0):
            raise ErrorSpecError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.min_group_size < 1:
            raise ErrorSpecError("min_group_size must be >= 1")

    @property
    def failure_probability(self) -> float:
        return 1.0 - self.confidence

    def split_confidence(self, num_estimates: int) -> "ErrorSpec":
        """Per-estimate spec after a union bound over ``num_estimates``.

        If each estimate fails with probability at most
        ``(1 - confidence) / k``, the union bound guarantees the joint
        confidence.
        """
        if num_estimates < 1:
            raise ErrorSpecError("num_estimates must be >= 1")
        per_failure = self.failure_probability / num_estimates
        return replace(self, confidence=1.0 - per_failure)

    def split_error(self, num_factors: int) -> "ErrorSpec":
        """Per-factor spec when a composite aggregate multiplies/divides
        ``num_factors`` simple aggregates (error-propagation allocation)."""
        if num_factors < 1:
            raise ErrorSpecError("num_factors must be >= 1")
        return replace(self, relative_error=self.relative_error / num_factors)

    def __str__(self) -> str:
        return (
            f"±{self.relative_error * 100:.3g}% @ "
            f"{self.confidence * 100:.3g}% confidence"
        )


def z_value(confidence: float) -> float:
    """Two-sided standard normal critical value for ``confidence``.

    Implemented with the inverse error function via Newton iterations so the
    core library needs only numpy-free math (scipy is used in tests to
    validate it).
    """
    if not (0.0 < confidence < 1.0):
        raise ErrorSpecError(f"confidence must be in (0, 1), got {confidence}")
    p = 0.5 + confidence / 2.0  # upper quantile
    return normal_ppf(p)


def normal_ppf(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation,
    polished with one Halley step; max abs error < 1e-9)."""
    if not (0.0 < p < 1.0):
        raise ErrorSpecError(f"probability must be in (0, 1), got {p}")
    # Acklam coefficients
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    plow, phigh = 0.02425, 1 - 0.02425
    if p < plow:
        q = math.sqrt(-2 * math.log(p))
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    elif p <= phigh:
        q = p - 0.5
        r = q * q
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    else:
        q = math.sqrt(-2 * math.log(1 - p))
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    # One Halley refinement using the normal CDF.
    e = normal_cdf(x) - p
    u = e * math.sqrt(2 * math.pi) * math.exp(x * x / 2)
    x = x - u / (1 + x * u / 2)
    return x


def normal_cdf(x: float) -> float:
    """Standard normal CDF via erf."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def student_t_ppf(p: float, df: int) -> float:
    """Upper quantile of Student's t with ``df`` degrees of freedom.

    Uses the Cornish–Fisher style expansion around the normal quantile
    (Hill 1970), accurate to ~1e-4 for df >= 3 and falling back to a
    bisection on the CDF for small df.
    """
    if df <= 0:
        raise ErrorSpecError("degrees of freedom must be positive")
    if df > 200:
        return normal_ppf(p)
    # Bisection against the t CDF (via incomplete beta) — robust everywhere.
    lo, hi = -500.0, 500.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if student_t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-10:
            break
    return 0.5 * (lo + hi)


def student_t_cdf(t: float, df: int) -> float:
    """CDF of Student's t via the regularized incomplete beta function."""
    x = df / (df + t * t)
    ib = _reg_incomplete_beta(df / 2.0, 0.5, x)
    if t > 0:
        return 1.0 - 0.5 * ib
    return 0.5 * ib


def chi2_ppf(p: float, df: int) -> float:
    """Quantile of the chi-squared distribution (bisection on its CDF)."""
    if df <= 0:
        raise ErrorSpecError("degrees of freedom must be positive")
    lo, hi = 0.0, max(1000.0, df * 20.0)
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if chi2_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-10:
            break
    return 0.5 * (lo + hi)


def chi2_cdf(x: float, df: int) -> float:
    """CDF of chi-squared = regularized lower incomplete gamma."""
    if x <= 0:
        return 0.0
    return _reg_lower_gamma(df / 2.0, x / 2.0)


def _reg_lower_gamma(s: float, x: float) -> float:
    """Regularized lower incomplete gamma P(s, x)."""
    if x < s + 1.0:
        # series expansion
        term = 1.0 / s
        total = term
        k = s
        for _ in range(500):
            k += 1.0
            term *= x / k
            total += term
            if abs(term) < abs(total) * 1e-14:
                break
        return total * math.exp(-x + s * math.log(x) - math.lgamma(s))
    # continued fraction for Q(s, x)
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    q = math.exp(-x + s * math.log(x) - math.lgamma(s)) * h
    return 1.0 - q


def _reg_incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta I_x(a, b) via continued fraction."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_beta = math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)
    front = math.exp(a * math.log(x) + b * math.log(1.0 - x) - ln_beta) / a
    if x > (a + 1.0) / (a + b + 2.0):
        return 1.0 - _reg_incomplete_beta(b, a, 1.0 - x)
    # Lentz's continued fraction
    tiny = 1e-300
    f, c, d = 1.0, 1.0, 0.0
    for i in range(0, 400):
        m = i // 2
        if i == 0:
            numerator = 1.0
        elif i % 2 == 0:
            numerator = (m * (b - m) * x) / ((a + 2 * m - 1) * (a + 2 * m))
        else:
            numerator = -((a + m) * (a + b + m) * x) / ((a + 2 * m) * (a + 2 * m + 1))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        d = 1.0 / d
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        f *= c * d
        if abs(1.0 - c * d) < 1e-14:
            break
    return front * (f - 1.0)
