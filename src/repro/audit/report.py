"""Audit report serialization and baseline regression diff.

The audit writes ``audit/AUDIT_report.json``. Everything statistical in
the document is a pure function of the seed, so two runs with the same
``REPRO_SEED`` are byte-identical except for the ``timing`` key — which
is exactly what makes the committed ``audit/AUDIT_baseline.json`` a
meaningful regression anchor: any diff in the statistical keys is a
behavior change, never noise.

This module also hosts the fixed-width text-table formatter shared with
``benchmarks/common.py`` so bench reports and audit reports render the
same way.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
)
AUDIT_DIR = os.path.join(_REPO_ROOT, "audit")
AUDIT_REPORT_JSON = os.path.join(AUDIT_DIR, "AUDIT_report.json")
AUDIT_BASELINE_JSON = os.path.join(AUDIT_DIR, "AUDIT_baseline.json")


# ----------------------------------------------------------------------
# Text-table rendering (shared with benchmarks/common.py)
# ----------------------------------------------------------------------

def format_value(value) -> str:
    """Compact human formatting for table cells."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> List[str]:
    """Fixed-width text table (header, rule, one line per row)."""
    widths = [
        max(len(str(h)), *(len(format_value(r[i])) for r in rows))
        if rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    out = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        out.append(
            "  ".join(format_value(v).ljust(w) for v, w in zip(r, widths))
        )
    return out


# ----------------------------------------------------------------------
# Report I/O
# ----------------------------------------------------------------------

def write_report(doc: Dict[str, object], path: str = AUDIT_REPORT_JSON) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_report(path: str) -> Dict[str, object]:
    with open(path) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Baseline regression diff
# ----------------------------------------------------------------------

def diff_against_baseline(
    doc: Dict[str, object],
    baseline_path: str = AUDIT_BASELINE_JSON,
) -> List[str]:
    """Regressions of ``doc`` relative to the committed baseline.

    Returns human-readable problem strings; entries prefixed ``note:``
    are informational (print, don't fail). An empty list is a clean run.

    What counts as a regression:

    * a path that held its guarantee in the baseline and breaks it now;
    * a path present in the baseline but missing from this run (audit
      coverage silently shrank);
    * an expected-failure path that *stopped* failing (either the
      implementation quietly changed or the audit lost its power) —
      informational, because it can also mean the estimator was fixed.
    """
    if not os.path.exists(baseline_path):
        return [f"note: no baseline at {baseline_path}; skipping comparison"]
    baseline = load_report(baseline_path)
    if baseline.get("mode") != doc.get("mode"):
        return [
            "note: baseline mode "
            f"{baseline.get('mode')!r} != run mode {doc.get('mode')!r}; "
            "skipping comparison"
        ]
    old_by_name = {p["name"]: p for p in baseline.get("paths", [])}
    new_by_name = {p["name"]: p for p in doc.get("paths", [])}
    problems: List[str] = []
    for name, old in sorted(old_by_name.items()):
        new = new_by_name.get(name)
        if new is None:
            problems.append(f"{name}: audited in baseline but missing now")
            continue
        if old.get("guarantee_ok") and not new.get("guarantee_ok"):
            problems.append(
                f"{name}: guarantee held in baseline "
                f"({old.get('verdict')}) but now {new.get('verdict')} "
                f"(coverage {new.get('empirical_coverage')} vs claimed "
                f"{new.get('claimed_coverage')})"
            )
        if old.get("expected_failure") and old.get("verdict") == "fail_under":
            if new.get("verdict") != "fail_under":
                problems.append(
                    f"note: {name}: paper-predicted failure no longer "
                    f"reproduces (now {new.get('verdict')})"
                )
    return problems
