"""The registry of audited estimator paths.

Each :class:`AuditPath` wraps one (technique, query, guarantee) triple:
its ``run`` callable executes a single seeded trial and reports the
estimate, the interval or bound it claimed, and the exact answer from
the oracle. The runner replays N trials and checks the hit count against
the claimed coverage with a binomial band.

Claim kinds:

* ``"ci"`` — the path reports a confidence interval; a hit means the CI
  contained the exact answer (CI-coverage audit).
* ``"spec"`` — the path promises ``|err| <= ε`` with probability ``c``
  (the ERROR WITHIN clause); a hit means the realized relative error met
  ε, whatever interval was reported.
* ``"bound"`` — the path states an explicit error bound (ε·N for
  Count-Min, k·RSE for cardinality sketches, bucket mass for
  histograms); a hit means the realized error stayed inside it.
* ``"none"`` — the paper says this synopsis has **no** a-priori
  guarantee (wavelets under arbitrary queries); the audit records the
  realized error distribution but accepts nothing.

Paths with ``expected_failure=True`` are the paper-predicted breakages
(peeking at OLA intervals, closed-form CIs on heavy tails): the audit
asserts they *keep failing* — if one starts passing, either the
implementation silently changed or the audit lost its power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.errorspec import ErrorSpec
from ..core.options import QueryOptions
from ..core.exceptions import (
    InfeasiblePlanError,
    QueryRefused,
    UnsupportedQueryError,
)
from ..core.result import ApproximateResult
from ..engine.database import Database
from ..engine.table import Table
from ..estimators.bootstrap import bootstrap_ci
from ..histograms.builders import equi_depth
from ..offline.catalog import SampleEntry, SynopsisCatalog
from ..offline.sample_seek import (
    answer_group_by_sum,
    build_sample_seek,
    distribution_precision,
)
from ..online.ola import OnlineAggregator
from ..online.ripple import RippleJoin
from ..sampling.row import bernoulli_sample, srs_sample
from ..sampling.stratified import group_estimates, stratified_sample
from ..sketches.countmin import CountMinSketch
from ..sketches.hyperloglog import HyperLogLog
from ..sketches.kmv import KMVSketch
from ..wavelets.haar import build_wavelet_synopsis
from ..workloads import generate_tpch, heavy_tailed_table, zipf_group_table
from .oracle import ExactOracle


@dataclass
class TrialResult:
    """Outcome of one seeded trial of one audited path."""

    value: float
    exact: float
    hit: bool
    ci_low: float = math.nan
    ci_high: float = math.nan
    #: True when the technique honestly refused (no covering synopsis /
    #: infeasible plan) instead of answering; refusals do not count
    #: against coverage — refusing is the contract-honoring response.
    refused: bool = False

    @property
    def relative_error(self) -> float:
        if self.refused:
            return 0.0
        if self.exact == 0:
            return 0.0 if self.value == 0 else math.inf
        return abs(self.value - self.exact) / abs(self.exact)

    @property
    def relative_half_width(self) -> float:
        if not (math.isfinite(self.ci_low) and math.isfinite(self.ci_high)):
            return math.nan
        if self.exact == 0:
            return math.inf
        return (self.ci_high - self.ci_low) / 2.0 / abs(self.exact)


@dataclass
class AuditPath:
    """One audited (estimator, query, guarantee) combination."""

    name: str
    family: str  # sampling | offline | online | engine | sketch | synopsis
    claim: str  # ci | spec | bound | none
    claimed_coverage: Optional[float]
    description: str
    run: Callable[["AuditContext", int], TrialResult]
    #: paper-predicted breakage: the audit asserts this KEEPS failing
    expected_failure: bool = False
    #: relative trial cost; the runner gives heavy paths fewer trials
    heavy: bool = False


# ----------------------------------------------------------------------
# Shared fixtures: databases and tables every path reuses
# ----------------------------------------------------------------------

class AuditContext:
    """Seeded datasets + exact oracles shared across all paths.

    The data seed is fixed (it defines *which* population is audited);
    the per-trial seeds vary the estimator's randomness only. Everything
    is built lazily so a filtered audit (``--paths``) pays only for what
    it uses.
    """

    DATA_SEED = 42

    def __init__(self, scale: float = 1.0) -> None:
        self.scale = scale
        self._tpch: Optional[Database] = None
        self._oracle: Optional[ExactOracle] = None
        self._tables: Dict[str, Table] = {}

    # -- engine datasets -----------------------------------------------
    @property
    def tpch(self) -> Database:
        if self._tpch is None:
            self._tpch = generate_tpch(
                scale=self.scale, seed=self.DATA_SEED, block_size=256
            )
        return self._tpch

    @property
    def oracle(self) -> ExactOracle:
        if self._oracle is None:
            self._oracle = ExactOracle(self.tpch)
        return self._oracle

    # -- synthetic tables ----------------------------------------------
    def _table(self, key: str, builder: Callable[[], Table]) -> Table:
        if key not in self._tables:
            self._tables[key] = builder()
        return self._tables[key]

    @property
    def exponential(self) -> Table:
        """Moderately skewed population: CLT intervals should be honest."""
        n = int(60_000 * max(self.scale, 0.25))
        return self._table(
            "exponential",
            lambda: Table(
                {
                    "value": np.random.default_rng(self.DATA_SEED).exponential(
                        100.0, n
                    )
                },
                name="exp_t",
                block_size=512,
            ),
        )

    @property
    def sharded_exponential(self):
        """The exponential table split into 8 hash shards (built once)."""
        if not hasattr(self, "_sharded_exp"):
            from ..sharding import ShardedTable

            self._sharded_exp = ShardedTable.from_table(
                self.exponential, num_shards=8
            )
        return self._sharded_exp

    @property
    def heavytail(self) -> Table:
        """Lognormal(σ=2.5): rare huge values, the CLT's known enemy."""
        n = int(40_000 * max(self.scale, 0.25))
        return self._table(
            "heavytail",
            lambda: Table(
                heavy_tailed_table(n, sigma=2.5, seed=self.DATA_SEED),
                name="heavy_t",
                block_size=512,
            ),
        )

    @property
    def zipf(self) -> Table:
        """Zipf-grouped measure column for group-by / Sample+Seek paths."""
        n = int(60_000 * max(self.scale, 0.25))
        return self._table(
            "zipf",
            lambda: Table(
                zipf_group_table(
                    n, num_groups=40, zipf_s=1.3, seed=self.DATA_SEED
                ),
                name="zipf_t",
                block_size=512,
            ),
        )

    @property
    def join_left(self) -> Table:
        n = int(30_000 * max(self.scale, 0.25))
        rng = np.random.default_rng(self.DATA_SEED + 1)
        return self._table(
            "join_left",
            lambda: Table(
                {
                    "k": rng.integers(0, 300, n),
                    "v": rng.exponential(5.0, n),
                },
                name="jl",
            ),
        )

    @property
    def join_right(self) -> Table:
        rng = np.random.default_rng(self.DATA_SEED + 2)
        return self._table(
            "join_right",
            lambda: Table(
                {"k": np.arange(300), "w": rng.uniform(0.5, 1.5, 300)},
                name="jr",
            ),
        )

    def join_truth(self) -> float:
        key = self._tables.get("_join_truth")
        if key is None:
            left, right = self.join_left, self.join_right
            w_by_key = right["w"][np.searchsorted(right["k"], left["k"])]
            key = float(np.sum(left["v"] * w_by_key))
            self._tables["_join_truth"] = key  # type: ignore[assignment]
        return key  # type: ignore[return-value]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _group_sums(table: Table, group_col: str, value_col: str) -> Dict[object, float]:
    keys = table[group_col]
    values = np.asarray(table[value_col], dtype=np.float64)
    uniq, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=values, minlength=len(uniq))
    return {
        (k.item() if hasattr(k, "item") else k): float(s)
        for k, s in zip(uniq, sums)
    }


# ----------------------------------------------------------------------
# Sampling estimators (closed-form CIs)
# ----------------------------------------------------------------------

def _srs_sum(ctx: AuditContext, seed: int) -> TrialResult:
    table = ctx.exponential
    truth = float(table["value"].sum())
    sample = srs_sample(table, 1500, _rng(seed))
    est = sample.estimate_sum("value")
    lo, hi = est.ci(0.95)
    return TrialResult(est.value, truth, lo <= truth <= hi, lo, hi)


def _bernoulli_sum_exponential(ctx: AuditContext, seed: int) -> TrialResult:
    table = ctx.exponential
    truth = float(table["value"].sum())
    sample = bernoulli_sample(table, 0.03, _rng(seed))
    est = sample.estimate_sum("value")
    lo, hi = est.ci(0.95)
    return TrialResult(est.value, truth, lo <= truth <= hi, lo, hi)


def _bernoulli_sum_heavytail(ctx: AuditContext, seed: int) -> TrialResult:
    table = ctx.heavytail
    truth = float(table["value"].sum())
    sample = bernoulli_sample(table, 0.01, _rng(seed))
    est = sample.estimate_sum("value")
    lo, hi = est.ci(0.95)
    return TrialResult(est.value, truth, lo <= truth <= hi, lo, hi)


def _stratified_joint(ctx: AuditContext, seed: int) -> TrialResult:
    table = ctx.zipf
    spec = ErrorSpec(relative_error=0.5, confidence=0.95)
    truths = _group_sums(table, "group_id", "value")
    sample = stratified_sample(
        table, "group_id", 3000, policy="congress", rng=_rng(seed)
    )
    ests = group_estimates(sample, "group_id", "value", "sum")
    per_group = spec.split_confidence(len(ests))
    all_covered = True
    for key, est in ests.items():
        truth = truths.get(key)
        if truth is None:
            continue
        lo, hi = est.ci(per_group.confidence)
        # Fully-sampled strata report exact answers with zero-width CIs;
        # don't let 1e-12 summation-order noise read as a coverage miss.
        if not (lo <= truth <= hi) and not math.isclose(
            est.value, truth, rel_tol=1e-9
        ):
            all_covered = False
    total_truth = float(sum(truths.values()))
    total_est = float(sum(e.value for e in ests.values()))
    return TrialResult(total_est, total_truth, all_covered)


# ----------------------------------------------------------------------
# Offline paths
# ----------------------------------------------------------------------

_OFFLINE_SQL = (
    "SELECT l_returnflag AS flag, SUM(l_extendedprice) AS rev "
    "FROM lineitem GROUP BY l_returnflag"
)


def _offline_blinkdb(ctx: AuditContext, seed: int) -> TrialResult:
    db = ctx.tpch
    spec = ErrorSpec(relative_error=0.10, confidence=0.95)
    lineitem = db.table("lineitem")
    sample = stratified_sample(
        lineitem, "l_returnflag", 6000, policy="congress", rng=_rng(seed)
    )
    catalog = SynopsisCatalog.for_database(db)
    catalog.samples = [
        SampleEntry(
            table="lineitem",
            sample=sample,
            kind="stratified",
            strata_column="l_returnflag",
            built_at_rows=lineitem.num_rows,
        )
    ]
    exact = ctx.oracle.groups(_OFFLINE_SQL, "flag", "rev")
    try:
        result = db.sql(
            _OFFLINE_SQL,
            options=QueryOptions(spec=spec, technique="offline_sample"),
        )
    except (InfeasiblePlanError, UnsupportedQueryError):
        return TrialResult(math.nan, math.nan, hit=False, refused=True)
    return _grouped_ci_trial(result, exact, "flag", "rev")


def _tuned_synopsis(ctx: AuditContext, seed: int) -> TrialResult:
    """Audit a synopsis the tuner built, not a hand-placed one.

    Per trial: a workload log full of grouped-SUM demand drives one
    :class:`~repro.tuner.TuningDaemon` cycle against an empty catalog;
    the daemon's stratified sample (seeded from the trial seed) then
    answers the grouped query through the offline rewriter. The joint
    CI must cover the exact per-group answers at the claimed rate —
    the guarantee must survive the catalog being machine-chosen.
    """
    from ..tuner import QueryFingerprint, TuningDaemon, WorkloadLog

    rng = np.random.default_rng(ctx.DATA_SEED)
    rows = int(20_000 * max(ctx.scale, 0.25))
    db = Database()
    db.create_table(
        "events",
        {
            "seg": rng.integers(0, 8, rows),
            "v": rng.exponential(10.0, rows),
        },
    )
    log = WorkloadLog()
    log.extend(
        QueryFingerprint(
            table="events",
            group_columns=("seg",),
            agg_family="sum",
            measure_columns=("v",),
            technique="quickr",
        )
        for _ in range(8)
    )
    daemon = TuningDaemon(
        db, log, storage_budget_rows=8_000, sample_fraction=0.3, seed=seed
    )
    report = daemon.run_cycle(triggered_by="manual")
    if report.failed or not report.built:
        return TrialResult(math.nan, math.nan, hit=False, refused=True)
    sql = "SELECT seg, SUM(v) AS s FROM events GROUP BY seg"
    exact = _group_sums(db.table("events"), "seg", "v")
    spec = ErrorSpec(relative_error=0.20, confidence=0.95)
    try:
        result = db.sql(
            sql,
            options=QueryOptions(
                spec=spec, technique="offline_sample", seed=seed
            ),
        )
    except (InfeasiblePlanError, UnsupportedQueryError):
        return TrialResult(math.nan, math.nan, hit=False, refused=True)
    return _grouped_ci_trial(result, exact, "seg", "s")


def _sample_seek(ctx: AuditContext, seed: int) -> TrialResult:
    table = ctx.zipf
    synopsis = build_sample_seek(
        table, "value", "group_id", sample_size=3000, rng=_rng(seed)
    )
    answers, _cost = answer_group_by_sum(synopsis, table)
    truth = _group_sums(table, "group_id", "value")
    precision = distribution_precision(answers, truth)
    # Measure-biased share estimates are multinomial-like:
    # E[precision²] <= 1/n, so 3/√n is a ~95%-coverage a-priori bound.
    n = max(synopsis.sample_table.num_rows, 1)
    bound = 3.0 / math.sqrt(n)
    return TrialResult(precision, 0.0, precision <= bound, 0.0, bound)


# ----------------------------------------------------------------------
# Resilience paths (degraded answers must stay honest)
# ----------------------------------------------------------------------

def _degraded_stale_widened(ctx: AuditContext, seed: int) -> TrialResult:
    """Audit the degradation ladder's stale-synopsis rung.

    Per trial: a uniform sample is built from the first 80% of the
    table's rows, then the table "grows" to its full size (staleness
    0.25 — past the catalog's freshness threshold). Forcing
    ``technique="offline_sample"`` makes the requested rung refuse
    (no *fresh* covering sample), so the ladder serves from the stale
    rung, widening the CI by ``half·(1+s) + s·|value|``. The widened
    interval must still cover the *current* exact answer at the claimed
    rate, even though the estimator only ever saw the stale prefix —
    this is the "never claim a guarantee a degraded answer cannot
    honor" invariant, audited against the oracle.
    """
    from ..resilience.ladder import ResilientEngine

    table = ctx.exponential
    values = np.asarray(table["value"], dtype=np.float64)
    truth = float(values.sum())
    db = Database()
    db.create_table("events", {"value": values})
    prefix = int(table.num_rows * 0.8)
    prefix_table = Table({"value": values[:prefix]}, name="events")
    sample = srs_sample(prefix_table, 1500, _rng(seed))
    catalog = SynopsisCatalog(db)
    catalog.add_sample(
        SampleEntry(
            table="events",
            sample=sample,
            kind="uniform",
            built_at_rows=prefix,
        )
    )
    engine = ResilientEngine(db, warn_on_degrade=False)
    spec = ErrorSpec(relative_error=0.10, confidence=0.95)
    try:
        result = engine.sql(
            "SELECT SUM(value) AS s FROM events",
            options=QueryOptions(
                spec=spec, seed=seed, technique="offline_sample"
            ),
        )
    except QueryRefused:
        return TrialResult(math.nan, math.nan, hit=False, refused=True)
    if not getattr(result, "is_degraded", False):
        # Served fresh: the staleness setup failed; count as a refusal
        # so the path cannot pass by accident.
        return TrialResult(math.nan, math.nan, hit=False, refused=True)
    cell = result.estimate("s", 0)
    return TrialResult(
        cell.value, truth, cell.covers(truth), cell.ci_low, cell.ci_high
    )


def _degraded_missing_shard(ctx: AuditContext, seed: int) -> TrialResult:
    """Audit k-of-n scatter-gather widening against the whole-table oracle.

    Per trial: the 8-shard exponential table loses one shard (a seeded
    victim is killed through the fault injector, so both the primary and
    the hedged attempt against it fail), and the query is served in OLA
    mode — each surviving shard reports a fixed-stop CI from 30% of its
    rows, so the merged interval carries real sampling error, not a
    trivially-exact answer. The missing shard contributes its catalog
    envelope: the reported CI is widened by ``[Σ negative, Σ positive]``
    of the victim's value column. That widened interval must cover the
    exact whole-table SUM at ≥ the claimed rate. An answer that is not
    degraded means the kill failed to land; count it as a refusal so the
    path cannot pass by accident.
    """
    from ..resilience.faults import FaultInjector, inject, kill_shard
    from ..sharding import ScatterGatherExecutor

    sharded = ctx.sharded_exponential
    truth = float(np.asarray(ctx.exponential["value"], dtype=np.float64).sum())
    victim = int(_rng(seed).integers(0, sharded.num_shards))
    executor = ScatterGatherExecutor(sharded, max_workers=1)
    spec = ErrorSpec(relative_error=0.10, confidence=0.95)
    try:
        with inject(FaultInjector([kill_shard(victim)])):
            result = executor.sql(
                "SELECT SUM(value) AS s FROM exp_t",
                options=QueryOptions(spec=spec, seed=seed),
                mode="ola",
            )
    except QueryRefused:
        return TrialResult(math.nan, math.nan, hit=False, refused=True)
    if not result.is_degraded:
        return TrialResult(math.nan, math.nan, hit=False, refused=True)
    cell = result.estimate("s", 0)
    return TrialResult(
        cell.value, truth, cell.covers(truth), cell.ci_low, cell.ci_high
    )


# ----------------------------------------------------------------------
# Online paths
# ----------------------------------------------------------------------

def _ola_fixed_stop(ctx: AuditContext, seed: int) -> TrialResult:
    table = ctx.exponential
    truth = float(table["value"].sum())
    ola = OnlineAggregator(
        table, "value", agg="sum", confidence=0.95, seed=seed
    )
    snap = ola.snapshot(int(table.num_rows * 0.10))
    return TrialResult(
        snap.value, truth, snap.covers(truth), snap.ci_low, snap.ci_high
    )


def _ola_peeking_stop(ctx: AuditContext, seed: int) -> TrialResult:
    # Skewed data + optional stopping: prefixes that miss the tail both
    # underestimate the sum AND report a deceptively tight CI, so the
    # "stop when it first looks good" rule locks in exactly the bad
    # prefixes — coverage collapses well below nominal (E13).
    table = ctx.heavytail
    truth = float(table["value"].sum())
    ola = OnlineAggregator(
        table, "value", agg="sum", confidence=0.95, seed=seed
    )
    snap = ola.run_to_target(0.2, batch_size=50)
    return TrialResult(
        snap.value, truth, snap.covers(truth), snap.ci_low, snap.ci_high
    )


def _ripple_join(ctx: AuditContext, seed: int) -> TrialResult:
    left, right = ctx.join_left, ctx.join_right
    truth = ctx.join_truth()
    join = RippleJoin(
        left, right, "k", "k",
        left_measure="v", right_measure="w",
        confidence=0.95, seed=seed,
    )
    snap = join.advance(steps=int(left.num_rows * 0.4))
    return TrialResult(
        snap.value, truth, snap.covers(truth), snap.ci_low, snap.ci_high
    )


# ----------------------------------------------------------------------
# Full-engine planner paths (advisor-visible techniques)
# ----------------------------------------------------------------------

_PILOT_SQL = (
    "SELECT SUM(l_extendedprice) AS rev FROM lineitem "
    "WHERE l_shipdate < 1200"
)
_QUICKR_SQL = (
    "SELECT l_returnflag AS flag, SUM(l_extendedprice) AS rev "
    "FROM lineitem GROUP BY l_returnflag"
)


def _grouped_ci_trial(
    result, exact: Dict[object, float], key: str, value: str
) -> TrialResult:
    """Joint CI-coverage hit across every group of a grouped result."""
    if not getattr(result, "is_approximate", False):
        return TrialResult(math.nan, math.nan, hit=False, refused=True)
    assert isinstance(result, ApproximateResult)
    keys = result.table[key]
    all_covered = True
    worst_missing = len(set(exact) - {
        (k.item() if hasattr(k, "item") else k) for k in keys
    })
    if worst_missing:
        all_covered = False
    total_est = 0.0
    total_truth = sum(exact.values())
    for row in range(result.table.num_rows):
        k = keys[row]
        k = k.item() if hasattr(k, "item") else k
        truth = exact.get(k)
        if truth is None:
            all_covered = False
            continue
        cell = result.estimate(value, row)
        total_est += cell.value
        if not cell.covers(truth):
            all_covered = False
    return TrialResult(total_est, total_truth, all_covered)


def _pilot_engine(ctx: AuditContext, seed: int) -> TrialResult:
    db = ctx.tpch
    spec = ErrorSpec(relative_error=0.10, confidence=0.95)
    truth = ctx.oracle.scalar(_PILOT_SQL)
    try:
        result = db.sql(
            _PILOT_SQL,
            options=QueryOptions(spec=spec, technique="pilot", seed=seed),
        )
    except (InfeasiblePlanError, UnsupportedQueryError):
        return TrialResult(math.nan, math.nan, hit=False, refused=True)
    if not result.is_approximate:
        return TrialResult(truth, truth, hit=True, refused=True)
    value = result.scalar()
    rel_err = abs(value - truth) / abs(truth) if truth else 0.0
    cell = result.estimate("rev", 0)
    # "spec" claim: the promise is |err| <= ε, not just CI coverage.
    return TrialResult(
        value, truth, rel_err <= spec.relative_error, cell.ci_low, cell.ci_high
    )


def _quickr_engine(ctx: AuditContext, seed: int) -> TrialResult:
    db = ctx.tpch
    spec = ErrorSpec(relative_error=0.10, confidence=0.95)
    exact = ctx.oracle.groups(_QUICKR_SQL, "flag", "rev")
    try:
        result = db.sql(
            _QUICKR_SQL,
            options=QueryOptions(spec=spec, technique="quickr", seed=seed),
        )
    except (InfeasiblePlanError, UnsupportedQueryError):
        return TrialResult(math.nan, math.nan, hit=False, refused=True)
    return _grouped_ci_trial(result, exact, "flag", "rev")


# ----------------------------------------------------------------------
# Sketch paths (data-independent guarantees)
# ----------------------------------------------------------------------

def _countmin_point(ctx: AuditContext, seed: int) -> TrialResult:
    table = ctx.zipf
    keys = table["group_id"]
    sketch = CountMinSketch(epsilon=0.005, delta=0.02, seed=seed)
    sketch.add(keys)
    rng = _rng(seed)
    uniq, counts = np.unique(keys, return_counts=True)
    probe = int(rng.integers(0, len(uniq)))
    truth = float(counts[probe])
    est = float(sketch.query_one(uniq[probe]))
    # One-sided guarantee: truth <= est <= truth + ε·N w.p. 1-δ.
    hit = truth <= est <= truth + sketch.error_bound
    return TrialResult(est, truth, hit, truth, truth + sketch.error_bound)


def _hll_distinct(ctx: AuditContext, seed: int) -> TrialResult:
    n_distinct = 50_000
    hll = HyperLogLog(precision=10, seed=seed)
    hll.add(np.arange(n_distinct, dtype=np.int64))
    est = hll.estimate()
    rse = hll.relative_standard_error
    band = 2.0 * rse * n_distinct
    return TrialResult(
        est,
        float(n_distinct),
        abs(est - n_distinct) <= band,
        n_distinct - band,
        n_distinct + band,
    )


def _kmv_distinct(ctx: AuditContext, seed: int) -> TrialResult:
    n_distinct = 50_000
    kmv = KMVSketch(k=1024, seed=seed)
    kmv.add(np.arange(n_distinct, dtype=np.int64))
    est = kmv.estimate()
    rse = kmv.relative_standard_error
    band = 2.0 * rse * n_distinct
    return TrialResult(
        est,
        float(n_distinct),
        abs(est - n_distinct) <= band,
        n_distinct - band,
        n_distinct + band,
    )


# ----------------------------------------------------------------------
# Bootstrap
# ----------------------------------------------------------------------

def _bootstrap_mean(ctx: AuditContext, seed: int) -> TrialResult:
    table = ctx.exponential
    values = np.asarray(table["value"], dtype=np.float64)
    truth = float(values.mean())
    rng = _rng(seed)
    sample = rng.choice(values, size=300, replace=False)
    res = bootstrap_ci(
        sample, np.mean, num_replicates=300, confidence=0.95, rng=rng
    )
    return TrialResult(
        res.value, truth, res.ci_low <= truth <= res.ci_high,
        res.ci_low, res.ci_high,
    )


# ----------------------------------------------------------------------
# Histogram / wavelet synopses
# ----------------------------------------------------------------------

def _histogram_range(ctx: AuditContext, seed: int) -> TrialResult:
    table = ctx.exponential
    values = np.asarray(table["value"], dtype=np.float64)
    hist = equi_depth(values, num_buckets=64)
    rng = _rng(seed)
    lo, hi = np.sort(rng.uniform(values.min(), values.max(), 2))
    est = hist.range_count(lo, hi)
    truth = float(np.count_nonzero((values >= lo) & (values <= hi)))
    # Deterministic bound: only partially-overlapped buckets can err, by
    # at most their full row count each.
    frac = hist._overlap_fractions(lo, hi)
    partial = (frac > 0.0) & (frac < 1.0)
    bound = float(np.sum(hist.counts[partial])) + 1e-6
    return TrialResult(est, truth, abs(est - truth) <= bound)


def _wavelet_range(ctx: AuditContext, seed: int) -> TrialResult:
    table = ctx.exponential
    values = np.asarray(table["value"], dtype=np.float64)
    synopsis = build_wavelet_synopsis(
        values, num_cells=1024, keep_coefficients=96
    )
    rng = _rng(seed)
    lo, hi = np.sort(rng.uniform(values.min(), values.max(), 2))
    est = synopsis.range_sum(lo, hi)
    truth = float(np.count_nonzero((values >= lo) & (values <= hi)))
    # No a-priori per-query guarantee exists (the paper's point); the
    # audit records the realized error only, so hit is vacuous.
    return TrialResult(est, truth, hit=True)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def build_paths() -> List[AuditPath]:
    """All audited paths, in report order."""
    return [
        AuditPath(
            name="srs_sum",
            family="sampling",
            claim="ci",
            claimed_coverage=0.95,
            description="SRS(1500) HT SUM with CLT CI on exponential data",
            run=_srs_sum,
        ),
        AuditPath(
            name="bernoulli_sum",
            family="sampling",
            claim="ci",
            claimed_coverage=0.95,
            description="Bernoulli(3%) HT SUM with CLT CI on exponential data",
            run=_bernoulli_sum_exponential,
        ),
        AuditPath(
            name="bernoulli_sum_heavytail",
            family="sampling",
            claim="ci",
            claimed_coverage=0.95,
            description=(
                "Bernoulli(1%) HT SUM on lognormal(σ=2.5): rare huge rows "
                "break the CLT interval — the paper's skew warning"
            ),
            run=_bernoulli_sum_heavytail,
            expected_failure=True,
        ),
        AuditPath(
            name="stratified_groupby_joint",
            family="sampling",
            claim="ci",
            claimed_coverage=0.95,
            description=(
                "Congress-stratified GROUP BY SUM; JOINT coverage across "
                "40 skewed groups after a union-bound confidence split. "
                "Undercovers at realistic budgets: the 99.9%-level "
                "per-group t-intervals the union bound demands are "
                "inaccurate on skewed strata — per-group guarantees do "
                "not compose cheaply (the paper's group-by warning)"
            ),
            run=_stratified_joint,
            expected_failure=True,
        ),
        AuditPath(
            name="offline_blinkdb_grouped",
            family="offline",
            claim="ci",
            claimed_coverage=0.95,
            description=(
                "BlinkDB-style stratified offline sample answering a "
                "grouped TPC-H query through the rewriter (joint coverage)"
            ),
            run=_offline_blinkdb,
            heavy=True,
        ),
        AuditPath(
            name="tuned_synopsis",
            family="offline",
            claim="ci",
            claimed_coverage=0.95,
            description=(
                "Stratified sample chosen and built by the workload-"
                "adaptive tuner (one daemon cycle over synthetic grouped "
                "demand) answering the grouped query it was tuned for "
                "(joint coverage)"
            ),
            run=_tuned_synopsis,
            heavy=True,
        ),
        AuditPath(
            name="sample_seek_distribution",
            family="offline",
            claim="bound",
            claimed_coverage=0.95,
            description=(
                "Sample+Seek distribution precision <= 3/√n (measure-"
                "biased sample + exact seek for small groups)"
            ),
            run=_sample_seek,
            heavy=True,
        ),
        AuditPath(
            name="degraded_stale_widened",
            family="resilience",
            claim="ci",
            claimed_coverage=0.95,
            description=(
                "Degradation ladder stale-synopsis rung: a sample built "
                "at 80% of the table answers the grown table through "
                "ResilientEngine; the staleness-widened CI must still "
                "cover the current exact answer"
            ),
            run=_degraded_stale_widened,
            heavy=True,
        ),
        AuditPath(
            name="degraded_missing_shard",
            family="resilience",
            claim="ci",
            claimed_coverage=0.95,
            description=(
                "Scatter-gather k-of-n serving: one of 8 shards is "
                "killed; the 7-shard OLA answer, widened by the missing "
                "shard's catalog envelope, must still cover the exact "
                "whole-table SUM"
            ),
            run=_degraded_missing_shard,
            heavy=True,
        ),
        AuditPath(
            name="ola_fixed_stop",
            family="online",
            claim="ci",
            claimed_coverage=0.95,
            description="Online aggregation CI at a FIXED 10% stopping point",
            run=_ola_fixed_stop,
        ),
        AuditPath(
            name="ola_peeking_stop",
            family="online",
            claim="ci",
            claimed_coverage=0.95,
            description=(
                "OLA on skewed data stopped the FIRST time the CI looks "
                "tight (peeking): realized coverage collapses below "
                "nominal, as the paper warns (E13)"
            ),
            run=_ola_peeking_stop,
            expected_failure=True,
        ),
        AuditPath(
            name="ripple_join_fixed",
            family="online",
            claim="ci",
            claimed_coverage=0.95,
            description=(
                "Ripple join SUM CI at a fixed step budget on a 100:1 "
                "equi-join (joins are where guarantees get hard)"
            ),
            run=_ripple_join,
            heavy=True,
        ),
        AuditPath(
            name="pilot_engine_spec",
            family="engine",
            claim="spec",
            claimed_coverage=0.95,
            description=(
                "Two-stage pilot planner through the advisor: realized "
                "relative error within the ERROR WITHIN 10% contract"
            ),
            run=_pilot_engine,
            heavy=True,
        ),
        AuditPath(
            name="quickr_engine_ci",
            family="engine",
            claim="ci",
            claimed_coverage=0.95,
            description=(
                "Quickr-style query-time sampling through the advisor: "
                "a-posteriori CIs must still cover (joint across groups)"
            ),
            run=_quickr_engine,
            heavy=True,
        ),
        AuditPath(
            name="countmin_point",
            family="sketch",
            claim="bound",
            claimed_coverage=0.98,
            description=(
                "Count-Min point frequency within [truth, truth + ε·N] "
                "(one-sided (ε, δ) guarantee, δ=0.02)"
            ),
            run=_countmin_point,
        ),
        AuditPath(
            name="hll_distinct",
            family="sketch",
            claim="bound",
            claimed_coverage=0.9545,
            description="HyperLogLog cardinality within 2·RSE (m=1024)",
            run=_hll_distinct,
        ),
        AuditPath(
            name="kmv_distinct",
            family="sketch",
            claim="bound",
            claimed_coverage=0.9545,
            description="KMV cardinality within 2·RSE (k=1024)",
            run=_kmv_distinct,
        ),
        AuditPath(
            name="bootstrap_mean",
            family="sampling",
            claim="ci",
            claimed_coverage=0.95,
            description="Percentile bootstrap CI for AVG from an SRS(300)",
            run=_bootstrap_mean,
            heavy=True,
        ),
        AuditPath(
            name="histogram_equidepth_range",
            family="synopsis",
            claim="bound",
            claimed_coverage=1.0,
            description=(
                "Equi-depth histogram range COUNT within the deterministic "
                "partial-bucket mass bound"
            ),
            run=_histogram_range,
        ),
        AuditPath(
            name="wavelet_range_sum",
            family="synopsis",
            claim="none",
            claimed_coverage=None,
            description=(
                "Haar wavelet range count: NO a-priori guarantee exists; "
                "realized error recorded for the report only"
            ),
            run=_wavelet_range,
        ),
    ]
