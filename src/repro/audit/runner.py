"""Repeated-trial coverage audits over the audited-path registry.

For every path the runner replays N seeded trials, counts hits (the CI
or bound held) and refusals (the planner declined with
``InfeasiblePlanError`` — honoring the contract, so excluded from the
coverage denominator), and classifies the hit count against the claimed
coverage with the exact two-sided binomial band. All per-trial seeds are
derived from one base seed through ``SeedSequence`` spawns keyed on the
path name, so the whole document is a deterministic function of
``(seed, mode)`` — wall-clock timings are quarantined under the
``timing`` key so reports diff cleanly.
"""

from __future__ import annotations

import math
import time
import zlib
from typing import Dict, List, Optional, Sequence

import numpy as np

from .acceptance import DEFAULT_ALPHA, binomial_acceptance_band, coverage_verdict
from .paths import AuditContext, AuditPath, TrialResult, build_paths

#: default base seed; override with ``--seed`` / ``REPRO_SEED``
DEFAULT_SEED = 1729

#: (light, heavy) trial counts per mode — heavy paths go through the
#: full planner or rebuild synopses per trial, so they get fewer trials
#: but still enough for the binomial band to have teeth.
TRIALS = {"smoke": (50, 20), "full": (200, 60)}

#: TPC-H scale per mode. Smoke must keep lineitem above the advisor's
#: minimum samplable size (10k rows ≈ scale 0.4) or pilot/quickr refuse
#: every trial.
SCALES = {"smoke": 0.45, "full": 1.0}


def trial_seed(base_seed: int, path_name: str, trial: int) -> int:
    """Deterministic, collision-resistant per-trial seed."""
    ss = np.random.SeedSequence(
        [base_seed, zlib.crc32(path_name.encode("utf-8")), trial]
    )
    return int(ss.generate_state(1)[0])


def _mean(values: Sequence[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return math.nan
    return sum(finite) / len(finite)


def _round(x: float, digits: int = 6) -> Optional[float]:
    """JSON-safe rounding: NaN/inf become None (valid, diffable JSON)."""
    if not math.isfinite(x):
        return None
    return round(x, digits)


def audit_one(
    path: AuditPath,
    ctx: AuditContext,
    trials: int,
    base_seed: int,
    alpha: float = DEFAULT_ALPHA,
) -> Dict[str, object]:
    """Run ``trials`` seeded trials of one path and classify the result."""
    outcomes: List[TrialResult] = []
    for trial in range(trials):
        outcomes.append(path.run(ctx, trial_seed(base_seed, path.name, trial)))
    effective = [o for o in outcomes if not o.refused]
    refusals = len(outcomes) - len(effective)
    hits = sum(1 for o in effective if o.hit)

    if path.claim == "none":
        verdict = "n/a"  # nothing claimed, nothing to break
        band = None
        ok = True
    elif not effective:
        verdict = "all_refused"
        band = None
        ok = False  # a path that never answers is audit-dead
    else:
        band = binomial_acceptance_band(
            len(effective), path.claimed_coverage, alpha
        )
        verdict = coverage_verdict(
            hits, len(effective), path.claimed_coverage, alpha
        )
        # Guarantees are one-sided contracts: "conservative" means wider
        # intervals than claimed, which wastes speedup but breaks nothing.
        ok = verdict != "fail_under" or path.expected_failure
    return {
        "name": path.name,
        "family": path.family,
        "claim": path.claim,
        "description": path.description,
        "claimed_coverage": path.claimed_coverage,
        "trials": len(outcomes),
        "refusals": refusals,
        "effective_trials": len(effective),
        "hits": hits,
        "empirical_coverage": (
            _round(hits / len(effective)) if effective else None
        ),
        "acceptance_band": list(band) if band is not None else None,
        "verdict": verdict,
        "expected_failure": path.expected_failure,
        "guarantee_ok": ok,
        "mean_relative_error": _round(
            _mean([o.relative_error for o in effective])
        ),
        "mean_ci_relative_half_width": _round(
            _mean([o.relative_half_width for o in effective])
        ),
    }


def run_audit(
    smoke: bool = False,
    seed: int = DEFAULT_SEED,
    trials: Optional[int] = None,
    heavy_trials: Optional[int] = None,
    scale: Optional[float] = None,
    path_names: Optional[Sequence[str]] = None,
    alpha: float = DEFAULT_ALPHA,
    progress: bool = False,
) -> Dict[str, object]:
    """Audit every registered path; return the report document.

    All statistical keys are deterministic given ``seed``; wall-clock
    goes under ``timing`` only.
    """
    mode = "smoke" if smoke else "full"
    light_default, heavy_default = TRIALS[mode]
    n_light = trials if trials is not None else light_default
    n_heavy = heavy_trials if heavy_trials is not None else heavy_default
    ctx = AuditContext(scale=scale if scale is not None else SCALES[mode])

    paths = build_paths()
    if path_names:
        wanted = set(path_names)
        unknown = wanted - {p.name for p in paths}
        if unknown:
            raise ValueError(f"unknown audit paths: {sorted(unknown)}")
        paths = [p for p in paths if p.name in wanted]

    records: List[Dict[str, object]] = []
    timing: Dict[str, float] = {}
    start = time.perf_counter()
    for path in paths:
        t0 = time.perf_counter()
        record = audit_one(
            path,
            ctx,
            n_heavy if path.heavy else n_light,
            base_seed=seed,
            alpha=alpha,
        )
        timing[path.name] = round(time.perf_counter() - t0, 4)
        records.append(record)
        if progress:
            cov = record["empirical_coverage"]
            print(
                f"  {record['verdict']:>12}  {path.name:<28} "
                f"coverage {cov if cov is not None else '-'} "
                f"(claimed {path.claimed_coverage})"
            )
    timing["total"] = round(time.perf_counter() - start, 4)

    audited = [r for r in records if r["claim"] != "none"]
    failures = [
        r for r in audited
        if r["verdict"] == "fail_under" and not r["expected_failure"]
    ]
    expected = [
        r for r in audited
        if r["expected_failure"] and r["verdict"] == "fail_under"
    ]
    return {
        "schema": 1,
        "mode": mode,
        "seed": seed,
        "alpha": alpha,
        "scale": ctx.scale,
        "trials": {"light": n_light, "heavy": n_heavy},
        "paths": records,
        "summary": {
            "num_paths": len(records),
            "num_audited": len(audited),
            "num_pass": sum(1 for r in audited if r["verdict"] == "pass"),
            "num_conservative": sum(
                1 for r in audited if r["verdict"] == "conservative"
            ),
            "num_expected_failures": len(expected),
            "num_unexpected_failures": len(failures),
            "all_guarantees_ok": all(r["guarantee_ok"] for r in records),
        },
        "timing": timing,
    }
