"""Statistical guarantee-audit subsystem.

The paper's thesis is that AQP schemes trade generality, speedup, and
*a-priori error guarantees* against each other — so a reproduction must
be able to check, empirically, that the guarantees each estimator claims
actually hold. This package provides that check:

* :mod:`~repro.audit.acceptance` — shared binomial/CLT acceptance bands,
  so coverage audits accept/reject with proper statistical tolerances
  instead of hard-coded thresholds (and the whole test suite can reuse
  them);
* :mod:`~repro.audit.oracle` — an exact-answer oracle (memoized) that
  every approximate path is diffed against;
* :mod:`~repro.audit.paths` — the registry of audited estimator paths
  (uniform/stratified/offline samples, Sample+Seek, OLA, ripple join,
  sketches, histograms, wavelets, and the full engine planners);
* :mod:`~repro.audit.runner` — repeated-trial coverage audits: N seeded
  trials per (estimator, query, confidence), hit counts against the
  claimed coverage, and a verdict from the binomial band;
* :mod:`~repro.audit.report` — ``audit/AUDIT_report.json`` serialization
  plus the regression diff against the committed baseline.

Entry points: ``python -m repro audit [--smoke]`` and
``pytest -m audit``.
"""

from .acceptance import (
    binomial_acceptance_band,
    binomial_cdf,
    chi2_upper_bound,
    coverage_lower_bound,
    coverage_verdict,
    mc_mean_band,
    mc_mean_within,
    within_sigma,
)
from .oracle import ExactOracle
from .paths import AuditContext, AuditPath, TrialResult, build_paths
from .report import (
    AUDIT_BASELINE_JSON,
    AUDIT_REPORT_JSON,
    diff_against_baseline,
    load_report,
    write_report,
)
from .runner import run_audit

__all__ = [
    "AUDIT_BASELINE_JSON",
    "AUDIT_REPORT_JSON",
    "AuditContext",
    "AuditPath",
    "ExactOracle",
    "TrialResult",
    "binomial_acceptance_band",
    "binomial_cdf",
    "build_paths",
    "chi2_upper_bound",
    "coverage_lower_bound",
    "coverage_verdict",
    "diff_against_baseline",
    "load_report",
    "mc_mean_band",
    "mc_mean_within",
    "run_audit",
    "within_sigma",
    "write_report",
]
