"""Shared statistical acceptance helpers.

Every "does the guarantee hold?" question in this repo reduces to one of
three shapes, and each gets a proper tolerance here instead of a
hard-coded threshold:

* **Coverage counts** — N seeded trials, each a hit (CI contained the
  truth / the bound held) or a miss. The claimed coverage ``p`` implies
  ``hits ~ Binomial(N, p)``; we accept iff the observed count falls in
  the central two-sided acceptance band at level ``alpha``. Because the
  band is exact-binomial and the trials are seeded, the audit is
  deterministic and non-flaky by construction.
* **Monte-Carlo means** — repeated unbiased estimates whose average must
  sit near the truth. The CLT band ``z_alpha · s/√N`` is the honest
  tolerance.
* **Single estimates with a variance** — the estimator's own standard
  error scaled by a k-sigma factor.

The binomial machinery is exact (log-space PMF summation), so it is valid
at the small trial counts audits actually use.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..core.errorspec import chi2_ppf, normal_ppf

#: Default band level: a 1-in-1000 false-rejection rate per audited path
#: keeps a ~20-path audit's overall false-alarm probability around 2%.
DEFAULT_ALPHA = 1e-3


def _log_binom_pmf(k: int, n: int, p: float) -> float:
    if p <= 0.0:
        return 0.0 if k == 0 else -math.inf
    if p >= 1.0:
        return 0.0 if k == n else -math.inf
    return (
        math.lgamma(n + 1)
        - math.lgamma(k + 1)
        - math.lgamma(n - k + 1)
        + k * math.log(p)
        + (n - k) * math.log(1.0 - p)
    )


def binomial_cdf(k: int, n: int, p: float) -> float:
    """Exact ``P(X <= k)`` for ``X ~ Binomial(n, p)``."""
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    total = 0.0
    for i in range(k + 1):
        total += math.exp(_log_binom_pmf(i, n, p))
    return min(total, 1.0)


def binomial_acceptance_band(
    trials: int, p: float, alpha: float = DEFAULT_ALPHA
) -> Tuple[int, int]:
    """Central two-sided acceptance band for ``Binomial(trials, p)``.

    Returns ``(k_lo, k_hi)`` such that ``P(X < k_lo) <= alpha/2`` and
    ``P(X > k_hi) <= alpha/2``; a true-to-claim estimator's hit count
    lands inside with probability at least ``1 - alpha``. Degenerate
    claims (``p`` of 0 or 1) get the exact one-point band.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"claimed coverage must be in [0, 1], got {p}")
    if p == 0.0:
        return (0, 0)
    if p == 1.0:
        return (trials, trials)
    half = alpha / 2.0
    k_lo = 0
    acc = 0.0
    for k in range(trials + 1):
        acc += math.exp(_log_binom_pmf(k, trials, p))
        if acc > half:
            k_lo = k
            break
    k_hi = trials
    acc = 0.0
    for k in range(trials, -1, -1):
        acc += math.exp(_log_binom_pmf(k, trials, p))
        if acc > half:
            k_hi = k
            break
    return (k_lo, k_hi)


def coverage_lower_bound(
    trials: int, p: float, alpha: float = DEFAULT_ALPHA
) -> int:
    """One-sided version: the smallest hit count consistent with claimed
    coverage ``p`` (use when only under-coverage breaks the contract)."""
    if p <= 0.0:
        return 0
    if p >= 1.0:
        return trials
    acc = 0.0
    for k in range(trials + 1):
        acc += math.exp(_log_binom_pmf(k, trials, p))
        if acc > alpha:
            return k
    return trials


def coverage_verdict(
    hits: int, trials: int, p: float, alpha: float = DEFAULT_ALPHA
) -> str:
    """Classify an observed coverage count against its claim.

    * ``"pass"`` — inside the two-sided band: empirically consistent.
    * ``"fail_under"`` — below the band: the guarantee is broken.
    * ``"conservative"`` — above the band: intervals are wider than
      claimed. Not a broken contract, but flagged because over-wide CIs
      waste the speedup the paper says guarantees must be traded against.
    """
    k_lo, k_hi = binomial_acceptance_band(trials, p, alpha)
    if hits < k_lo:
        return "fail_under"
    if hits > k_hi:
        return "conservative"
    return "pass"


# ----------------------------------------------------------------------
# CLT bands for Monte-Carlo means and single estimates
# ----------------------------------------------------------------------

def mc_mean_band(
    sample_std: float, trials: int, alpha: float = DEFAULT_ALPHA
) -> float:
    """Half-width of the CLT acceptance band for a Monte-Carlo mean of
    ``trials`` unbiased replicates with spread ``sample_std``."""
    if trials < 1:
        raise ValueError("trials must be >= 1")
    z = normal_ppf(1.0 - alpha / 2.0)
    return z * sample_std / math.sqrt(trials)


def mc_mean_within(
    values: Sequence[float], truth: float, alpha: float = DEFAULT_ALPHA
) -> bool:
    """Is the mean of unbiased replicates consistent with ``truth``?

    The tolerance is the replicates' own CLT band, so tightening an
    estimator tightens the test with it.
    """
    n = len(values)
    if n < 2:
        raise ValueError("need at least two replicates")
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    band = mc_mean_band(math.sqrt(var), n, alpha)
    return abs(mean - truth) <= band


def within_sigma(estimate, truth: float, k: float = 4.0) -> bool:
    """Does ``truth`` sit within ``k`` standard errors of an
    :class:`~repro.estimators.closed_form.Estimate`?

    ``k`` defaults to 4 (one-shot test tolerance: false-failure
    probability ~6e-5 under normality).
    """
    se = estimate.std_error
    if not math.isfinite(se) or se == 0.0:
        return estimate.value == truth
    return abs(estimate.value - truth) <= k * se


def chi2_upper_bound(df: int, alpha: float = DEFAULT_ALPHA) -> float:
    """Upper acceptance threshold for a chi-squared statistic with ``df``
    degrees of freedom (uniformity tests and the like)."""
    return chi2_ppf(1.0 - alpha, df)
