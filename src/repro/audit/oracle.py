"""The exact oracle: ground truth for every audited path.

Engine-level paths are diffed against the engine's own exact executor
(same SQL text, no error clause), so the oracle exercises the real
parse/bind/optimize/execute pipeline rather than a parallel
reimplementation. Synopsis-level paths (sketches, histograms, wavelets)
get direct columnar ground truths — distinct counts, frequencies, range
aggregates — computed once and memoized, since a coverage audit replays
the same query across many seeded trials.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.result import QueryResult
from ..engine.database import Database


class ExactOracle:
    """Memoizing exact-answer provider for one database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._sql_cache: Dict[str, QueryResult] = {}
        self._column_cache: Dict[Tuple, object] = {}

    # ------------------------------------------------------------------
    # Engine-level ground truth
    # ------------------------------------------------------------------
    def query(self, sql: str) -> QueryResult:
        """Exact result of ``sql`` through the full engine pipeline."""
        cached = self._sql_cache.get(sql)
        if cached is None:
            cached = self.database.sql(sql)
            assert not cached.is_approximate, (
                "oracle queries must not carry an ERROR clause"
            )
            self._sql_cache[sql] = cached
        return cached

    def scalar(self, sql: str) -> float:
        """Exact scalar answer of a 1x1 aggregate query."""
        return self.query(sql).scalar()

    def groups(self, sql: str, key: str, value: str) -> Dict[object, float]:
        """Exact ``{group key: aggregate}`` mapping for a grouped query."""
        result = self.query(sql)
        keys = result.table[key]
        values = np.asarray(result.table[value], dtype=np.float64)
        return {
            (k.item() if hasattr(k, "item") else k): float(v)
            for k, v in zip(keys, values)
        }

    # ------------------------------------------------------------------
    # Columnar ground truth for synopsis paths
    # ------------------------------------------------------------------
    def _column(self, table: str, column: str) -> np.ndarray:
        return self.database.table(table)[column]

    def distinct_count(self, table: str, column: str) -> int:
        key = ("distinct", table, column)
        if key not in self._column_cache:
            self._column_cache[key] = int(
                len(np.unique(self._column(table, column)))
            )
        return self._column_cache[key]  # type: ignore[return-value]

    def frequencies(self, table: str, column: str) -> Dict[object, int]:
        key = ("freq", table, column)
        if key not in self._column_cache:
            uniq, counts = np.unique(
                self._column(table, column), return_counts=True
            )
            self._column_cache[key] = {
                (u.item() if hasattr(u, "item") else u): int(c)
                for u, c in zip(uniq, counts)
            }
        return self._column_cache[key]  # type: ignore[return-value]

    def range_count(
        self,
        table: str,
        column: str,
        low: Optional[float],
        high: Optional[float],
    ) -> float:
        values = np.asarray(self._column(table, column), dtype=np.float64)
        mask = np.ones(len(values), dtype=bool)
        if low is not None:
            mask &= values >= low
        if high is not None:
            mask &= values <= high
        return float(np.count_nonzero(mask))

    def range_sum(
        self,
        table: str,
        column: str,
        low: Optional[float],
        high: Optional[float],
    ) -> float:
        values = np.asarray(self._column(table, column), dtype=np.float64)
        mask = np.ones(len(values), dtype=bool)
        if low is not None:
            mask &= values >= low
        if high is not None:
            mask &= values <= high
        return float(values[mask].sum())

    def column_sum(self, table: str, column: str) -> float:
        key = ("sum", table, column)
        if key not in self._column_cache:
            self._column_cache[key] = float(
                np.asarray(self._column(table, column), dtype=np.float64).sum()
            )
        return self._column_cache[key]  # type: ignore[return-value]

    def group_sums(
        self, table: str, group_column: str, value_column: str
    ) -> Dict[object, float]:
        key = ("group_sums", table, group_column, value_column)
        if key not in self._column_cache:
            keys = self._column(table, group_column)
            values = np.asarray(
                self._column(table, value_column), dtype=np.float64
            )
            uniq, inverse = np.unique(keys, return_inverse=True)
            sums = np.bincount(inverse, weights=values, minlength=len(uniq))
            self._column_cache[key] = {
                (u.item() if hasattr(u, "item") else u): float(s)
                for u, s in zip(uniq, sums)
            }
        return self._column_cache[key]  # type: ignore[return-value]
