"""Flajolet–Martin / PCSA distinct counting (1985).

The ancestor of HyperLogLog, kept for completeness of the survey's sketch
lineage and because its bitmap form is occasionally handier (bit-OR
mergeable, supports "has this register seen anything" probes). PCSA
(probabilistic counting with stochastic averaging) maintains ``m``
bitmaps; bit ``j`` of a bitmap is set when a hashed item's trailing-zero
count equals ``j``. The estimate is ``m/φ · 2^(mean lowest-unset-bit)``
with Flajolet's correction factor φ ≈ 0.77351.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..core.exceptions import MergeError
from .hashing import hash64

PHI = 0.77351


class FlajoletMartin:
    """PCSA sketch: ``m`` bitmaps of 64 bits each."""

    def __init__(self, num_bitmaps: int = 64, seed: int = 0) -> None:
        if num_bitmaps < 2:
            raise ValueError("num_bitmaps must be >= 2")
        self.num_bitmaps = num_bitmaps
        self.seed = seed
        self.bitmaps = np.zeros(num_bitmaps, dtype=np.uint64)

    def add(self, values: Iterable) -> None:
        arr = np.asarray(values if not np.isscalar(values) else [values])
        if len(arr) == 0:
            return
        h = hash64(arr, seed=self.seed)
        bucket = (h % np.uint64(self.num_bitmaps)).astype(np.int64)
        rest = h // np.uint64(self.num_bitmaps)
        # trailing-zero count of `rest` (capped at 63)
        tz = np.zeros(len(arr), dtype=np.uint64)
        remaining = rest.copy()
        zero_mask = remaining == 0
        remaining[zero_mask] = np.uint64(1) << np.uint64(63)
        for shift in (32, 16, 8, 4, 2, 1):
            mask = (remaining & ((np.uint64(1) << np.uint64(shift)) - np.uint64(1))) == 0
            tz[mask] += np.uint64(shift)
            remaining[mask] >>= np.uint64(shift)
        tz = np.minimum(tz, 63)
        bits = (np.uint64(1) << tz).astype(np.uint64)
        np.bitwise_or.at(self.bitmaps, bucket, bits)

    def _lowest_unset(self, bitmap: np.uint64) -> int:
        """Scalar reference for the vectorized trailing-ones count."""
        b = int(bitmap)
        j = 0
        while b & 1:
            b >>= 1
            j += 1
        return j

    def estimate(self) -> float:
        """Distinct-count estimate via stochastic averaging."""
        # Lowest unset bit = log2 of the lowest zero bit, isolated as
        # ~b & (b + 1); powers of two are exact in float64 so log2 is safe.
        with np.errstate(over="ignore"):
            lowest_zero = ~self.bitmaps & (self.bitmaps + np.uint64(1))
        # An all-ones bitmap makes b+1 wrap to 0: its lowest unset is 64.
        ranks = np.where(
            lowest_zero == 0, 64.0, np.log2(np.maximum(lowest_zero, 1).astype(np.float64))
        )
        mean_r = float(np.mean(ranks))
        return self.num_bitmaps / PHI * (2.0**mean_r)

    @property
    def relative_standard_error(self) -> float:
        return 0.78 / math.sqrt(self.num_bitmaps)

    def merge(self, other: "FlajoletMartin") -> "FlajoletMartin":
        if (
            other.num_bitmaps != self.num_bitmaps
            or other.seed != self.seed
        ):
            raise MergeError("FM merge requires equal geometry and seed")
        out = FlajoletMartin(self.num_bitmaps, seed=self.seed)
        out.bitmaps = self.bitmaps | other.bitmaps
        return out

    def memory_bytes(self) -> int:
        return self.num_bitmaps * 8
