"""Sketch synopses: tiny, mergeable, per-aggregate-specialized."""

from .ams import AMSSketch
from .bloom import BloomFilter
from .countmin import CountMinSketch
from .countsketch import CountSketch
from .fm import FlajoletMartin
from .hyperloglog import HyperLogLog, hll_from_column
from .kmv import KMVSketch
from .quantiles import GKQuantileSketch
from .spacesaving import SpaceSaving

__all__ = [
    "AMSSketch",
    "BloomFilter",
    "CountMinSketch",
    "CountSketch",
    "FlajoletMartin",
    "GKQuantileSketch",
    "HyperLogLog",
    "KMVSketch",
    "SpaceSaving",
    "hll_from_column",
]
