"""AMS (Alon–Matias–Szegedy 1996) F₂ sketches.

The second frequency moment ``F₂ = Σ f(x)²`` is the self-join size — the
quantity join-size estimation and skew detection need. The AMS "tug of
war" sketch maintains ``depth × width`` random-sign counters; each row's
mean-of-squares is an unbiased F₂ estimate and the median over rows gives
the (ε, δ) guarantee. Two sketches with shared randomness also yield an
unbiased estimate of the *join size* Σ f(x)·g(x).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from ..core.exceptions import MergeError
from .hashing import hash64


class AMSSketch:
    """Tug-of-war sketch for F₂ and join sizes."""

    def __init__(self, depth: int = 7, width: int = 64, seed: int = 0) -> None:
        if depth < 1 or width < 1:
            raise ValueError("depth and width must be positive")
        self.depth = depth
        self.width = width
        self.seed = seed
        self.counters = np.zeros((depth, width), dtype=np.float64)
        self.total = 0

    def _signs(self, arr: np.ndarray, row: int, col: int) -> np.ndarray:
        bits = hash64(arr, seed=self.seed * 4000 + row * 131 + col) & np.uint64(1)
        return np.where(bits.astype(bool), 1.0, -1.0)

    def add(self, values: Iterable, counts: Optional[np.ndarray] = None) -> None:
        arr = np.asarray(values if not np.isscalar(values) else [values])
        if len(arr) == 0:
            return
        if counts is None:
            counts = np.ones(len(arr), dtype=np.float64)
        else:
            counts = np.asarray(counts, dtype=np.float64)
        for row in range(self.depth):
            for col in range(self.width):
                self.counters[row, col] += float(
                    np.sum(self._signs(arr, row, col) * counts)
                )
        self.total += int(counts.sum())

    # ------------------------------------------------------------------
    def second_moment(self) -> float:
        """Median-of-means F₂ estimate."""
        per_row = np.mean(self.counters**2, axis=1)
        return float(np.median(per_row))

    def join_size(self, other: "AMSSketch") -> float:
        """Unbiased estimate of Σ_x f(x)·g(x) (equi-join output size)."""
        if (
            other.depth != self.depth
            or other.width != self.width
            or other.seed != self.seed
        ):
            raise MergeError("AMS join size requires identical shape and seed")
        per_row = np.mean(self.counters * other.counters, axis=1)
        return float(np.median(per_row))

    def merge(self, other: "AMSSketch") -> "AMSSketch":
        """Sketch of the concatenated streams (counters add)."""
        if (
            other.depth != self.depth
            or other.width != self.width
            or other.seed != self.seed
        ):
            raise MergeError("AMS merge requires identical shape and seed")
        merged = AMSSketch(self.depth, self.width, seed=self.seed)
        merged.counters = self.counters + other.counters
        merged.total = self.total + other.total
        return merged

    def memory_bytes(self) -> int:
        return int(self.counters.nbytes)

    @property
    def relative_standard_error(self) -> float:
        """Per-row F₂ estimator has relative std ≈ sqrt(2/width)."""
        return math.sqrt(2.0 / self.width)
