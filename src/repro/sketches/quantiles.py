"""Greenwald–Khanna quantile sketch (2001).

Answers any quantile query with rank error at most ``ε·n`` from
O((1/ε)·log(εn)) stored tuples — the synopsis for medians/percentiles,
which linear-aggregate sampling handles poorly at the tails. Each stored
tuple is ``(value, g, Δ)`` where ``g`` is the rank gap to the previous
tuple and ``Δ`` the maximum extra rank uncertainty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np


@dataclass
class _Tuple:
    value: float
    g: int
    delta: int


class GKQuantileSketch:
    """ε-approximate quantiles over a stream of floats."""

    def __init__(self, epsilon: float = 0.01) -> None:
        if not (0.0 < epsilon < 0.5):
            raise ValueError("epsilon must be in (0, 0.5)")
        self.epsilon = epsilon
        self._tuples: List[_Tuple] = []
        self.count = 0
        self._since_compress = 0

    # ------------------------------------------------------------------
    def add(self, values: Iterable) -> None:
        for v in np.asarray(values, dtype=np.float64).ravel():
            self._insert(float(v))

    def _insert(self, value: float) -> None:
        self.count += 1
        tuples = self._tuples
        # Find insertion point.
        lo, hi = 0, len(tuples)
        while lo < hi:
            mid = (lo + hi) // 2
            if tuples[mid].value < value:
                lo = mid + 1
            else:
                hi = mid
        idx = lo
        if idx == 0 or idx == len(tuples):
            delta = 0  # new min or max is exact
        else:
            delta = max(int(math.floor(2 * self.epsilon * self.count)) - 1, 0)
        tuples.insert(idx, _Tuple(value=value, g=1, delta=delta))
        self._since_compress += 1
        if self._since_compress >= int(1.0 / (2.0 * self.epsilon)):
            self._compress()
            self._since_compress = 0

    def _compress(self) -> None:
        """Merge adjacent tuples whose combined uncertainty stays within
        the 2εn band."""
        if len(self._tuples) < 3:
            return
        bound = int(math.floor(2 * self.epsilon * self.count))
        merged: List[_Tuple] = []
        i = 0
        tuples = self._tuples
        while i < len(tuples) - 1:
            cur = tuples[i]
            nxt = tuples[i + 1]
            if i > 0 and cur.g + nxt.g + nxt.delta <= bound:
                nxt.g += cur.g  # absorb cur into nxt
                i += 1
                continue
            merged.append(cur)
            i += 1
        merged.append(tuples[-1])
        self._tuples = merged

    # ------------------------------------------------------------------
    def query(self, phi: float) -> float:
        """Value at quantile ``phi`` ∈ [0, 1] with rank error ≤ εn."""
        if not (0.0 <= phi <= 1.0):
            raise ValueError("phi must be in [0, 1]")
        if not self._tuples:
            return math.nan
        if phi <= 0.0:
            return self._tuples[0].value  # GK keeps the exact minimum
        if phi >= 1.0:
            return self._tuples[-1].value  # ... and the exact maximum
        target = phi * self.count
        bound = self.epsilon * self.count
        rank = 0
        prev = self._tuples[0]
        for t in self._tuples:
            rank += t.g
            if rank + t.delta > target + bound:
                return prev.value
            prev = t
        return self._tuples[-1].value

    def median(self) -> float:
        return self.query(0.5)

    def quantiles(self, phis: Iterable[float]) -> np.ndarray:
        return np.asarray([self.query(p) for p in phis])

    def memory_entries(self) -> int:
        return len(self._tuples)

    @property
    def rank_error_bound(self) -> float:
        return self.epsilon * self.count
