"""Count-Sketch (Charikar, Chen, Farach-Colton 2002).

Like Count-Min but with random signs: estimates are *unbiased*, with
error proportional to the stream's L2 norm (√F₂) rather than L1 (N).
Unbiasedness makes it the right frequency sketch to embed inside other
estimators; the two-sided noise makes it worse than CM for heavy hitters
on light-tailed streams — another of the "pick your sketch per query"
specializations.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from ..core.exceptions import MergeError
from .hashing import hash64_batch


class CountSketch:
    """Unbiased frequency sketch with L2 error guarantees."""

    def __init__(self, depth: int = 5, width: int = 2048, seed: int = 0) -> None:
        if depth < 1 or width < 2:
            raise ValueError("depth must be >=1 and width >=2")
        self.depth = depth
        self.width = width
        self.seed = seed
        self.counters = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    # ------------------------------------------------------------------
    def _buckets_and_signs(self, arr: np.ndarray):
        """(depth, n) bucket indices and ±1 signs from one batched hash.

        The bucket seeds and sign seeds are interleaved into a single
        :func:`hash64_batch` call so the value -> uint64 conversion runs
        once for all ``2 * depth`` hash rows.
        """
        seeds = [self.seed * 2000 + row for row in range(self.depth)]
        seeds += [self.seed * 2000 + row + 7919 for row in range(self.depth)]
        hashes = hash64_batch(arr, seeds)
        idx = (hashes[: self.depth] % np.uint64(self.width)).astype(np.int64)
        signs = np.where(
            (hashes[self.depth :] & np.uint64(1)).astype(bool), 1, -1
        )
        return idx, signs

    def add(self, values: Iterable, counts: Optional[np.ndarray] = None) -> None:
        arr = np.asarray(values if not np.isscalar(values) else [values])
        if len(arr) == 0:
            return
        if counts is None:
            counts = np.ones(len(arr), dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
        idx, signs = self._buckets_and_signs(arr)
        for row in range(self.depth):
            np.add.at(self.counters[row], idx[row], signs[row] * counts)
        self.total += int(counts.sum())

    def query(self, values: Iterable) -> np.ndarray:
        """Median-of-rows unbiased frequency estimates."""
        arr = np.asarray(values if not np.isscalar(values) else [values])
        if len(arr) == 0:
            return np.array([])
        idx, signs = self._buckets_and_signs(arr)
        rows = np.empty((self.depth, len(arr)), dtype=np.float64)
        for row in range(self.depth):
            rows[row] = signs[row] * self.counters[row][idx[row]]
        return np.median(rows, axis=0)

    def query_one(self, value) -> float:
        return float(self.query(np.asarray([value]))[0])

    # ------------------------------------------------------------------
    def second_moment(self) -> float:
        """Unbiased-ish F₂ estimate: median over rows of Σ bucket²."""
        per_row = np.sum(self.counters.astype(np.float64) ** 2, axis=1)
        return float(np.median(per_row))

    def memory_bytes(self) -> int:
        return int(self.counters.nbytes)

    def merge(self, other: "CountSketch") -> "CountSketch":
        if (
            other.width != self.width
            or other.depth != self.depth
            or other.seed != self.seed
        ):
            raise MergeError("CountSketch merge requires equal shape and seed")
        merged = CountSketch(self.depth, self.width, seed=self.seed)
        merged.counters = self.counters + other.counters
        merged.total = self.total + other.total
        return merged
