"""Count-Min sketch (Cormode & Muthukrishnan 2005).

Point-frequency and heavy-hitter queries from O(d·w) counters: estimates
are biased *upward* by at most ``ε·N`` with probability ``1-δ`` for
``w = ⌈e/ε⌉`` and ``d = ⌈ln(1/δ)⌉``. The a-priori, data-independent
guarantee is exactly what sampling cannot give for frequencies of rare
items — and the one-sided bias is the price.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

import numpy as np

from ..core.exceptions import MergeError
from .hashing import hash64_batch


class CountMinSketch:
    """Frequency sketch with one-sided (ε, δ) guarantees."""

    def __init__(
        self,
        epsilon: float = 0.001,
        delta: float = 0.01,
        seed: int = 0,
    ) -> None:
        if not (0 < epsilon < 1) or not (0 < delta < 1):
            raise ValueError("epsilon and delta must be in (0, 1)")
        self.epsilon = epsilon
        self.delta = delta
        self.width = int(math.ceil(math.e / epsilon))
        self.depth = int(math.ceil(math.log(1.0 / delta)))
        self.seed = seed
        self.counters = np.zeros((self.depth, self.width), dtype=np.int64)
        self.total = 0

    @classmethod
    def with_shape(cls, depth: int, width: int, seed: int = 0) -> "CountMinSketch":
        """Construct directly from a counter shape (for memory sweeps)."""
        sketch = cls.__new__(cls)
        sketch.epsilon = math.e / width
        sketch.delta = math.exp(-depth)
        sketch.width = width
        sketch.depth = depth
        sketch.seed = seed
        sketch.counters = np.zeros((depth, width), dtype=np.int64)
        sketch.total = 0
        return sketch

    # ------------------------------------------------------------------
    def _bucket_matrix(self, arr: np.ndarray) -> np.ndarray:
        """(depth, n) bucket indices; one value->uint64 conversion total.

        Both update and query go through here so they are guaranteed to
        agree on the hash, and string columns pay the stringify cost once
        rather than once per sketch row.
        """
        seeds = [self.seed * 1000 + row for row in range(self.depth)]
        hashes = hash64_batch(arr, seeds)
        return (hashes % np.uint64(self.width)).astype(np.int64)

    def add(self, values: Iterable, counts: Optional[np.ndarray] = None) -> None:
        """Add a batch of items, optionally with per-item multiplicities."""
        arr = np.asarray(values if not np.isscalar(values) else [values])
        if len(arr) == 0:
            return
        if counts is None:
            counts = np.ones(len(arr), dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
        idx = self._bucket_matrix(arr)
        for row in range(self.depth):
            np.add.at(self.counters[row], idx[row], counts)
        self.total += int(counts.sum())

    def query(self, values: Iterable) -> np.ndarray:
        """Estimated frequencies (vectorized, min over rows)."""
        arr = np.asarray(values if not np.isscalar(values) else [values])
        if len(arr) == 0:
            return np.array([], dtype=np.int64)
        idx = self._bucket_matrix(arr)
        best = np.full(len(arr), np.iinfo(np.int64).max, dtype=np.int64)
        for row in range(self.depth):
            best = np.minimum(best, self.counters[row][idx[row]])
        return best

    def query_one(self, value) -> int:
        return int(self.query(np.asarray([value]))[0])

    # ------------------------------------------------------------------
    @property
    def error_bound(self) -> float:
        """Additive error bound ε·N holding with probability 1-δ."""
        return self.epsilon * self.total

    @property
    def failure_probability(self) -> float:
        """δ: probability a point query exceeds :attr:`error_bound` —
        the claimed coverage audited by ``python -m repro audit``."""
        return self.delta

    def memory_bytes(self) -> int:
        return int(self.counters.nbytes)

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        if (
            other.width != self.width
            or other.depth != self.depth
            or other.seed != self.seed
        ):
            raise MergeError("CM merge requires equal shape and seed")
        merged = CountMinSketch.with_shape(self.depth, self.width, seed=self.seed)
        merged.counters = self.counters + other.counters
        merged.total = self.total + other.total
        merged.epsilon = self.epsilon
        merged.delta = self.delta
        return merged

    def inner_product(self, other: "CountMinSketch") -> int:
        """Upper estimate of Σ_x f(x)·g(x) — the join-size estimator."""
        if other.width != self.width or other.depth != self.depth or other.seed != self.seed:
            raise MergeError("inner product requires equal shape and seed")
        per_row = np.einsum("ij,ij->i", self.counters, other.counters)
        return int(per_row.min())
