"""HyperLogLog distinct counting (Flajolet et al. 2007).

COUNT DISTINCT is the survey's canonical example of an aggregate sampling
*cannot* answer: a uniform sample of rows says almost nothing about how
many distinct values the unsampled rows hide. HLL answers it in a few KB
with a guaranteed ~1.04/√m relative standard error — but answers *only*
that, the specialization trade-off experiment E5 measures.

Implementation notes: 2^p registers, 64-bit hashing, the classic bias
correction for small cardinalities (linear counting) and the standard
α_m constants. Mergeable by register-wise max.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from ..core.exceptions import MergeError
from .hashing import hash64


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """Distinct-count sketch with ~1.04/√(2^p) relative standard error."""

    def __init__(self, precision: int = 12, seed: int = 0) -> None:
        if not (4 <= precision <= 18):
            raise ValueError("precision must be in [4, 18]")
        self.precision = precision
        self.num_registers = 1 << precision
        self.seed = seed
        self.registers = np.zeros(self.num_registers, dtype=np.uint8)

    # ------------------------------------------------------------------
    def add(self, values: Iterable) -> None:
        """Add a batch of values (vectorized)."""
        arr = np.asarray(values if not np.isscalar(values) else [values])
        if len(arr) == 0:
            return
        h = hash64(arr, seed=self.seed)
        idx = (h >> np.uint64(64 - self.precision)).astype(np.int64)
        rest = (h << np.uint64(self.precision)) | np.uint64(
            (1 << self.precision) - 1
        )
        # rank = leading zeros of `rest` + 1, capped at 64 - p + 1
        ranks = np.empty(len(arr), dtype=np.uint8)
        remaining = rest.copy()
        rank = np.ones(len(arr), dtype=np.int64)
        # Count leading zero bits via successive halving.
        for shift in (32, 16, 8, 4, 2, 1):
            mask = remaining < (np.uint64(1) << np.uint64(64 - shift))
            rank[mask] += shift
            remaining[mask] = remaining[mask] << np.uint64(shift)
        ranks = np.minimum(rank, 64 - self.precision + 1).astype(np.uint8)
        np.maximum.at(self.registers, idx, ranks)

    def estimate(self) -> float:
        """Estimated number of distinct values added so far."""
        m = self.num_registers
        regs = self.registers.astype(np.float64)
        raw = _alpha(m) * m * m / float(np.sum(np.exp2(-regs)))
        zeros = int(np.sum(self.registers == 0))
        if raw <= 2.5 * m and zeros > 0:
            return m * math.log(m / zeros)  # linear counting regime
        return raw

    @property
    def relative_standard_error(self) -> float:
        return 1.04 / math.sqrt(self.num_registers)

    def memory_bytes(self) -> int:
        return self.num_registers  # one byte per register

    # ------------------------------------------------------------------
    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Union of two sketches (register-wise max); both must agree on
        precision and hash seed."""
        if (
            other.precision != self.precision
            or other.seed != self.seed
        ):
            raise MergeError("HLL merge requires equal precision and seed")
        merged = HyperLogLog(self.precision, seed=self.seed)
        merged.registers = np.maximum(self.registers, other.registers)
        return merged

    def __len__(self) -> int:
        return round(self.estimate())


def hll_from_column(values: np.ndarray, precision: int = 12, seed: int = 0) -> HyperLogLog:
    """Build an HLL over a whole column in one call."""
    sketch = HyperLogLog(precision=precision, seed=seed)
    sketch.add(values)
    return sketch


def sample_based_distinct_estimate(
    sample_values: np.ndarray, sample_fraction: float, population_size: int
) -> float:
    """The (bad) sampling estimator for COUNT DISTINCT, for comparison.

    Uses the Goodman/"birthday" style scale-up d̂ = d + f1·(1/q - 1) where
    f1 is the number of values seen exactly once — still badly biased for
    skewed data, which is the point of experiment E5.
    """
    uniq, counts = np.unique(sample_values, return_counts=True)
    d = len(uniq)
    f1 = int(np.sum(counts == 1))
    q = max(sample_fraction, 1e-12)
    est = d + f1 * (1.0 / q - 1.0)
    return float(min(est, population_size))
