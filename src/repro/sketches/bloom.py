"""Bloom filters.

Membership synopses: no false negatives, tunable false-positive rate.
In AQP pipelines they pre-filter semi-joins ("does this key exist on the
other side at all?") before any sampling happens, and they illustrate the
survey's point that synopses answer *decision* queries sampling handles
poorly (a uniform sample can only bound membership probabilistically).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..core.exceptions import MergeError
from .hashing import hash64_batch


def optimal_parameters(expected_items: int, fp_rate: float) -> tuple:
    """(num_bits, num_hashes) minimizing space for the target FP rate."""
    if expected_items < 1:
        raise ValueError("expected_items must be >= 1")
    if not (0.0 < fp_rate < 1.0):
        raise ValueError("fp_rate must be in (0, 1)")
    num_bits = int(math.ceil(-expected_items * math.log(fp_rate) / (math.log(2) ** 2)))
    num_hashes = max(1, int(round(num_bits / expected_items * math.log(2))))
    return num_bits, num_hashes


class BloomFilter:
    """Standard Bloom filter with k independent hash probes."""

    def __init__(
        self,
        expected_items: int = 10_000,
        fp_rate: float = 0.01,
        seed: int = 0,
    ) -> None:
        self.num_bits, self.num_hashes = optimal_parameters(expected_items, fp_rate)
        self.seed = seed
        self.bits = np.zeros(self.num_bits, dtype=bool)
        self.items_added = 0

    def _probe_matrix(self, arr: np.ndarray) -> np.ndarray:
        """(num_hashes, n) bit positions from one batched hash call."""
        seeds = [self.seed * 3000 + probe for probe in range(self.num_hashes)]
        return (hash64_batch(arr, seeds) % np.uint64(self.num_bits)).astype(np.int64)

    def add(self, values: Iterable) -> None:
        arr = np.asarray(values if not np.isscalar(values) else [values])
        if len(arr) == 0:
            return
        idx = self._probe_matrix(arr)
        self.bits[idx.ravel()] = True
        self.items_added += len(arr)

    def contains(self, values: Iterable) -> np.ndarray:
        """Vectorized membership test (True may be a false positive)."""
        arr = np.asarray(values if not np.isscalar(values) else [values])
        if len(arr) == 0:
            return np.array([], dtype=bool)
        idx = self._probe_matrix(arr)
        return self.bits[idx].all(axis=0)

    def contains_one(self, value) -> bool:
        return bool(self.contains(np.asarray([value]))[0])

    # ------------------------------------------------------------------
    @property
    def fill_fraction(self) -> float:
        return float(np.mean(self.bits))

    def estimated_fp_rate(self) -> float:
        """Current false-positive probability from the fill fraction."""
        return self.fill_fraction**self.num_hashes

    def memory_bytes(self) -> int:
        return (self.num_bits + 7) // 8

    def merge(self, other: "BloomFilter") -> "BloomFilter":
        """Union of the underlying sets (bitwise OR)."""
        if other.num_bits != self.num_bits or other.num_hashes != self.num_hashes or other.seed != self.seed:
            raise MergeError("Bloom merge requires identical geometry and seed")
        merged = BloomFilter.__new__(BloomFilter)
        merged.num_bits = self.num_bits
        merged.num_hashes = self.num_hashes
        merged.seed = self.seed
        merged.bits = self.bits | other.bits
        merged.items_added = self.items_added + other.items_added
        return merged
