"""Hash families shared by sketches and hash-based samplers.

All sketches need independent-ish hash functions; the universe sampler
needs a hash both join sides agree on. We provide:

* :func:`hash64` — a vectorized splitmix64-style avalanche hash of
  arbitrary numpy arrays (ints hashed directly, everything else via
  stable per-value Python hashing of its string form);
* :class:`TabulationHash` — 4-wise-ish independent tabulation hashing,
  the strongest cheap family, used where independence matters (KMV);
* :func:`multiply_shift` — the classic 2-universal family for Count-Min
  rows.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _to_uint64(values: np.ndarray) -> np.ndarray:
    """Map arbitrary values to uint64 inputs deterministically."""
    arr = np.asarray(values)
    if arr.dtype.kind in ("i", "u"):
        return arr.astype(np.uint64)
    if arr.dtype.kind == "b":
        return arr.astype(np.uint64)
    if arr.dtype.kind == "f":
        # Bit-pattern of the float; normalize -0.0 to 0.0 first.
        f = arr.astype(np.float64)
        f = np.where(f == 0.0, 0.0, f)
        return f.view(np.uint64)
    # Strings / objects: stable digest of the string form.
    out = np.empty(len(arr), dtype=np.uint64)
    for i, v in enumerate(arr):
        digest = hashlib.blake2b(str(v).encode("utf-8"), digest_size=8).digest()
        out[i] = np.uint64(int.from_bytes(digest, "little"))
    return out


def hash64(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized 64-bit avalanche hash (splitmix64 finalizer)."""
    x = _to_uint64(values)
    with np.errstate(over="ignore"):
        x = (x + np.uint64((seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)) & _MASK64
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9) & _MASK64
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB) & _MASK64
        x = x ^ (x >> np.uint64(31))
    return x


def hash_unit_interval(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Hash values to floats uniform in [0, 1) — the universe sampler's
    and KMV's shared coordinate system."""
    return hash64(values, seed=seed).astype(np.float64) / float(2**64)


def multiply_shift(values: np.ndarray, seed: int, out_bits: int) -> np.ndarray:
    """2-universal multiply-shift hashing to ``out_bits``-bit outputs."""
    if not (1 <= out_bits <= 63):
        raise ValueError("out_bits must be in [1, 63]")
    rng = np.random.default_rng(seed)
    a = np.uint64(rng.integers(1, 2**63, dtype=np.int64) * 2 + 1)  # odd
    x = _to_uint64(values)
    with np.errstate(over="ignore"):
        product = (x * a) & _MASK64
    return (product >> np.uint64(64 - out_bits)).astype(np.int64)


class TabulationHash:
    """Simple tabulation hashing over 8 byte-tables.

    Tabulation hashing is 3-independent and behaves like a fully random
    hash for most algorithms (Patrascu & Thorup), making it a good default
    for KMV and HLL where bias in weak families shows up as estimate bias.
    """

    def __init__(self, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.tables = rng.integers(
            0, 2**63, size=(8, 256), dtype=np.int64
        ).astype(np.uint64)

    def hash(self, values: np.ndarray) -> np.ndarray:
        x = _to_uint64(values)
        out = np.zeros(len(x), dtype=np.uint64)
        for byte in range(8):
            chunk = ((x >> np.uint64(8 * byte)) & np.uint64(0xFF)).astype(np.int64)
            out ^= self.tables[byte][chunk]
        return out

    def unit(self, values: np.ndarray) -> np.ndarray:
        return self.hash(values).astype(np.float64) / float(2**64)
