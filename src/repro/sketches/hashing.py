"""Hash families shared by sketches and hash-based samplers.

All sketches need independent-ish hash functions; the universe sampler
needs a hash both join sides agree on. We provide:

* :func:`hash64` — a vectorized splitmix64-style avalanche hash of
  arbitrary numpy arrays (ints hashed directly, strings via a vectorized
  FNV-1a over their codepoint matrix);
* :func:`hash64_batch` — the same hash under many seeds at once, paying
  the value -> uint64 conversion exactly once (the conversion, not the
  mixing, dominates for string columns);
* :class:`TabulationHash` — 4-wise-ish independent tabulation hashing,
  the strongest cheap family, used where independence matters (KMV);
* :func:`multiply_shift` — the classic 2-universal family for Count-Min
  rows.

Scalar reference implementations (:func:`hash64_scalar`) are kept in
pure Python so the vectorized kernels can be property-tested against
them item by item.
"""

from __future__ import annotations

import struct
from typing import Optional, Sequence

import numpy as np

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_MASK64_INT = 0xFFFFFFFFFFFFFFFF

#: FNV-1a 64-bit constants, used for the vectorized string path.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x00000100000001B3


def _strings_to_uint64(arr: np.ndarray) -> np.ndarray:
    """Vectorized FNV-1a over the UTF-32 codepoint matrix of a string
    (or object) column.

    ``astype("U")`` stringifies every element at C speed; viewing the
    resulting fixed-width buffer as uint32 yields an (n, maxlen)
    codepoint matrix we can fold column by column — maxlen iterations of
    whole-array arithmetic instead of one Python hash call per row.
    """
    s = arr if arr.dtype.kind == "U" else arr.astype("U")
    n = len(s)
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    width = s.dtype.itemsize // 4  # UTF-32 codepoints per slot
    lengths = np.char.str_len(s).astype(np.uint64)
    h = np.full(n, _FNV_OFFSET, dtype=np.uint64)
    if width:
        codes = np.ascontiguousarray(s).view(np.uint32).reshape(n, width)
        prime = np.uint64(_FNV_PRIME)
        with np.errstate(over="ignore"):
            for j in range(width):
                active = np.uint64(j) < lengths
                mixed = (h ^ codes[:, j].astype(np.uint64)) * prime
                h = np.where(active, mixed, h)
    # Fold the length in so prefixes do not collide with their padding.
    with np.errstate(over="ignore"):
        h = (h ^ lengths) * np.uint64(_FNV_PRIME)
    return h


def _to_uint64(values: np.ndarray) -> np.ndarray:
    """Map arbitrary values to uint64 inputs deterministically."""
    arr = np.asarray(values)
    if arr.dtype.kind in ("i", "u"):
        return arr.astype(np.uint64)
    if arr.dtype.kind == "b":
        return arr.astype(np.uint64)
    if arr.dtype.kind == "f":
        # Bit-pattern of the float; normalize -0.0 to 0.0 first.
        f = arr.astype(np.float64)
        f = np.where(f == 0.0, 0.0, f)
        return f.view(np.uint64)
    # Strings / objects: vectorized digest of the string form.
    return _strings_to_uint64(arr)


def _finalize(x: np.ndarray, seed: int) -> np.ndarray:
    """splitmix64 finalizer applied to pre-converted uint64 inputs."""
    with np.errstate(over="ignore"):
        x = (x + np.uint64((seed * 0x9E3779B97F4A7C15) & _MASK64_INT)) & _MASK64
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9) & _MASK64
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB) & _MASK64
        x = x ^ (x >> np.uint64(31))
    return x


def hash64(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized 64-bit avalanche hash (splitmix64 finalizer)."""
    return _finalize(_to_uint64(values), seed)


def hash64_batch(values: np.ndarray, seeds: Sequence[int]) -> np.ndarray:
    """Hash one batch of values under many seeds at once.

    Returns an array of shape ``(len(seeds), len(values))`` where row
    ``i`` equals ``hash64(values, seeds[i])`` bit for bit. The value ->
    uint64 conversion (the expensive part for string columns) happens
    once instead of once per seed, which is what multi-row sketches
    (Count-Min, Count-Sketch, Bloom) want for both update and query.
    """
    x = _to_uint64(np.asarray(values))
    out = np.empty((len(seeds), len(x)), dtype=np.uint64)
    for i, seed in enumerate(seeds):
        out[i] = _finalize(x, seed)
    return out


def hash_unit_interval(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Hash values to floats uniform in [0, 1) — the universe sampler's
    and KMV's shared coordinate system."""
    return hash64(values, seed=seed).astype(np.float64) / float(2**64)


# ----------------------------------------------------------------------
# Scalar reference implementations (property-test oracles)
# ----------------------------------------------------------------------
def _to_uint64_scalar(value) -> int:
    """Pure-Python mirror of :func:`_to_uint64` for one value."""
    if isinstance(value, (bool, np.bool_)):
        return int(value)
    if isinstance(value, (int, np.integer)):
        return int(value) & _MASK64_INT
    if isinstance(value, (float, np.floating)):
        f = float(value)
        if f == 0.0:
            f = 0.0
        return struct.unpack("<Q", struct.pack("<d", f))[0]
    s = str(value)
    h = _FNV_OFFSET
    for ch in s:
        h = ((h ^ ord(ch)) * _FNV_PRIME) & _MASK64_INT
    return ((h ^ len(s)) * _FNV_PRIME) & _MASK64_INT


def hash64_scalar(value, seed: int = 0) -> int:
    """Pure-Python mirror of :func:`hash64` for a single value."""
    x = (_to_uint64_scalar(value) + seed * 0x9E3779B97F4A7C15) & _MASK64_INT
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64_INT
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64_INT
    return (x ^ (x >> 31)) & _MASK64_INT


def multiply_shift(values: np.ndarray, seed: int, out_bits: int) -> np.ndarray:
    """2-universal multiply-shift hashing to ``out_bits``-bit outputs."""
    if not (1 <= out_bits <= 63):
        raise ValueError("out_bits must be in [1, 63]")
    rng = np.random.default_rng(seed)
    a = np.uint64(rng.integers(1, 2**63, dtype=np.int64) * 2 + 1)  # odd
    x = _to_uint64(values)
    with np.errstate(over="ignore"):
        product = (x * a) & _MASK64
    return (product >> np.uint64(64 - out_bits)).astype(np.int64)


class TabulationHash:
    """Simple tabulation hashing over 8 byte-tables.

    Tabulation hashing is 3-independent and behaves like a fully random
    hash for most algorithms (Patrascu & Thorup), making it a good default
    for KMV and HLL where bias in weak families shows up as estimate bias.
    """

    def __init__(self, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.tables = rng.integers(
            0, 2**63, size=(8, 256), dtype=np.int64
        ).astype(np.uint64)

    def hash(self, values: np.ndarray) -> np.ndarray:
        x = _to_uint64(values)
        out = np.zeros(len(x), dtype=np.uint64)
        for byte in range(8):
            chunk = ((x >> np.uint64(8 * byte)) & np.uint64(0xFF)).astype(np.int64)
            out ^= self.tables[byte][chunk]
        return out

    def unit(self, values: np.ndarray) -> np.ndarray:
        return self.hash(values).astype(np.float64) / float(2**64)
