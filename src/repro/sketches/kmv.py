"""K-Minimum-Values / theta sketch (Bar-Yossef et al. 2002; Dasgupta 2016).

Keeps the k smallest hash values seen; the k-th smallest value ``θ``
estimates distinct count as ``(k-1)/θ``. Unlike HLL, KMV supports *set
operations with error bounds* — union, intersection, difference — which
is why theta sketches power approximate distinct-count joins in systems
like Druid/DataSketches. We implement union (exact over sketches) and
intersection/Jaccard via the θ-sampling view.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

import numpy as np

from ..core.exceptions import MergeError
from .hashing import hash_unit_interval


class KMVSketch:
    """Bottom-k sketch over the unit interval."""

    def __init__(self, k: int = 1024, seed: int = 0) -> None:
        if k < 8:
            raise ValueError("k must be >= 8")
        self.k = k
        self.seed = seed
        #: sorted array of the k smallest distinct hash coordinates
        self.values = np.array([], dtype=np.float64)

    # ------------------------------------------------------------------
    def add(self, values: Iterable) -> None:
        arr = np.asarray(values if not np.isscalar(values) else [values])
        if len(arr) == 0:
            return
        coords = hash_unit_interval(arr, seed=self.seed)
        if len(self.values) == self.k:
            # Coordinates at or above theta can never enter the bottom-k;
            # dropping them first keeps the sort-merge at O(k) per batch.
            coords = coords[coords < self.values[-1]]
            if len(coords) == 0:
                return
        merged = np.unique(np.concatenate([self.values, coords]))
        self.values = merged[: self.k]

    @property
    def theta(self) -> float:
        """The inclusion threshold: the k-th smallest hash (1.0 if the
        sketch has not filled up, i.e. it is exact)."""
        if len(self.values) < self.k:
            return 1.0
        return float(self.values[-1])

    def estimate(self) -> float:
        """Estimated distinct count."""
        if len(self.values) < self.k:
            return float(len(self.values))
        return (self.k - 1) / self.theta

    @property
    def relative_standard_error(self) -> float:
        return 1.0 / math.sqrt(self.k - 2)

    def memory_bytes(self) -> int:
        return self.k * 8

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def union(self, other: "KMVSketch") -> "KMVSketch":
        if other.seed != self.seed:
            raise MergeError("KMV union requires identical hash seed")
        out = KMVSketch(k=min(self.k, other.k), seed=self.seed)
        merged = np.unique(np.concatenate([self.values, other.values]))
        out.values = merged[: out.k]
        return out

    #: union IS the mergeable-summary operation; the alias gives KMV the
    #: same ``merge`` verb every other sketch exposes (shard fan-in code
    #: folds heterogeneous sketches through one method name).
    merge = union

    def intersection_estimate(self, other: "KMVSketch") -> float:
        """Estimated |A ∩ B| via the common-θ sample.

        Both sketches are θ-samples of their sets under the same hash;
        below ``θ = min(θ_A, θ_B)`` every retained coordinate is an
        unbiased inclusion, so the intersection count scales matches/θ.
        """
        if other.seed != self.seed:
            raise MergeError("KMV intersection requires identical hash seed")
        theta = min(self.theta, other.theta)
        mine = self.values[self.values < theta]
        theirs = other.values[other.values < theta]
        matches = len(np.intersect1d(mine, theirs, assume_unique=True))
        if theta >= 1.0:
            return float(matches)
        return matches / theta

    def jaccard_estimate(self, other: "KMVSketch") -> float:
        theta = min(self.theta, other.theta)
        mine = self.values[self.values < theta]
        theirs = other.values[other.values < theta]
        union = len(np.union1d(mine, theirs))
        if union == 0:
            return 0.0
        matches = len(np.intersect1d(mine, theirs, assume_unique=True))
        return matches / union

    def difference_estimate(self, other: "KMVSketch") -> float:
        """Estimated |A \\ B|."""
        return max(self.estimate() - self.intersection_estimate(other), 0.0)
