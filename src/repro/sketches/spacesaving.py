"""SpaceSaving heavy hitters (Metwally, Agrawal, El Abbadi 2005).

Maintains exactly ``k`` (item, count, overestimate) entries; every item
with true frequency above ``N/k`` is guaranteed to be present and every
reported count overestimates truth by at most the entry's recorded error.
Deterministic guarantees from a fixed-size table — the counter-based
counterpart to Count-Min, and the standard answer to "top-k groups
without scanning everything".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np


class SpaceSaving:
    """Deterministic top-k frequency summary."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: item -> (count, error) where ``count - error <= true <= count``
        self.counters: Dict[object, Tuple[int, int]] = {}
        self.total = 0

    def add(self, values: Iterable) -> None:
        """Add a batch, pre-aggregated per distinct value.

        Weighted SpaceSaving: feeding each distinct value once with its
        batch multiplicity preserves the overestimate/underestimate
        guarantees (the error inherited on eviction is still bounded by
        the evicted counter), while the Python-level loop shrinks from
        O(batch) to O(distinct values in batch). Heaviest values are
        applied first so they land in counters before any eviction churn.
        """
        if not isinstance(values, (np.ndarray, list, tuple)):
            values = list(values)  # materialize generators
        arr = np.asarray(values)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        if len(arr) == 0:
            return
        uniq, counts = np.unique(arr, return_counts=True)
        order = np.argsort(-counts, kind="stable")
        for i in order:
            v = uniq[i]
            self.add_one(v.item() if hasattr(v, "item") else v, int(counts[i]))

    def add_one(self, value, count: int = 1) -> None:
        self.total += count
        if value in self.counters:
            c, e = self.counters[value]
            self.counters[value] = (c + count, e)
            return
        if len(self.counters) < self.capacity:
            self.counters[value] = (count, 0)
            return
        # Evict the minimum-count entry; inherit its count as error.
        victim = min(self.counters, key=lambda k: self.counters[k][0])
        min_count, _ = self.counters.pop(victim)
        self.counters[value] = (min_count + count, min_count)

    # ------------------------------------------------------------------
    def estimate(self, value) -> int:
        """Upper-bound frequency estimate (0 if not tracked)."""
        if value in self.counters:
            return self.counters[value][0]
        return 0

    def guaranteed_count(self, value) -> int:
        """Lower-bound (guaranteed) frequency."""
        if value in self.counters:
            c, e = self.counters[value]
            return c - e
        return 0

    def heavy_hitters(self, threshold_fraction: float) -> List[Tuple[object, int]]:
        """Items guaranteed to exceed ``threshold_fraction`` of the stream.

        Completeness: any item with true frequency > N/capacity is
        tracked, so for thresholds ≥ 1/capacity no heavy hitter is missed.
        """
        threshold = threshold_fraction * self.total
        out = [
            (item, c)
            for item, (c, e) in self.counters.items()
            if c - e > threshold
        ]
        out.sort(key=lambda kv: -kv[1])
        return out

    def top_k(self, k: int) -> List[Tuple[object, int]]:
        items = sorted(self.counters.items(), key=lambda kv: -kv[1][0])
        return [(item, c) for item, (c, _) in items[:k]]

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Combine two summaries of disjoint streams (Agarwal et al.,
        "Mergeable Summaries").

        An item absent from one side could still have occurred in that
        side's stream up to its minimum counter (if that side is at
        capacity) — that possibility becomes count *and* error, keeping
        the invariant ``count - error ≤ true ≤ count``. The merged table
        is then pruned back to the larger capacity by keeping the
        largest counts; pruned mass is inherited as error by nothing
        (pruned items simply fall back to estimate 0), exactly as in a
        fresh SpaceSaving of the concatenated stream.
        """
        if not isinstance(other, SpaceSaving):
            raise TypeError("can only merge SpaceSaving with SpaceSaving")
        capacity = max(self.capacity, other.capacity)
        out = SpaceSaving(capacity=capacity)
        out.total = self.total + other.total

        def floor(sketch: "SpaceSaving") -> int:
            if len(sketch.counters) < sketch.capacity:
                return 0
            return min(c for c, _ in sketch.counters.values())

        floor_self, floor_other = floor(self), floor(other)
        merged: Dict[object, Tuple[int, int]] = {}
        for item in set(self.counters) | set(other.counters):
            c1, e1 = self.counters.get(item, (floor_self, floor_self))
            c2, e2 = other.counters.get(item, (floor_other, floor_other))
            merged[item] = (c1 + c2, e1 + e2)
        if len(merged) > capacity:
            keep = sorted(merged.items(), key=lambda kv: -kv[1][0])[:capacity]
            merged = dict(keep)
        out.counters = merged
        return out

    @property
    def max_error(self) -> int:
        """Largest possible overestimate of any reported count (≤ N/k)."""
        if not self.counters:
            return 0
        return max(e for _, e in self.counters.values())

    def memory_entries(self) -> int:
        return len(self.counters)
