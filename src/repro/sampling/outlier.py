"""Outlier indexing (Chaudhuri, Das, Datar, Motwani, Narasayya 2001).

Heavy-tailed measures wreck uniform samples: a handful of huge values
carry most of a SUM, and whether the sample catches them is a coin flip.
The outlier-index remedy splits the table deterministically:

* rows whose measure lies outside a threshold go to the **outlier index**
  and are aggregated *exactly* (they are few);
* the remaining, well-behaved rows are sampled uniformly.

The final estimate is ``exact(outliers) + HT(sample of the rest)`` — the
variance now depends only on the trimmed distribution's spread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..engine.table import Table
from ..estimators.closed_form import Estimate, bernoulli_sum
from .base import WeightedSample
from .row import bernoulli_sample


@dataclass
class OutlierIndex:
    """A split of a table into outlier rows (kept exactly) and the rest."""

    table_name: str
    measure_column: str
    threshold_low: float
    threshold_high: float
    outliers: Table
    inliers: Table

    @property
    def outlier_fraction(self) -> float:
        total = self.outliers.num_rows + self.inliers.num_rows
        return self.outliers.num_rows / total if total else 0.0

    def storage_rows(self) -> int:
        """Rows the index stores (its maintenance footprint)."""
        return self.outliers.num_rows


def build_outlier_index(
    table: Table,
    measure_column: str,
    outlier_fraction: float = 0.01,
) -> OutlierIndex:
    """Split the most extreme ``outlier_fraction`` of rows into the index.

    Rows are ranked by distance from the median of ``measure_column``, so
    both tails of a skewed distribution are captured.
    """
    if not (0.0 <= outlier_fraction < 1.0):
        raise ValueError("outlier_fraction must be in [0, 1)")
    values = np.asarray(table[measure_column], dtype=np.float64)
    n = len(values)
    k = int(math.ceil(n * outlier_fraction))
    if k == 0 or n == 0:
        return OutlierIndex(
            table_name=table.name,
            measure_column=measure_column,
            threshold_low=-math.inf,
            threshold_high=math.inf,
            outliers=table.take(np.array([], dtype=np.int64)),
            inliers=table,
        )
    median = float(np.median(values))
    distance = np.abs(values - median)
    cutoff_idx = np.argpartition(distance, n - k)[n - k:]
    is_outlier = np.zeros(n, dtype=bool)
    is_outlier[cutoff_idx] = True
    out_vals = values[is_outlier]
    in_vals = values[~is_outlier]
    return OutlierIndex(
        table_name=table.name,
        measure_column=measure_column,
        threshold_low=float(in_vals.min()) if len(in_vals) else -math.inf,
        threshold_high=float(in_vals.max()) if len(in_vals) else math.inf,
        outliers=table.take(is_outlier),
        inliers=table.take(~is_outlier),
    )


def estimate_sum_with_outliers(
    index: OutlierIndex,
    rate: float,
    rng: Optional[np.random.Generator] = None,
    predicate_mask_outliers: Optional[np.ndarray] = None,
    predicate_mask_inliers: Optional[np.ndarray] = None,
) -> Tuple[Estimate, WeightedSample]:
    """SUM via exact outliers + Bernoulli sample of inliers.

    Optional masks restrict both parts to predicate-matching rows (the
    index stores full rows, so predicates evaluate exactly on outliers).
    Returns the combined estimate and the inlier sample used.
    """
    outliers = index.outliers
    if predicate_mask_outliers is not None:
        outliers = outliers.take(np.asarray(predicate_mask_outliers, dtype=bool))
    exact_part = float(
        np.sum(np.asarray(outliers[index.measure_column], dtype=np.float64))
    )
    inliers = index.inliers
    if predicate_mask_inliers is not None:
        inliers = inliers.take(np.asarray(predicate_mask_inliers, dtype=bool))
    sample = bernoulli_sample(inliers, rate, rng=rng)
    inlier_est = bernoulli_sum(
        np.asarray(sample.table[index.measure_column], dtype=np.float64), rate
    )
    combined = Estimate(
        value=exact_part + inlier_est.value,
        variance=inlier_est.variance,  # the exact part contributes none
        sample_size=inlier_est.sample_size,
        estimator="outlier_sum",
    )
    return combined, sample


def variance_reduction(
    table: Table, measure_column: str, outlier_fraction: float = 0.01
) -> float:
    """Factor by which trimming outliers shrinks the per-row variance.

    This is the theoretical speedup knob: required sample size scales with
    the (squared) coefficient of variation of what is *sampled*.
    """
    values = np.asarray(table[measure_column], dtype=np.float64)
    if len(values) < 2:
        return 1.0
    full_var = float(np.var(values))
    index = build_outlier_index(table, measure_column, outlier_fraction)
    inlier_vals = np.asarray(
        index.inliers[measure_column], dtype=np.float64
    )
    trimmed_var = float(np.var(inlier_vals)) if len(inlier_vals) > 1 else 0.0
    if trimmed_var == 0:
        return math.inf if full_var > 0 else 1.0
    return full_var / trimmed_var
