"""Reservoir sampling: fixed-size uniform samples over streams.

Offline AQP systems keep their precomputed samples fresh under inserts by
maintaining them as reservoirs — each arriving row replaces a random
reservoir slot with probability ``k/seen``. The resulting reservoir is an
exact SRS of everything seen so far, which is what
:mod:`repro.offline.maintenance` relies on when it ages samples instead of
rebuilding them.

Algorithm L (Li 1994) is used for skipping, so feeding a large batch costs
O(k·log(n/k)) RNG draws rather than one per row.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np


class ReservoirSampler:
    """Maintains a uniform fixed-size sample of a stream of items."""

    def __init__(self, capacity: int, seed: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._reservoir: List[object] = []
        self._seen = 0
        # Algorithm L state
        self._w = math.exp(math.log(self._rng.random()) / capacity)
        self._next_index = capacity  # index of the next item to admit

    @property
    def seen(self) -> int:
        """Total number of items offered so far."""
        return self._seen

    def offer(self, item) -> None:
        """Offer one item to the reservoir."""
        if self._seen < self.capacity:
            self._reservoir.append(item)
            self._seen += 1
            return
        if self._seen == self._next_index:
            slot = int(self._rng.integers(0, self.capacity))
            self._reservoir[slot] = item
            self._advance()
        self._seen += 1

    def offer_many(self, items: Iterable) -> None:
        """Offer a batch; uses Algorithm L's skip counts to touch only the
        admitted items when the reservoir is already full.

        Numpy arrays are indexed in place — no O(n) list copy — so the
        per-batch cost is O(admitted · log) regardless of batch size.
        """
        if not isinstance(items, np.ndarray):
            items = list(items)
        i = 0
        n = len(items)
        # Fill phase (bulk-extend instead of one append per row).
        if i < n and self._seen < self.capacity:
            take = min(n, self.capacity - self._seen)
            self._reservoir.extend(items[:take])
            self._seen += take
            i = take
        # Skip phase
        while i < n:
            if self._seen + (n - i) <= self._next_index:
                # Whole rest of the batch is skipped.
                self._seen += n - i
                return
            jump = self._next_index - self._seen
            i += jump
            self._seen += jump
            if i < n:
                slot = int(self._rng.integers(0, self.capacity))
                self._reservoir[slot] = items[i]
                self._advance()
                self._seen += 1
                i += 1

    def _advance(self) -> None:
        """Draw the index of the next admitted item (Algorithm L)."""
        r = self._rng.random()
        skip = int(math.floor(math.log(r) / math.log(1.0 - self._w))) + 1
        self._next_index = self._seen + skip
        self._w *= math.exp(math.log(self._rng.random()) / self.capacity)

    def sample(self) -> List[object]:
        """Current reservoir contents (uniform sample of items seen)."""
        return list(self._reservoir)

    def sample_array(self) -> np.ndarray:
        return np.asarray(self._reservoir)

    @property
    def weight(self) -> float:
        """HT weight of each reservoir item: seen / reservoir size."""
        size = len(self._reservoir)
        return self._seen / size if size else 1.0

    def __len__(self) -> int:
        return len(self._reservoir)
