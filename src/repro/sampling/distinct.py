"""The distinct sampler (Quickr).

Group-by columns with many groups defeat uniform sampling: small groups
vanish. Quickr's distinct sampler guarantees that *every distinct value
combination* of a chosen column set keeps at least ``frequency_cap`` rows,
while rows beyond the cap are uniformly thinned at ``rate``. The result
over-represents rare values (weight 1) and down-weights common ones
(weight ``1/rate``), with HT weights recording exactly which.

This preserves group coverage — the property experiment E2 shows uniform
sampling lacks — at the price of a sample size that grows with the number
of distinct groups.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..engine.table import Table
from .base import WeightedSample


def distinct_sample(
    table: Table,
    columns: Sequence[str],
    rate: float,
    frequency_cap: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> WeightedSample:
    """Keep ≥``frequency_cap`` rows per distinct value of ``columns``;
    thin the remainder at ``rate``.

    Implementation detail: within each distinct group, rows are randomly
    ranked; ranks below the cap are kept with probability 1, the rest with
    probability ``rate``. Inclusion probabilities are exact, so HT
    estimation over the sample is unbiased for linear aggregates.
    """
    if not (0.0 < rate <= 1.0):
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if frequency_cap < 1:
        raise ValueError("frequency_cap must be >= 1")
    if rng is None:
        rng = np.random.default_rng()
    n = table.num_rows
    if n == 0:
        return WeightedSample(
            table=table,
            weights=np.array([]),
            method="distinct",
            population_rows=0,
            params={"columns": list(columns), "rate": rate, "cap": frequency_cap},
        )
    # Encode the distinct-column combination per row.
    from ..engine.aggregates import encode_groups

    group_ids, _ = encode_groups([table[c] for c in columns])
    num_groups = int(group_ids.max()) + 1
    # Random rank within each group: shuffle, then stable-sort by group.
    shuffle = rng.permutation(n)
    order = shuffle[np.argsort(group_ids[shuffle], kind="stable")]
    sorted_groups = group_ids[order]
    # position within the group along the sorted order
    boundaries = np.flatnonzero(np.diff(sorted_groups)) + 1
    starts = np.concatenate([[0], boundaries])
    group_start = np.zeros(n, dtype=np.int64)
    group_start[starts] = starts
    group_start = np.maximum.accumulate(group_start)
    rank_sorted = np.arange(n) - group_start
    rank = np.empty(n, dtype=np.int64)
    rank[order] = rank_sorted
    capped = rank < frequency_cap
    keep = capped | (rng.random(n) < rate)
    group_sizes = np.bincount(group_ids, minlength=num_groups)
    # Inclusion probability: rows are exchangeable within a group, so each
    # row's chance of a sub-cap rank is min(cap, g)/g; otherwise it is kept
    # w.p. rate. pi = q + (1-q) * rate with q = min(cap,g)/g.
    g = group_sizes[group_ids].astype(np.float64)
    q = np.minimum(frequency_cap, g) / g
    pi = q + (1.0 - q) * rate
    sampled = table.take(keep)
    weights = 1.0 / pi[keep]
    return WeightedSample(
        table=sampled,
        weights=weights,
        method="distinct",
        population_rows=n,
        params={
            "columns": list(columns),
            "rate": rate,
            "cap": frequency_cap,
            "num_groups": num_groups,
        },
    )


def group_coverage(sample: WeightedSample, table: Table) -> float:
    """Fraction of the base table's distinct groups present in the sample."""
    columns = list(sample.params["columns"])  # type: ignore[arg-type]
    from ..engine.aggregates import encode_groups

    _, base_keys = encode_groups([table[c] for c in columns])
    if sample.num_rows == 0:
        return 0.0
    _, sample_keys = encode_groups([sample.table[c] for c in columns])
    return len(sample_keys) / max(len(base_keys), 1)
