"""Measure-biased sampling (the Sample+Seek family).

For SUM-like aggregates over a fixed measure column, sampling rows with
probability *proportional to the measure* is the variance-optimal design:
every sampled row then contributes the same amount ``T/n`` to the HT
total, so the estimator's variance comes only from the Poisson sampling
noise, not from the measure's skew. This is what lets Sample+Seek promise
a *distribution* guarantee for large groups with a tiny sample.

The cost is specialization — a measure-biased sample answers SUM(measure)
(and predicates over it) but is biased for COUNT or other measures unless
re-weighted, one of the "no silver bullet" specialization trade-offs.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..engine.table import Table
from ..estimators.closed_form import Estimate
from .base import WeightedSample


def measure_biased_sample(
    table: Table,
    measure_column: str,
    expected_size: int,
    rng: Optional[np.random.Generator] = None,
) -> WeightedSample:
    """Poisson sample with ``π_i ∝ y_i`` and expected size ``expected_size``.

    Rows with ``y_i ≤ 0`` are excluded from biasing (they carry no SUM
    mass); they receive a small uniform floor probability so COUNT-style
    reuse stays possible, at slightly super-optimal variance.
    """
    if expected_size < 1:
        raise ValueError("expected_size must be >= 1")
    if rng is None:
        rng = np.random.default_rng()
    y = np.asarray(table[measure_column], dtype=np.float64)
    n = len(y)
    if n == 0:
        return WeightedSample(
            table=table,
            weights=np.array([]),
            method="measure_biased",
            population_rows=0,
            params={"measure_column": measure_column},
        )
    positive = np.maximum(y, 0.0)
    total = float(np.sum(positive))
    if total <= 0:
        # Degenerate: fall back to uniform probabilities.
        pi = np.full(n, min(expected_size / n, 1.0))
    else:
        pi = expected_size * positive / total
        floor = min(expected_size / (10.0 * n), 1.0)
        pi = np.clip(pi, floor, 1.0)
    keep = rng.random(n) < pi
    sampled = table.take(keep)
    weights = 1.0 / pi[keep]
    return WeightedSample(
        table=sampled,
        weights=weights,
        method="measure_biased",
        population_rows=n,
        params={
            "measure_column": measure_column,
            "expected_size": expected_size,
            "measure_total": total,
        },
    )


def estimate_sum(sample: WeightedSample, mask: Optional[np.ndarray] = None) -> Estimate:
    """SUM(measure) over an optional predicate mask.

    With exact ``π ∝ y`` every sampled matching row contributes ``T/n``;
    the HT estimator and its Poisson variance are computed generically
    from the stored weights, so clipping floors are handled correctly.
    """
    measure = str(sample.params["measure_column"])
    y = np.asarray(sample.table[measure], dtype=np.float64)
    w = sample.weights
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        y = y[mask]
        w = w[mask]
    pi = 1.0 / np.maximum(w, 1e-300)
    value = float(np.sum(y * w))
    variance = float(np.sum((1.0 - pi) * (y * w) ** 2))
    return Estimate(value, variance, len(y), estimator="measure_biased_sum")


def optimal_variance_ratio(values: np.ndarray) -> float:
    """Variance of uniform- vs measure-biased sampling for the same size.

    Returns ``E[y²]·n / (Σy)²`` — the factor by which uniform sampling's
    SUM variance exceeds measure-biased sampling's on this data. Equals 1
    for constant measures and grows with skew (≈ 1 + cv²).
    """
    y = np.asarray(values, dtype=np.float64)
    y = np.maximum(y, 0.0)
    n = len(y)
    total = float(np.sum(y))
    if n == 0 or total == 0:
        return 1.0
    return float(np.sum(y * y)) * n / (total * total)
