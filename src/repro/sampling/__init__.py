"""Sampling schemes: the survey's full menagerie."""

from .base import WeightedSample
from .bilevel import bilevel_sample, estimate_count_bilevel, estimate_sum_bilevel
from .block import block_bernoulli_sample, block_fixed_sample
from .distinct import distinct_sample
from .join_synopsis import ForeignKeyEdge, JoinSynopsis, build_join_synopsis
from .measure_biased import measure_biased_sample
from .outlier import OutlierIndex, build_outlier_index
from .reservoir import ReservoirSampler
from .row import bernoulli_sample, srs_sample, systematic_sample
from .stratified import allocate, stratified_sample
from .universe import joint_universe_samples, universe_sample

__all__ = [
    "ForeignKeyEdge",
    "JoinSynopsis",
    "OutlierIndex",
    "ReservoirSampler",
    "WeightedSample",
    "allocate",
    "bernoulli_sample",
    "bilevel_sample",
    "block_bernoulli_sample",
    "block_fixed_sample",
    "build_join_synopsis",
    "build_outlier_index",
    "distinct_sample",
    "estimate_count_bilevel",
    "estimate_sum_bilevel",
    "joint_universe_samples",
    "measure_biased_sample",
    "srs_sample",
    "stratified_sample",
    "systematic_sample",
    "universe_sample",
]
