"""Block-level (page) sampling.

Block sampling reads whole storage blocks, skipping everything else — the
only sampler whose *cost* is proportional to the sampling rate on block
storage. Its price is statistical: rows within a block are included
together, so the sampling unit is the block and variance must be computed
over per-block totals (:mod:`repro.estimators.subsampling`).

The ``weights`` of the returned sample are the inverse *block* inclusion
probability, which makes HT totals unbiased: every row of a sampled block
carries weight ``1/rate`` (Bernoulli) or ``B/m`` (fixed-size).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..engine.table import Table
from ..estimators.closed_form import Estimate
from ..estimators.subsampling import (
    block_sample_avg,
    block_sample_count,
    block_sample_sum,
    per_block_totals,
)
from .base import WeightedSample


def block_bernoulli_sample(
    table: Table, rate: float, rng: Optional[np.random.Generator] = None
) -> WeightedSample:
    """Keep each block independently with probability ``rate``."""
    if not (0.0 < rate <= 1.0):
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if rng is None:
        rng = np.random.default_rng()
    nb = table.num_blocks
    chosen = np.flatnonzero(rng.random(nb) < rate)
    return _materialize(table, chosen, 1.0 / rate, "block_bernoulli", {"rate": rate})


def block_fixed_sample(
    table: Table, num_blocks: int, rng: Optional[np.random.Generator] = None
) -> WeightedSample:
    """SRS of exactly ``num_blocks`` blocks without replacement."""
    if num_blocks < 0:
        raise ValueError("num_blocks must be non-negative")
    if rng is None:
        rng = np.random.default_rng()
    nb = table.num_blocks
    m = min(num_blocks, nb)
    chosen = (
        np.sort(rng.choice(nb, size=m, replace=False))
        if m
        else np.array([], dtype=np.int64)
    )
    weight = nb / m if m else 1.0
    return _materialize(table, chosen, weight, "block_fixed", {"num_blocks": m})


def _materialize(
    table: Table, block_ids: np.ndarray, weight: float, method: str, params: dict
) -> WeightedSample:
    pieces = []
    id_pieces = []
    for bid in np.asarray(block_ids, dtype=np.int64):
        start, stop = table.block_bounds(int(bid))
        pieces.append(np.arange(start, stop, dtype=np.int64))
        id_pieces.append(np.full(stop - start, bid, dtype=np.int64))
    idx = np.concatenate(pieces) if pieces else np.array([], dtype=np.int64)
    sampled = table.take(idx).with_column(
        "__block_id",
        np.concatenate(id_pieces) if id_pieces else np.array([], dtype=np.int64),
    )
    weights = np.full(len(idx), weight)
    params = dict(params)
    params["total_blocks"] = table.num_blocks
    params["sampled_blocks"] = len(block_ids)
    return WeightedSample(
        table=sampled,
        weights=weights,
        method=method,
        population_rows=table.num_rows,
        params=params,
    )


# ----------------------------------------------------------------------
# Block-aware estimation (correct variance for block samples)
# ----------------------------------------------------------------------

def estimate_sum_blockwise(sample: WeightedSample, column: str) -> Estimate:
    """SUM estimate with cluster-correct variance from a block sample."""
    total_blocks = int(sample.params["total_blocks"])
    sums, _ = per_block_totals(
        np.asarray(sample.table[column], dtype=np.float64),
        sample.table["__block_id"],
    )
    return block_sample_sum(sums, total_blocks)


def estimate_count_blockwise(sample: WeightedSample) -> Estimate:
    total_blocks = int(sample.params["total_blocks"])
    if sample.num_rows == 0:
        return block_sample_count(np.array([]), total_blocks)
    _, counts = per_block_totals(
        np.ones(sample.num_rows), sample.table["__block_id"]
    )
    return block_sample_count(counts, total_blocks)


def estimate_avg_blockwise(sample: WeightedSample, column: str) -> Estimate:
    total_blocks = int(sample.params["total_blocks"])
    sums, counts = per_block_totals(
        np.asarray(sample.table[column], dtype=np.float64),
        sample.table["__block_id"],
    )
    return block_sample_avg(sums, counts, total_blocks)


def naive_vs_clustered_variance(
    sample: WeightedSample, column: str
) -> Tuple[float, float]:
    """Variance of the SUM estimator computed two ways: pretending rows are
    i.i.d. (wrong for block samples) vs. over block totals (right).

    The ratio is the empirical design effect; experiment E1's "naive CLT
    under-covers on clustered layouts" claim is this number being >> 1.
    """
    from ..estimators.closed_form import bernoulli_sum

    rate = float(sample.params.get("rate", sample.sampling_fraction))
    naive = bernoulli_sum(
        np.asarray(sample.table[column], dtype=np.float64), rate
    ).variance
    clustered = estimate_sum_blockwise(sample, column).variance
    return naive, clustered
