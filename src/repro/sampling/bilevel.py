"""Bi-level Bernoulli sampling (Haas & König 2004).

Pure block sampling is cheap but statistically fragile on clustered
layouts; pure row sampling is statistically ideal but touches every
block. The bi-level scheme interpolates: sample blocks at rate ``q``,
then rows *within* each sampled block at rate ``r``. Cost is ~``q`` of a
scan (only sampled blocks are read); the effective row fraction is
``q·r``; and the within-block thinning dampens the design effect of
clustered data — the knob the survey describes for trading I/O against
statistical efficiency.

Estimation treats the per-block HT subtotal ``t̂_b = Σ y / r`` as the
cluster observation; mean-of-blocks over the ``m`` sampled blocks then
captures *both* variance stages (between blocks and within-block
thinning) without needing them separated.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..engine.table import Table
from ..estimators.closed_form import Estimate
from ..estimators.subsampling import per_block_totals
from .base import WeightedSample


def bilevel_sample(
    table: Table,
    block_rate: float,
    row_rate: float,
    rng: Optional[np.random.Generator] = None,
) -> WeightedSample:
    """Blocks at ``block_rate``, rows within sampled blocks at ``row_rate``."""
    for name, rate in (("block_rate", block_rate), ("row_rate", row_rate)):
        if not (0.0 < rate <= 1.0):
            raise ValueError(f"{name} must be in (0, 1], got {rate}")
    if rng is None:
        rng = np.random.default_rng()
    nb = table.num_blocks
    chosen = np.flatnonzero(rng.random(nb) < block_rate)
    idx_pieces = []
    id_pieces = []
    for bid in chosen:
        start, stop = table.block_bounds(int(bid))
        keep = rng.random(stop - start) < row_rate
        rows = np.arange(start, stop, dtype=np.int64)[keep]
        idx_pieces.append(rows)
        id_pieces.append(np.full(len(rows), bid, dtype=np.int64))
    idx = np.concatenate(idx_pieces) if idx_pieces else np.array([], dtype=np.int64)
    ids = np.concatenate(id_pieces) if id_pieces else np.array([], dtype=np.int64)
    sampled = table.take(idx).with_column("__block_id", ids)
    weights = np.full(len(idx), 1.0 / (block_rate * row_rate))
    return WeightedSample(
        table=sampled,
        weights=weights,
        method="bilevel",
        population_rows=table.num_rows,
        params={
            "block_rate": block_rate,
            "row_rate": row_rate,
            "total_blocks": nb,
            "sampled_blocks": int(len(chosen)),
        },
    )


def estimate_sum_bilevel(sample: WeightedSample, column: str) -> Estimate:
    """SUM with variance over per-block HT subtotals."""
    total_blocks = int(sample.params["total_blocks"])
    m = int(sample.params["sampled_blocks"])
    row_rate = float(sample.params["row_rate"])
    if m == 0:
        return Estimate(math.nan, math.inf, 0, estimator="bilevel_sum")
    sums, _ = per_block_totals(
        np.asarray(sample.table[column], dtype=np.float64),
        sample.table["__block_id"],
    )
    # Per-sampled-block HT subtotal; pad with zeros for sampled blocks in
    # which every row was thinned away.
    t_hat = np.zeros(m)
    t_hat[: len(sums)] = sums / row_rate
    mean = float(np.mean(t_hat))
    var_blocks = float(np.var(t_hat, ddof=1)) if m > 1 else math.inf
    fpc = max(1.0 - m / total_blocks, 0.0) if total_blocks else 1.0
    total = total_blocks * mean
    variance = total_blocks * total_blocks * fpc * var_blocks / m
    return Estimate(total, variance, m, estimator="bilevel_sum")


def estimate_count_bilevel(sample: WeightedSample) -> Estimate:
    """COUNT via the same machinery with unit values."""
    counted = sample.table.with_column(
        "__ones", np.ones(sample.table.num_rows)
    )
    clone = WeightedSample(
        table=counted,
        weights=sample.weights,
        method=sample.method,
        population_rows=sample.population_rows,
        params=dict(sample.params),
    )
    return estimate_sum_bilevel(clone, "__ones")


def io_cost_fraction(block_rate: float) -> float:
    """Fraction of a full scan's I/O the bi-level scheme pays (row-level
    thinning happens after the block is already in memory)."""
    return block_rate


def effective_row_fraction(block_rate: float, row_rate: float) -> float:
    return block_rate * row_rate


def variance_tradeoff_curve(
    table: Table,
    column: str,
    effective_fraction: float,
    block_rates: Tuple[float, ...] = (0.02, 0.05, 0.1, 0.2, 0.5, 1.0),
    trials: int = 20,
    seed: int = 0,
) -> list:
    """Empirical (block_rate, io_fraction, rmse) curve at a fixed
    effective row fraction — the design-space sweep of the bi-level paper.

    ``block_rate = effective_fraction`` with ``row_rate = 1`` is pure
    block sampling (cheapest, most clustered); ``block_rate = 1`` is pure
    row sampling (most expensive I/O, least clustered).
    """
    truth = float(np.sum(np.asarray(table[column], dtype=np.float64)))
    out = []
    for q in block_rates:
        if q < effective_fraction:
            continue
        r = effective_fraction / q
        errs = []
        for trial in range(trials):
            s = bilevel_sample(
                table, q, r, np.random.default_rng(seed * 1000 + trial)
            )
            est = estimate_sum_bilevel(s, column)
            errs.append((est.value - truth) / truth)
        rmse = float(np.sqrt(np.mean(np.square(errs))))
        out.append((q, io_cost_fraction(q), rmse))
    return out
