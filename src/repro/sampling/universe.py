"""Universe (correlated hash) sampling for joins.

Independently sampling both sides of a join at rate ``p`` keeps only
``p²`` of the join's output *and* destroys key-match structure — the
classic "join of samples is not a sample of the join" failure (experiment
E6). Universe sampling fixes the structural half: both tables keep exactly
the rows whose *join-key hash* falls below ``p``. Matching keys then
survive or die together, so the surviving join output is a genuine
``p``-fraction sample of the join, keyed by key-universe inclusion.

The estimator scales join aggregates by ``1/p`` (one factor — the same
hash decided both sides). Variance is cluster-like over key groups, so we
expose per-key totals for variance estimation.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..engine.table import Table
from ..estimators.closed_form import Estimate
from ..sketches.hashing import hash_unit_interval
from .base import WeightedSample


def universe_sample(
    table: Table,
    key_column: str,
    rate: float,
    seed: int = 0,
) -> WeightedSample:
    """Keep rows whose join-key hash lands in [0, rate)."""
    if not (0.0 < rate <= 1.0):
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    coords = hash_unit_interval(table[key_column], seed=seed)
    mask = coords < rate
    sampled = table.take(mask)
    weights = np.full(sampled.num_rows, 1.0 / rate)
    return WeightedSample(
        table=sampled,
        weights=weights,
        method="universe",
        population_rows=table.num_rows,
        params={"key_column": key_column, "rate": rate, "seed": seed},
    )


def joint_universe_samples(
    left: Table,
    left_key: str,
    right: Table,
    right_key: str,
    rate: float,
    seed: int = 0,
) -> Tuple[WeightedSample, WeightedSample]:
    """Universe-sample both join sides with the *same* hash and rate."""
    return (
        universe_sample(left, left_key, rate, seed=seed),
        universe_sample(right, right_key, rate, seed=seed),
    )


def estimate_join_sum(
    joined_values: np.ndarray,
    joined_keys: np.ndarray,
    rate: float,
) -> Estimate:
    """SUM over a join computed from universe samples.

    ``joined_values`` are the measure values of the join output built from
    the two universe samples; ``joined_keys`` the join key of each output
    row. The key-universe is the sampling unit, so variance is estimated
    over per-key totals (clusters), scaled by ``1/rate`` once.
    """
    y = np.asarray(joined_values, dtype=np.float64)
    if len(y) == 0:
        return Estimate(0.0, math.inf, 0, estimator="universe_join_sum")
    uniq, inverse = np.unique(joined_keys, return_inverse=True)
    per_key = np.bincount(inverse, weights=y, minlength=len(uniq))
    k = len(per_key)
    total = float(np.sum(per_key)) / rate
    # Poisson sampling over the key universe: Var = (1-p)/p^2 * sum t_k^2
    variance = float(np.sum(per_key * per_key)) * (1.0 - rate) / (rate * rate)
    return Estimate(total, variance, k, estimator="universe_join_sum")


def independent_join_variance_blowup(
    left_values_by_key: np.ndarray, fanout_by_key: np.ndarray, rate: float
) -> float:
    """Analytic variance ratio of independent-Bernoulli vs universe join
    sampling for a SUM over an FK join (diagnostic used in E6's write-up).

    With independent sampling at rate ``p`` on both sides only ``p²`` of
    output pairs survive, so the scale-up is ``1/p²`` and the effective
    sample of the join is quadratically smaller; universe sampling keeps a
    ``p`` fraction at ``1/p`` scale-up. The returned ratio is ≈ ``1/p``
    times a fanout-dependent constant.
    """
    t = np.asarray(left_values_by_key, dtype=np.float64) * np.asarray(
        fanout_by_key, dtype=np.float64
    )
    sum_t2 = float(np.sum(t * t))
    if sum_t2 == 0:
        return 1.0
    var_universe = sum_t2 * (1.0 - rate) / (rate * rate)
    p2 = rate * rate
    var_indep = sum_t2 * (1.0 - p2) / (p2 * p2) * rate  # crude upper-shape
    if var_universe <= 0:
        return math.inf
    return var_indep / var_universe
