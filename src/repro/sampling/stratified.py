"""Stratified sampling with the classic allocation policies.

Uniform samples starve small groups; stratified samples fix that by
drawing a guaranteed number of rows *per stratum*. The allocation policies
implemented here are the ones the offline-AQP literature converged on:

* ``proportional`` — stratum share of the sample equals its share of the
  table (equivalent to uniform in expectation; baseline).
* ``senate`` — equal rows per stratum, maximizing worst-group accuracy
  (the "every state gets two senators" allocation).
* ``congress`` — BlinkDB/Congress hybrid: the maximum of senate and
  proportional shares, renormalized; protects small groups while keeping
  large groups accurate.
* ``neyman`` — variance-optimal for a chosen measure column: allocation
  proportional to ``N_h · σ_h``.

Each stratum is sampled by SRS without replacement; weights are
``N_h / n_h`` so HT estimation works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import SynopsisError
from ..engine.table import Table
from ..estimators.closed_form import Estimate
from .base import WeightedSample

ALLOCATIONS = ("proportional", "senate", "congress", "neyman")


@dataclass
class StratumInfo:
    """Bookkeeping for one stratum after sampling."""

    key: object
    population: int
    allocated: int
    drawn: int

    @property
    def weight(self) -> float:
        return self.population / self.drawn if self.drawn else float("inf")


def allocate(
    stratum_sizes: Sequence[int],
    total_sample: int,
    policy: str = "proportional",
    stratum_stds: Optional[Sequence[float]] = None,
    min_per_stratum: int = 1,
) -> List[int]:
    """Compute per-stratum sample sizes under ``policy``.

    Sizes are capped at the stratum population and floored at
    ``min_per_stratum`` (where the population allows), then the largest
    fractional remainders absorb rounding drift so the result sums to at
    most ``total_sample`` (capping may leave it below).
    """
    if policy not in ALLOCATIONS:
        raise SynopsisError(f"unknown allocation policy {policy!r}")
    sizes = np.asarray(stratum_sizes, dtype=np.float64)
    h = len(sizes)
    if h == 0:
        return []
    if policy == "neyman":
        if stratum_stds is None:
            raise SynopsisError("neyman allocation requires stratum_stds")
        stds = np.asarray(stratum_stds, dtype=np.float64)
        mass = sizes * np.maximum(stds, 1e-12)
    elif policy == "proportional":
        mass = sizes.copy()
    elif policy == "senate":
        mass = np.ones(h)
    else:  # congress
        prop = sizes / sizes.sum()
        senate = np.ones(h) / h
        mass = np.maximum(prop, senate)
    mass = mass / mass.sum()
    raw = mass * total_sample
    alloc = np.floor(raw).astype(np.int64)
    # Distribute remainders to the largest fractional parts.
    remainder = int(total_sample - alloc.sum())
    if remainder > 0:
        order = np.argsort(raw - alloc)[::-1]
        alloc[order[:remainder]] += 1
    # Apply floors and caps.
    alloc = np.maximum(alloc, min_per_stratum)
    alloc = np.minimum(alloc, sizes.astype(np.int64))
    return alloc.tolist()


def stratified_sample(
    table: Table,
    strata_column,
    total_size: int,
    policy: str = "congress",
    measure_column: Optional[str] = None,
    min_per_stratum: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> WeightedSample:
    """Draw a stratified sample keyed on ``strata_column``.

    ``strata_column`` may be a single column name or a sequence of names
    (composite strata — BlinkDB's multi-column query column sets).
    """
    if rng is None:
        rng = np.random.default_rng()
    if isinstance(strata_column, str):
        keys = table[strata_column]
        uniq, inverse = np.unique(keys, return_inverse=True)
    else:
        from ..engine.aggregates import encode_groups

        inverse, key_tuples = encode_groups([table[c] for c in strata_column])
        uniq = np.empty(len(key_tuples), dtype=object)
        uniq[:] = key_tuples
    counts = np.bincount(inverse, minlength=len(uniq))
    stds = None
    if policy == "neyman":
        if measure_column is None:
            raise SynopsisError("neyman allocation requires measure_column")
        values = np.asarray(table[measure_column], dtype=np.float64)
        sums = np.bincount(inverse, weights=values, minlength=len(uniq))
        sumsq = np.bincount(inverse, weights=values * values, minlength=len(uniq))
        with np.errstate(invalid="ignore"):
            means = sums / counts
            var = np.maximum(sumsq / counts - means * means, 0.0)
        stds = np.sqrt(var)
    alloc = allocate(
        counts.tolist(),
        total_size,
        policy=policy,
        stratum_stds=stds,
        min_per_stratum=min_per_stratum,
    )
    pieces: List[np.ndarray] = []
    weight_pieces: List[np.ndarray] = []
    strata: List[StratumInfo] = []
    for s, key in enumerate(uniq):
        members = np.flatnonzero(inverse == s)
        n_h = int(alloc[s])
        if n_h >= len(members):
            chosen = members
        else:
            chosen = rng.choice(members, size=n_h, replace=False)
        pieces.append(np.sort(chosen))
        weight_pieces.append(np.full(len(chosen), len(members) / max(len(chosen), 1)))
        strata.append(
            StratumInfo(
                key=key if not hasattr(key, "item") else key.item(),
                population=len(members),
                allocated=n_h,
                drawn=len(chosen),
            )
        )
    idx = np.concatenate(pieces) if pieces else np.array([], dtype=np.int64)
    order = np.argsort(idx)
    idx = idx[order]
    weights = (
        np.concatenate(weight_pieces)[order] if weight_pieces else np.array([])
    )
    return WeightedSample(
        table=table.take(idx),
        weights=weights,
        method=f"stratified:{policy}",
        population_rows=table.num_rows,
        params={
            "strata_column": strata_column,
            "policy": policy,
            "strata": strata,
            "total_size": total_size,
        },
    )


# ----------------------------------------------------------------------
# Per-group estimation from a stratified sample
# ----------------------------------------------------------------------

def group_estimates(
    sample: WeightedSample,
    group_column: str,
    value_column: Optional[str],
    agg: str = "sum",
) -> Dict[object, Estimate]:
    """Per-group SUM/COUNT/AVG estimates with stratum-correct variance.

    Assumes groups align with strata (the common deployment: stratify on
    the group-by column). For each group the sample is an SRS of the
    group, so SRS formulas with FPC apply within the group.
    """
    from ..estimators.closed_form import srs_mean, srs_sum

    strata: List[StratumInfo] = sample.params["strata"]  # type: ignore[assignment]
    by_key = {s.key: s for s in strata}
    keys = sample.table[group_column]
    uniq = np.unique(keys)
    out: Dict[object, Estimate] = {}
    for key in uniq:
        mask = keys == key
        k = key.item() if hasattr(key, "item") else key
        info = by_key.get(k)
        pop = info.population if info is not None else int(mask.sum())
        if agg == "count":
            drawn = int(mask.sum())
            out[k] = Estimate(float(pop), 0.0, drawn, estimator="stratified_count")
            continue
        values = np.asarray(sample.table[value_column], dtype=np.float64)[mask]
        if agg == "sum":
            out[k] = srs_sum(values, pop)
        elif agg == "avg":
            out[k] = srs_mean(values, pop)
        else:
            raise SynopsisError(f"unsupported per-group aggregate {agg!r}")
    return out
