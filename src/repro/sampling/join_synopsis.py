"""Join synopses (AQUA, Acharya et al. 1999).

Sampling *after* a foreign-key join is easy to get right and impossible to
do cheaply at query time without help: a uniform sample of the fact table,
joined with its dimension tables along FK edges, *is* a uniform sample of
the full join (each fact row matches exactly one dimension row per edge).
AQUA therefore precomputes exactly that — the join synopsis — and answers
join aggregates from it with plain SRS estimators.

This module builds join synopses against a :class:`~repro.engine.database.
Database` and exposes them as :class:`~repro.sampling.base.WeightedSample`
objects whose population is the (virtual) join result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import SynopsisError
from ..engine.executor import join_indices
from ..engine.table import Table
from .base import WeightedSample
from .row import srs_sample


@dataclass(frozen=True)
class ForeignKeyEdge:
    """One FK edge: ``fact.fact_key -> dimension.dim_key``."""

    fact_key: str
    dimension: str
    dim_key: str


@dataclass
class JoinSynopsis:
    """A precomputed sample of a fact table's FK join."""

    fact_table: str
    edges: Tuple[ForeignKeyEdge, ...]
    sample: WeightedSample
    #: rows of the fact table at build time (staleness tracking)
    built_at_rows: int


def build_join_synopsis(
    database,
    fact_table: str,
    edges: Sequence[ForeignKeyEdge],
    sample_size: int,
    rng: Optional[np.random.Generator] = None,
) -> JoinSynopsis:
    """SRS the fact table, then join each dimension exactly.

    Dimension columns are prefixed ``<dimension>.`` in the synopsis so
    predicates on dimension attributes can be evaluated directly. Fact
    rows that violate referential integrity (no dimension match) raise —
    a synopsis built on broken FKs would silently bias every answer.
    """
    fact = database.table(fact_table)
    sample = srs_sample(fact, sample_size, rng=rng)
    joined = sample.table
    for edge in edges:
        dim = database.table(edge.dimension)
        left_idx, right_idx, unmatched = join_indices(
            [joined[edge.fact_key]], [dim[edge.dim_key]]
        )
        if len(unmatched):
            raise SynopsisError(
                f"{len(unmatched)} fact rows have no match in "
                f"{edge.dimension!r} on {edge.fact_key}={edge.dim_key}"
            )
        if len(left_idx) != joined.num_rows:
            raise SynopsisError(
                f"FK edge to {edge.dimension!r} is not N:1 "
                f"({len(left_idx)} matches for {joined.num_rows} fact rows)"
            )
        # N:1 join preserves fact-row order once sorted by left index.
        order = np.argsort(left_idx, kind="stable")
        cols = {name: joined[name][left_idx[order]] for name in joined.column_names}
        for name in dim.column_names:
            cols[f"{edge.dimension}.{name}"] = dim[name][right_idx[order]]
        joined = Table(cols, name=f"{fact_table}_synopsis")
    weighted = WeightedSample(
        table=joined,
        weights=sample.weights,
        method="join_synopsis",
        population_rows=fact.num_rows,
        params={
            "fact_table": fact_table,
            "edges": tuple(edges),
            "sample_size": sample.num_rows,
        },
    )
    return JoinSynopsis(
        fact_table=fact_table,
        edges=tuple(edges),
        sample=weighted,
        built_at_rows=fact.num_rows,
    )


def refresh_needed(synopsis: JoinSynopsis, database, drift_threshold: float = 0.1) -> bool:
    """True when the fact table has grown/shrunk beyond ``drift_threshold``
    since the synopsis was built (the maintenance trigger)."""
    current = database.table(synopsis.fact_table).num_rows
    if synopsis.built_at_rows == 0:
        return current > 0
    drift = abs(current - synopsis.built_at_rows) / synopsis.built_at_rows
    return drift > drift_threshold
