"""Common sample representation.

Every sampler in this package returns a :class:`WeightedSample`: the
sampled rows plus a per-row Horvitz–Thompson weight (``1/π_i``). That
single convention lets downstream estimation (:mod:`repro.estimators`)
treat uniform, stratified, measure-biased, outlier and block samples
identically, which is exactly how systems like Quickr compose samplers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..engine.table import Table
from ..estimators.closed_form import Estimate
from ..estimators.horvitz_thompson import ht_count, ht_mean, ht_total


@dataclass
class WeightedSample:
    """A sample with HT weights.

    Attributes
    ----------
    table:
        The sampled rows.
    weights:
        Per-row HT weights (inverse inclusion probabilities), aligned with
        the table's rows.
    method:
        Sampler name, e.g. ``"uniform_rows"`` or ``"stratified:senate"``.
    population_rows:
        Size of the table the sample was drawn from.
    params:
        Sampler-specific parameters, for diagnostics and catalogs.
    """

    table: Table
    weights: np.ndarray
    method: str
    population_rows: int
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.weights) != self.table.num_rows:
            raise ValueError(
                f"weights ({len(self.weights)}) must align with rows "
                f"({self.table.num_rows})"
            )
        self.weights = np.asarray(self.weights, dtype=np.float64)

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @property
    def sampling_fraction(self) -> float:
        if self.population_rows == 0:
            return 0.0
        return self.num_rows / self.population_rows

    def inclusion_probabilities(self) -> np.ndarray:
        return 1.0 / np.maximum(self.weights, 1e-300)

    # ------------------------------------------------------------------
    # Estimation shortcuts
    # ------------------------------------------------------------------
    def estimate_sum(self, column: str) -> Estimate:
        return ht_total(
            np.asarray(self.table[column], dtype=np.float64),
            self.inclusion_probabilities(),
        )

    def estimate_count(self) -> Estimate:
        return ht_count(self.inclusion_probabilities())

    def estimate_avg(self, column: str) -> Estimate:
        return ht_mean(
            np.asarray(self.table[column], dtype=np.float64),
            self.inclusion_probabilities(),
        )

    def filtered(self, mask: np.ndarray) -> "WeightedSample":
        """Apply a predicate; weights follow the surviving rows.

        Filtering commutes with sampling for Bernoulli-style designs, so
        the filtered object remains a valid weighted sample of the
        filtered population.
        """
        mask = np.asarray(mask, dtype=bool)
        return WeightedSample(
            table=self.table.take(mask),
            weights=self.weights[mask],
            method=self.method,
            population_rows=self.population_rows,
            params=dict(self.params),
        )
