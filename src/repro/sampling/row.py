"""Row-level samplers: Bernoulli and fixed-size SRS.

The baseline samplers of all of AQP. Bernoulli sampling matches SQL's
``TABLESAMPLE BERNOULLI``; SRS matches ``ORDER BY random() LIMIT n``-style
fixed-size draws. Both are *statistically* ideal (independent rows) but
*systemically* expensive on block storage: they touch almost every block,
the inefficiency experiment E1/E3's cost curves expose.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..engine.table import Table
from .base import WeightedSample


def bernoulli_sample(
    table: Table, rate: float, rng: Optional[np.random.Generator] = None
) -> WeightedSample:
    """Keep each row independently with probability ``rate``."""
    if not (0.0 < rate <= 1.0):
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if rng is None:
        rng = np.random.default_rng()
    mask = rng.random(table.num_rows) < rate
    sampled = table.take(mask)
    weights = np.full(sampled.num_rows, 1.0 / rate)
    return WeightedSample(
        table=sampled,
        weights=weights,
        method="bernoulli_rows",
        population_rows=table.num_rows,
        params={"rate": rate},
    )


def srs_sample(
    table: Table, size: int, rng: Optional[np.random.Generator] = None
) -> WeightedSample:
    """Simple random sample of exactly ``size`` rows without replacement."""
    if size < 0:
        raise ValueError("size must be non-negative")
    if rng is None:
        rng = np.random.default_rng()
    n = table.num_rows
    size = min(size, n)
    idx = rng.choice(n, size=size, replace=False) if size else np.array([], dtype=np.int64)
    sampled = table.take(np.sort(idx))
    weights = np.full(size, n / size if size else 1.0)
    return WeightedSample(
        table=sampled,
        weights=weights,
        method="srs_rows",
        population_rows=n,
        params={"size": size},
    )


def systematic_sample(
    table: Table, step: int, rng: Optional[np.random.Generator] = None
) -> WeightedSample:
    """Every ``step``-th row from a random start offset.

    Cheap to execute on sequential storage but dangerous on periodic data
    — included as the classic example of a sampler whose validity depends
    on physical layout (a survey caveat about 'sampling is not one thing').
    """
    if step < 1:
        raise ValueError("step must be >= 1")
    if rng is None:
        rng = np.random.default_rng()
    n = table.num_rows
    start = int(rng.integers(0, step)) if n else 0
    idx = np.arange(start, n, step, dtype=np.int64)
    sampled = table.take(idx)
    weights = np.full(len(idx), float(step))
    return WeightedSample(
        table=sampled,
        weights=weights,
        method="systematic_rows",
        population_rows=n,
        params={"step": step, "start": start},
    )
