"""Recursive-descent parser for the SQL subset.

Grammar (informal):

.. code-block:: text

    select    := SELECT item (',' item)*
                 [FROM table_ref (join_clause)*]
                 [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
                 [ORDER BY order_item (',' order_item)*] [LIMIT n]
                 [ERROR WITHIN number '%' CONFIDENCE number '%'] [';']
    table_ref := ident [AS ident] [TABLESAMPLE method '(' number ')'
                 [REPEATABLE '(' number ')']]
    join      := [INNER|LEFT] JOIN table_ref ON expr
    expr      := or_expr with standard precedence:
                 OR < AND < NOT < comparison/IN/BETWEEN < +- < */% < unary

Only the features the engine executes are accepted; everything else raises
:class:`~repro.core.exceptions.SQLSyntaxError` with a position.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.exceptions import SQLSyntaxError
from .ast import (
    BetweenExpr,
    Binary,
    BoolLit,
    CaseExpr,
    ColumnRef,
    ErrorSpecClause,
    FuncExpr,
    InListExpr,
    JoinClause,
    NumberLit,
    OrderItem,
    SelectItem,
    SelectStatement,
    SqlExpr,
    StringLit,
    TableRef,
    TableSampleSpec,
    Unary,
)
from .lexer import Token, tokenize


class Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.peek().matches_keyword(*names):
            return self.advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        tok = self.accept_keyword(*names)
        if tok is None:
            raise SQLSyntaxError(
                f"expected {' or '.join(names)}, got {self.peek().value!r}",
                self.peek().position,
            )
        return tok

    def accept_op(self, op: str) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == "OP" and tok.value == op:
            return self.advance()
        return None

    def expect_op(self, op: str) -> Token:
        tok = self.accept_op(op)
        if tok is None:
            raise SQLSyntaxError(
                f"expected {op!r}, got {self.peek().value!r}", self.peek().position
            )
        return tok

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != "IDENT":
            raise SQLSyntaxError(
                f"expected identifier, got {tok.value!r}", tok.position
            )
        return self.advance()

    def expect_number(self) -> float:
        tok = self.peek()
        if tok.kind != "NUMBER":
            raise SQLSyntaxError(f"expected number, got {tok.value!r}", tok.position)
        self.advance()
        return float(tok.value)

    # -- entry point ----------------------------------------------------
    def parse_select(self) -> SelectStatement:
        """Parse ``select (UNION ALL select)*`` and the trailing EOF."""
        first = self._select_core()
        branches = []
        while self.accept_keyword("UNION"):
            self.expect_keyword("ALL")
            branches.append(self._select_core())
        self.accept_op(";")
        tok = self.peek()
        if tok.kind != "EOF":
            raise SQLSyntaxError(
                f"unexpected trailing input {tok.value!r}", tok.position
            )
        if branches:
            from dataclasses import replace as _replace

            for branch in (first, *branches):
                if branch.order_by or branch.limit is not None:
                    raise SQLSyntaxError(
                        "ORDER BY/LIMIT are not supported inside UNION ALL "
                        "branches", tok.position,
                    )
                if branch.error_spec is not None:
                    raise SQLSyntaxError(
                        "ERROR WITHIN is not supported on UNION ALL queries",
                        tok.position,
                    )
            return _replace(first, union_branches=tuple(branches))
        return first

    def _select_core(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        items = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())

        from_table: Optional[TableRef] = None
        joins: List[JoinClause] = []
        if self.accept_keyword("FROM"):
            from_table = self._table_ref()
            while True:
                how = "inner"
                if self.accept_keyword("INNER"):
                    self.expect_keyword("JOIN")
                elif self.accept_keyword("LEFT"):
                    how = "left"
                    self.expect_keyword("JOIN")
                elif self.accept_keyword("JOIN"):
                    pass
                else:
                    break
                table = self._table_ref()
                self.expect_keyword("ON")
                condition = self.parse_expr()
                joins.append(JoinClause(table=table, condition=condition, how=how))

        where = self.parse_expr() if self.accept_keyword("WHERE") else None

        group_by: List[SqlExpr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_op(","):
                group_by.append(self.parse_expr())

        having = self.parse_expr() if self.accept_keyword("HAVING") else None

        order_by: List[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._order_item())
            while self.accept_op(","):
                order_by.append(self._order_item())

        limit = None
        if self.accept_keyword("LIMIT"):
            limit = int(self.expect_number())

        error_spec = None
        if self.accept_keyword("ERROR"):
            self.expect_keyword("WITHIN")
            err = self.expect_number()
            self.expect_op("%")
            self.expect_keyword("CONFIDENCE")
            conf = self.expect_number()
            self.expect_op("%")
            error_spec = ErrorSpecClause(
                relative_error=err / 100.0, confidence=conf / 100.0
            )

        return SelectStatement(
            items=tuple(items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            error_spec=error_spec,
        )

    # -- clauses ---------------------------------------------------------
    def _select_item(self) -> SelectItem:
        if self.peek().kind == "OP" and self.peek().value == "*":
            self.advance()
            return SelectItem(expr=ColumnRef(name="*"), alias=None)
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident().value
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return SelectItem(expr=expr, alias=alias)

    def _order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr=expr, ascending=ascending)

    def _table_ref(self) -> TableRef:
        name = self.expect_ident().value
        alias = name
        if self.accept_keyword("AS"):
            alias = self.expect_ident().value
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        sample = None
        if self.accept_keyword("TABLESAMPLE"):
            method_tok = self.peek()
            if method_tok.matches_keyword("BERNOULLI", "SYSTEM", "ROWS", "BLOCKS"):
                self.advance()
            else:
                raise SQLSyntaxError(
                    "expected BERNOULLI, SYSTEM, ROWS or BLOCKS",
                    method_tok.position,
                )
            self.expect_op("(")
            value = self.expect_number()
            self.expect_op(")")
            seed = None
            if self.accept_keyword("REPEATABLE"):
                self.expect_op("(")
                seed = int(self.expect_number())
                self.expect_op(")")
            sample = TableSampleSpec(method=method_tok.value, value=value, seed=seed)
        return TableRef(name=name, alias=alias, sample=sample)

    # -- expressions ------------------------------------------------------
    def parse_expr(self) -> SqlExpr:
        return self._or_expr()

    def _or_expr(self) -> SqlExpr:
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = Binary("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> SqlExpr:
        left = self._not_expr()
        while self.accept_keyword("AND"):
            left = Binary("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> SqlExpr:
        if self.accept_keyword("NOT"):
            return Unary("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> SqlExpr:
        left = self._additive()
        tok = self.peek()
        if tok.kind == "OP" and tok.value in ("=", "<>", "<", "<=", ">", ">="):
            self.advance()
            return Binary(tok.value, left, self._additive())
        negated = False
        if self.peek().matches_keyword("NOT") and self.peek(1).matches_keyword(
            "IN", "BETWEEN"
        ):
            self.advance()
            negated = True
        if self.accept_keyword("IN"):
            self.expect_op("(")
            values = [self.parse_expr()]
            while self.accept_op(","):
                values.append(self.parse_expr())
            self.expect_op(")")
            return InListExpr(operand=left, values=tuple(values), negated=negated)
        if self.accept_keyword("BETWEEN"):
            low = self._additive()
            self.expect_keyword("AND")
            high = self._additive()
            return BetweenExpr(operand=left, low=low, high=high, negated=negated)
        if negated:
            raise SQLSyntaxError("dangling NOT", self.peek().position)
        return left

    def _additive(self) -> SqlExpr:
        left = self._multiplicative()
        while True:
            tok = self.peek()
            if tok.kind == "OP" and tok.value in ("+", "-"):
                self.advance()
                left = Binary(tok.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> SqlExpr:
        left = self._unary()
        while True:
            tok = self.peek()
            if tok.kind == "OP" and tok.value in ("*", "/", "%"):
                # '%' only acts as modulo inside expressions; the ERROR
                # clause consumes its own '%' tokens after a NUMBER.
                self.advance()
                left = Binary(tok.value, left, self._unary())
            else:
                return left

    def _unary(self) -> SqlExpr:
        if self.accept_op("-"):
            return Unary("-", self._unary())
        self.accept_op("+")
        return self._primary()

    def _primary(self) -> SqlExpr:
        tok = self.peek()
        if tok.kind == "NUMBER":
            self.advance()
            return NumberLit(float(tok.value))
        if tok.kind == "STRING":
            self.advance()
            return StringLit(tok.value)
        if tok.matches_keyword("TRUE"):
            self.advance()
            return BoolLit(True)
        if tok.matches_keyword("FALSE"):
            self.advance()
            return BoolLit(False)
        if tok.matches_keyword("CASE"):
            return self._case_expr()
        if tok.kind == "OP" and tok.value == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if tok.kind == "IDENT":
            return self._ident_expr()
        raise SQLSyntaxError(
            f"unexpected token {tok.value!r} in expression", tok.position
        )

    def _case_expr(self) -> SqlExpr:
        self.expect_keyword("CASE")
        branches: List[Tuple[SqlExpr, SqlExpr]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            value = self.parse_expr()
            branches.append((cond, value))
        if not branches:
            raise SQLSyntaxError("CASE requires WHEN", self.peek().position)
        default = self.parse_expr() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        return CaseExpr(branches=tuple(branches), default=default)

    def _ident_expr(self) -> SqlExpr:
        first = self.expect_ident().value
        # Function call?
        if self.peek().kind == "OP" and self.peek().value == "(":
            self.advance()
            distinct = bool(self.accept_keyword("DISTINCT"))
            if self.peek().kind == "OP" and self.peek().value == "*":
                self.advance()
                self.expect_op(")")
                return FuncExpr(name=first.lower(), args=(), star=True)
            args: List[SqlExpr] = []
            if not (self.peek().kind == "OP" and self.peek().value == ")"):
                args.append(self.parse_expr())
                while self.accept_op(","):
                    args.append(self.parse_expr())
            self.expect_op(")")
            return FuncExpr(
                name=first.lower(), args=tuple(args), distinct=distinct
            )
        # Qualified column?
        if self.accept_op("."):
            second = self.expect_ident().value
            return ColumnRef(name=second, qualifier=first)
        return ColumnRef(name=first)


def parse_sql(text: str) -> SelectStatement:
    """Parse a single SELECT statement."""
    return Parser(text).parse_select()


def split_explain(text: str) -> Tuple[Optional[str], str]:
    """Peel an ``EXPLAIN [ANALYZE]`` prefix off a SQL string.

    Returns ``(mode, inner_sql)`` where ``mode`` is ``None`` (no
    prefix), ``"explain"`` or ``"analyze"``. EXPLAIN/ANALYZE are not
    lexer keywords — they arrive as IDENT tokens — so the prefix is
    matched case-insensitively on token values and the inner statement
    is sliced out of the original text by source offset, preserving it
    byte-for-byte for the downstream parser.
    """
    tokens = tokenize(text)
    if not tokens or tokens[0].kind != "IDENT":
        return None, text
    if tokens[0].value.upper() != "EXPLAIN":
        return None, text
    if len(tokens) < 2 or tokens[1].kind == "EOF":
        raise SQLSyntaxError("EXPLAIN requires a statement", tokens[0].position)
    mode = "explain"
    rest = tokens[1]
    if rest.kind == "IDENT" and rest.value.upper() == "ANALYZE":
        mode = "analyze"
        if len(tokens) < 3 or tokens[2].kind == "EOF":
            raise SQLSyntaxError(
                "EXPLAIN ANALYZE requires a statement", rest.position
            )
        rest = tokens[2]
    return mode, text[rest.position:]
