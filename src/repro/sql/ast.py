"""Abstract syntax tree for the SQL subset.

The AST is produced by :mod:`repro.sql.parser` and consumed by
:mod:`repro.sql.binder`, which resolves names against a
:class:`~repro.engine.database.Database` and lowers it to a logical plan.
It is deliberately close to the grammar: expression nodes here are
*unresolved* (column references are raw dotted names).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


# ----------------------------------------------------------------------
# Expressions (unresolved)
# ----------------------------------------------------------------------

class SqlExpr:
    """Base class for parsed expressions."""


@dataclass(frozen=True)
class ColumnRef(SqlExpr):
    """Possibly-qualified column reference: ``name`` or ``qualifier.name``."""

    name: str
    qualifier: Optional[str] = None

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class NumberLit(SqlExpr):
    value: float

    def display(self) -> str:
        v = self.value
        return str(int(v)) if float(v).is_integer() else str(v)


@dataclass(frozen=True)
class StringLit(SqlExpr):
    value: str

    def display(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True)
class BoolLit(SqlExpr):
    value: bool

    def display(self) -> str:
        return "TRUE" if self.value else "FALSE"


@dataclass(frozen=True)
class Unary(SqlExpr):
    op: str  # '-' or 'NOT'
    operand: SqlExpr

    def display(self) -> str:
        return f"({self.op} {_disp(self.operand)})"


@dataclass(frozen=True)
class Binary(SqlExpr):
    op: str  # arithmetic, comparison, AND, OR
    left: SqlExpr
    right: SqlExpr

    def display(self) -> str:
        return f"({_disp(self.left)} {self.op} {_disp(self.right)})"


@dataclass(frozen=True)
class InListExpr(SqlExpr):
    operand: SqlExpr
    values: Tuple[SqlExpr, ...]
    negated: bool = False

    def display(self) -> str:
        inner = ", ".join(_disp(v) for v in self.values)
        word = "NOT IN" if self.negated else "IN"
        return f"({_disp(self.operand)} {word} ({inner}))"


@dataclass(frozen=True)
class BetweenExpr(SqlExpr):
    operand: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool = False

    def display(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({_disp(self.operand)} {word} {_disp(self.low)} AND {_disp(self.high)})"


@dataclass(frozen=True)
class CaseExpr(SqlExpr):
    branches: Tuple[Tuple[SqlExpr, SqlExpr], ...]
    default: Optional[SqlExpr]

    def display(self) -> str:
        parts = " ".join(
            f"WHEN {_disp(c)} THEN {_disp(v)}" for c, v in self.branches
        )
        tail = f" ELSE {_disp(self.default)}" if self.default is not None else ""
        return f"(CASE {parts}{tail} END)"


@dataclass(frozen=True)
class FuncExpr(SqlExpr):
    """Scalar or aggregate function call. ``star`` marks ``COUNT(*)``."""

    name: str
    args: Tuple[SqlExpr, ...]
    distinct: bool = False
    star: bool = False

    def display(self) -> str:
        if self.star:
            return f"{self.name}(*)"
        inner = ", ".join(_disp(a) for a in self.args)
        d = "DISTINCT " if self.distinct else ""
        return f"{self.name}({d}{inner})"


def _disp(e: Optional[SqlExpr]) -> str:
    if e is None:
        return "NULL"
    return e.display() if hasattr(e, "display") else repr(e)


# ----------------------------------------------------------------------
# Query structure
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TableSampleSpec:
    """``TABLESAMPLE {BERNOULLI|SYSTEM} (pct) [REPEATABLE (seed)]`` or the
    fixed-size extension ``TABLESAMPLE {ROWS|BLOCKS} (n)``."""

    method: str  # BERNOULLI, SYSTEM, ROWS, BLOCKS
    value: float
    seed: Optional[int] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str
    sample: Optional[TableSampleSpec] = None


@dataclass(frozen=True)
class JoinClause:
    table: TableRef
    condition: SqlExpr  # conjunction of equality predicates
    how: str = "inner"


@dataclass(frozen=True)
class SelectItem:
    expr: SqlExpr
    alias: Optional[str]


@dataclass(frozen=True)
class OrderItem:
    expr: SqlExpr
    ascending: bool = True


@dataclass(frozen=True)
class ErrorSpecClause:
    """The AQP extension: ``ERROR WITHIN e% CONFIDENCE c%``."""

    relative_error: float  # e.g. 0.05
    confidence: float  # e.g. 0.95


@dataclass(frozen=True)
class SelectStatement:
    items: Tuple[SelectItem, ...]
    from_table: Optional[TableRef]
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[SqlExpr] = None
    group_by: Tuple[SqlExpr, ...] = ()
    having: Optional[SqlExpr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    error_spec: Optional[ErrorSpecClause] = None
    #: additional SELECTs combined with UNION ALL (bag union)
    union_branches: Tuple["SelectStatement", ...] = ()
