"""SQL front-end: lexer, parser, AST, and binder."""

from .binder import BoundQuery, bind_sql
from .parser import parse_sql

__all__ = ["BoundQuery", "bind_sql", "parse_sql"]
