"""SQL tokenizer.

A hand-written scanner for the SQL subset the engine supports, plus the
AQP extension keywords (``ERROR WITHIN ... CONFIDENCE ...`` and
``TABLESAMPLE``). Tokens carry their source offset so parse errors point
at the offending character.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..core.exceptions import SQLSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "IN", "BETWEEN", "JOIN", "INNER", "LEFT",
    "ON", "UNION", "ALL", "DISTINCT", "ASC", "DESC", "CASE", "WHEN",
    "THEN", "ELSE", "END", "TABLESAMPLE", "BERNOULLI", "SYSTEM", "ROWS",
    "BLOCKS", "REPEATABLE", "ERROR", "WITHIN", "CONFIDENCE", "NULL",
    "TRUE", "FALSE", "IS", "LIKE",
}

OPERATORS = ["<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%",
              "(", ")", ",", ".", ";"]


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD, IDENT, NUMBER, STRING, OP, EOF
    value: str
    position: int

    def matches_keyword(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.value in names

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.position})"


def tokenize(text: str) -> List[Token]:
    """Convert SQL text to a token list ending with an EOF token."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":  # line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            else:
                raise SQLSyntaxError("unterminated string literal", i)
            tokens.append(Token("STRING", "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and text[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        if ch == '"':  # quoted identifier
            j = text.find('"', i + 1)
            if j < 0:
                raise SQLSyntaxError("unterminated quoted identifier", i)
            tokens.append(Token("IDENT", text[i + 1:j], i))
            i = j + 1
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", "<>" if op == "!=" else op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token("EOF", "", n))
    return tokens
