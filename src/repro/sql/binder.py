"""Name resolution and lowering from AST to logical plans.

The binder resolves every column reference against the database catalog,
decomposes SELECT items into *simple aggregates* plus *post-aggregation
expressions* (the structure the AQP error-propagation rules operate on),
and produces both:

* a ready-to-run exact plan (:attr:`BoundQuery.plan`), and
* the disassembled pieces (:attr:`BoundQuery.pre_agg_plan`, aggregate
  specs, group keys, post-agg projection) that the approximate planners
  rewrite.

Column naming convention: scan outputs are qualified as ``alias.column``;
aggregate outputs use the user alias or the source display string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.exceptions import BindError, UnsupportedQueryError
from ..engine import expressions as E
from ..engine.aggregates import SUPPORTED_AGGREGATES, AggregateSpec
from ..engine.plan import (
    Filter,
    GroupByAggregate,
    HashJoin,
    Limit,
    OrderBy,
    PlanNode,
    Project,
    SampleClause,
    Scan,
    UnionAll,
)
from . import ast as A
from .parser import parse_sql

AGGREGATE_NAMES = {"sum", "count", "avg", "min", "max", "var", "stddev"}


@dataclass
class BoundTable:
    """One FROM-clause table after resolution."""

    name: str
    alias: str
    sample: Optional[SampleClause]
    num_rows: int
    num_blocks: int
    block_size: int


@dataclass
class BoundQuery:
    """The binder's output: an executable plan plus AQP-ready pieces."""

    statement: A.SelectStatement
    plan: PlanNode
    tables: List[BoundTable]
    where: Optional[E.Expression]
    is_aggregate: bool
    #: plan producing the pre-aggregation input relation (joins + filters)
    pre_agg_plan: Optional[PlanNode] = None
    #: simple aggregates computed over the pre-agg relation
    aggregates: List[AggregateSpec] = field(default_factory=list)
    #: group-by keys as (expression over pre-agg relation, output alias)
    group_keys: List[Tuple[E.Expression, str]] = field(default_factory=list)
    #: post-aggregation SELECT expressions over (key aliases + agg aliases)
    output_items: List[Tuple[E.Expression, str]] = field(default_factory=list)
    #: HAVING over the aggregate output, if any
    having: Optional[E.Expression] = None
    order_by: List[Tuple[str, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    error_spec: Optional[A.ErrorSpecClause] = None

    @property
    def output_aliases(self) -> List[str]:
        return [alias for _, alias in self.output_items]


# ----------------------------------------------------------------------
# Scope: alias -> available columns
# ----------------------------------------------------------------------

class _Scope:
    def __init__(self) -> None:
        self.by_alias: Dict[str, Set[str]] = {}

    def add(self, alias: str, columns: Sequence[str]) -> None:
        if alias in self.by_alias:
            raise BindError(f"duplicate table alias {alias!r}")
        self.by_alias[alias] = set(columns)

    def resolve(self, ref: A.ColumnRef) -> str:
        if ref.qualifier is not None:
            cols = self.by_alias.get(ref.qualifier)
            if cols is None:
                raise BindError(f"unknown table alias {ref.qualifier!r}")
            if ref.name not in cols:
                raise BindError(
                    f"column {ref.name!r} not in table {ref.qualifier!r}"
                )
            return f"{ref.qualifier}.{ref.name}"
        hits = [
            alias for alias, cols in self.by_alias.items() if ref.name in cols
        ]
        if not hits:
            raise BindError(f"unknown column {ref.name!r}")
        if len(hits) > 1:
            raise BindError(
                f"ambiguous column {ref.name!r} (in tables {sorted(hits)})"
            )
        return f"{hits[0]}.{ref.name}"

    def all_qualified(self) -> List[str]:
        out = []
        for alias in self.by_alias:
            for col in sorted(self.by_alias[alias]):
                out.append(f"{alias}.{col}")
        return out


# ----------------------------------------------------------------------
# Expression resolution
# ----------------------------------------------------------------------

def _contains_aggregate(expr: A.SqlExpr) -> bool:
    if isinstance(expr, A.FuncExpr) and expr.name in AGGREGATE_NAMES:
        return True
    for child in _ast_children(expr):
        if _contains_aggregate(child):
            return True
    return False


def _ast_children(expr: A.SqlExpr) -> List[A.SqlExpr]:
    if isinstance(expr, A.Unary):
        return [expr.operand]
    if isinstance(expr, A.Binary):
        return [expr.left, expr.right]
    if isinstance(expr, A.InListExpr):
        return [expr.operand, *expr.values]
    if isinstance(expr, A.BetweenExpr):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, A.CaseExpr):
        out: List[A.SqlExpr] = []
        for c, v in expr.branches:
            out.extend((c, v))
        if expr.default is not None:
            out.append(expr.default)
        return out
    if isinstance(expr, A.FuncExpr):
        return list(expr.args)
    return []


def resolve_scalar(expr: A.SqlExpr, scope: _Scope) -> E.Expression:
    """Resolve an AST expression containing no aggregates."""
    if isinstance(expr, A.ColumnRef):
        return E.Column(scope.resolve(expr))
    if isinstance(expr, A.NumberLit):
        value = expr.value
        return E.Literal(int(value) if float(value).is_integer() else value)
    if isinstance(expr, A.StringLit):
        return E.Literal(expr.value)
    if isinstance(expr, A.BoolLit):
        return E.Literal(expr.value)
    if isinstance(expr, A.Unary):
        inner = resolve_scalar(expr.operand, scope)
        if expr.op == "NOT":
            return E.NotOp(inner)
        return E.UnaryOp("-", inner)
    if isinstance(expr, A.Binary):
        left = resolve_scalar(expr.left, scope)
        right = resolve_scalar(expr.right, scope)
        if expr.op in ("AND", "OR"):
            return E.BooleanOp(expr.op, [left, right])
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            return E.Comparison(expr.op, left, right)
        return E.BinaryOp(expr.op, left, right)
    if isinstance(expr, A.InListExpr):
        operand = resolve_scalar(expr.operand, scope)
        values = []
        for v in expr.values:
            if isinstance(v, A.NumberLit):
                values.append(int(v.value) if float(v.value).is_integer() else v.value)
            elif isinstance(v, A.StringLit):
                values.append(v.value)
            else:
                raise BindError("IN list values must be literals")
        node: E.Expression = E.InList(operand, values)
        return E.NotOp(node) if expr.negated else node
    if isinstance(expr, A.BetweenExpr):
        node = E.Between(
            resolve_scalar(expr.operand, scope),
            resolve_scalar(expr.low, scope),
            resolve_scalar(expr.high, scope),
        )
        return E.NotOp(node) if expr.negated else node
    if isinstance(expr, A.CaseExpr):
        branches = [
            (resolve_scalar(c, scope), resolve_scalar(v, scope))
            for c, v in expr.branches
        ]
        default = (
            resolve_scalar(expr.default, scope)
            if expr.default is not None
            else None
        )
        return E.CaseWhen(branches, default)
    if isinstance(expr, A.FuncExpr):
        if expr.name in AGGREGATE_NAMES:
            raise BindError(
                f"aggregate {expr.name.upper()} not allowed here"
            )
        args = [resolve_scalar(a, scope) for a in expr.args]
        return E.FunctionCall(expr.name, args)
    raise BindError(f"cannot resolve expression {expr!r}")


# ----------------------------------------------------------------------
# Sample clause lowering
# ----------------------------------------------------------------------

def _lower_sample(spec: Optional[A.TableSampleSpec]) -> Optional[SampleClause]:
    if spec is None:
        return None
    if spec.method == "BERNOULLI":
        return SampleClause("bernoulli_rows", rate=spec.value / 100.0, seed=spec.seed)
    if spec.method == "SYSTEM":
        return SampleClause("system_blocks", rate=spec.value / 100.0, seed=spec.seed)
    if spec.method == "ROWS":
        return SampleClause("fixed_rows", size=int(spec.value), seed=spec.seed)
    if spec.method == "BLOCKS":
        return SampleClause("fixed_blocks", size=int(spec.value), seed=spec.seed)
    raise BindError(f"unknown sample method {spec.method!r}")


# ----------------------------------------------------------------------
# Main binding routine
# ----------------------------------------------------------------------

def bind_statement(stmt: A.SelectStatement, database) -> BoundQuery:
    if stmt.union_branches:
        return _bind_union(stmt, database)
    scope = _Scope()
    tables: List[BoundTable] = []

    def add_table(ref: A.TableRef) -> Scan:
        table = database.table(ref.name)  # raises SchemaError if missing
        scope.add(ref.alias, table.column_names)
        tables.append(
            BoundTable(
                name=ref.name,
                alias=ref.alias,
                sample=_lower_sample(ref.sample),
                num_rows=table.num_rows,
                num_blocks=table.num_blocks,
                block_size=table.block_size,
            )
        )
        return Scan(
            table_name=ref.name,
            sample=_lower_sample(ref.sample),
            alias=ref.alias,
        )

    # FROM + JOINs -> left-deep join tree
    plan: Optional[PlanNode] = None
    left_aliases: Set[str] = set()
    post_join_filters: List[E.Expression] = []
    if stmt.from_table is not None:
        plan = add_table(stmt.from_table)
        left_aliases.add(stmt.from_table.alias)
        for join in stmt.joins:
            right_scan = add_table(join.table)
            left_keys, right_keys, residual = _split_join_condition(
                join.condition, scope, left_aliases, join.table.alias
            )
            if not left_keys:
                raise UnsupportedQueryError(
                    "only equi-joins are supported (no equality key found)"
                )
            plan = HashJoin(
                left=plan,
                right=right_scan,
                left_keys=tuple(left_keys),
                right_keys=tuple(right_keys),
                how=join.how,
            )
            post_join_filters.extend(residual)
            left_aliases.add(join.table.alias)
    else:
        raise BindError("queries without FROM are not supported")

    # WHERE
    where_expr: Optional[E.Expression] = None
    predicates: List[E.Expression] = list(post_join_filters)
    if stmt.where is not None:
        if _contains_aggregate(stmt.where):
            raise BindError("aggregates are not allowed in WHERE")
        predicates.append(resolve_scalar(stmt.where, scope))
    if predicates:
        where_expr = E.combine_conjuncts(predicates)
        plan = Filter(plan, where_expr)

    pre_agg_plan = plan

    # Determine aggregate vs plain query
    has_aggregate = any(_contains_aggregate(item.expr) for item in stmt.items)
    is_aggregate = has_aggregate or bool(stmt.group_by)

    bound = BoundQuery(
        statement=stmt,
        plan=plan,  # placeholder, replaced below
        tables=tables,
        where=where_expr,
        is_aggregate=is_aggregate,
        error_spec=stmt.error_spec,
    )

    if not is_aggregate:
        _bind_plain_query(stmt, scope, plan, bound)
        return bound

    _bind_aggregate_query(stmt, scope, pre_agg_plan, bound)
    return bound


def _bind_plain_query(
    stmt: A.SelectStatement, scope: _Scope, plan: PlanNode, bound: BoundQuery
) -> None:
    items: List[Tuple[E.Expression, str]] = []
    for item in stmt.items:
        if isinstance(item.expr, A.ColumnRef) and item.expr.name == "*":
            for qualified in scope.all_qualified():
                short = qualified.split(".", 1)[1]
                alias = short if _unambiguous(scope, short) else qualified
                items.append((E.Column(qualified), alias))
            continue
        resolved = resolve_scalar(item.expr, scope)
        alias = item.alias or item.expr.display()
        items.append((resolved, alias))
    plan = Project(plan, tuple(items))
    plan = _apply_order_limit(stmt, plan, [a for _, a in items], scope, bound)
    bound.plan = plan
    bound.output_items = items


def _unambiguous(scope: _Scope, column: str) -> bool:
    return sum(1 for cols in scope.by_alias.values() if column in cols) == 1


def _bind_aggregate_query(
    stmt: A.SelectStatement,
    scope: _Scope,
    pre_agg_plan: PlanNode,
    bound: BoundQuery,
) -> None:
    # Group keys
    group_keys: List[Tuple[E.Expression, str]] = []
    group_display: Dict[str, str] = {}  # AST display -> key alias
    for key_ast in stmt.group_by:
        if _contains_aggregate(key_ast):
            raise UnsupportedQueryError("aggregates in GROUP BY are not supported")
        resolved = resolve_scalar(key_ast, scope)
        alias = key_ast.display()
        group_keys.append((resolved, alias))
        group_display[key_ast.display()] = alias

    aggregates: List[AggregateSpec] = []
    agg_by_display: Dict[str, str] = {}  # display -> agg alias

    def lower_aggregate(fexpr: A.FuncExpr) -> str:
        """Register a simple aggregate, returning its output alias."""
        display = fexpr.display()
        if display in agg_by_display:
            return agg_by_display[display]
        for arg in fexpr.args:
            if _contains_aggregate(arg):
                raise BindError("nested aggregates are not allowed")
        if fexpr.star:
            argument = None
        elif len(fexpr.args) == 1:
            argument = resolve_scalar(fexpr.args[0], scope)
        else:
            raise BindError(
                f"{fexpr.name.upper()} takes exactly one argument"
            )
        alias = f"__agg{len(aggregates)}"
        spec = AggregateSpec(
            func=fexpr.name,
            argument=argument,
            alias=alias,
            distinct=fexpr.distinct,
        )
        aggregates.append(spec)
        agg_by_display[display] = alias
        return alias

    def lower_post_agg(expr: A.SqlExpr) -> E.Expression:
        """Rewrite a SELECT/HAVING expression into one over agg output."""
        if isinstance(expr, A.FuncExpr) and expr.name in AGGREGATE_NAMES:
            return E.Column(lower_aggregate(expr))
        display = expr.display()
        if display in group_display:
            return E.Column(group_display[display])
        if isinstance(expr, A.ColumnRef):
            # A bare column in an aggregate query must be a group key.
            qualified = scope.resolve(expr)
            for key_expr, key_alias in group_keys:
                if isinstance(key_expr, E.Column) and key_expr.name == qualified:
                    return E.Column(key_alias)
            raise BindError(
                f"column {expr.display()!r} must appear in GROUP BY "
                "or be inside an aggregate"
            )
        if isinstance(expr, A.NumberLit):
            v = expr.value
            return E.Literal(int(v) if float(v).is_integer() else v)
        if isinstance(expr, A.StringLit):
            return E.Literal(expr.value)
        if isinstance(expr, A.Unary):
            inner = lower_post_agg(expr.operand)
            return E.NotOp(inner) if expr.op == "NOT" else E.UnaryOp("-", inner)
        if isinstance(expr, A.Binary):
            left = lower_post_agg(expr.left)
            right = lower_post_agg(expr.right)
            if expr.op in ("AND", "OR"):
                return E.BooleanOp(expr.op, [left, right])
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                return E.Comparison(expr.op, left, right)
            return E.BinaryOp(expr.op, left, right)
        if isinstance(expr, A.BetweenExpr):
            node = E.Between(
                lower_post_agg(expr.operand),
                lower_post_agg(expr.low),
                lower_post_agg(expr.high),
            )
            return E.NotOp(node) if expr.negated else node
        if isinstance(expr, A.InListExpr):
            operand = lower_post_agg(expr.operand)
            values = [
                v.value if isinstance(v, (A.NumberLit, A.StringLit)) else None
                for v in expr.values
            ]
            node = E.InList(operand, values)
            return E.NotOp(node) if expr.negated else node
        if isinstance(expr, A.CaseExpr):
            branches = [
                (lower_post_agg(c), lower_post_agg(v)) for c, v in expr.branches
            ]
            default = (
                lower_post_agg(expr.default) if expr.default is not None else None
            )
            return E.CaseWhen(branches, default)
        raise BindError(f"cannot use {expr.display()!r} in an aggregate query")

    # SELECT items
    output_items: List[Tuple[E.Expression, str]] = []
    for item in stmt.items:
        if isinstance(item.expr, A.ColumnRef) and item.expr.name == "*":
            raise BindError("SELECT * is not allowed in aggregate queries")
        resolved = lower_post_agg(item.expr)
        alias = item.alias or item.expr.display()
        output_items.append((resolved, alias))

    # HAVING
    having_expr: Optional[E.Expression] = None
    if stmt.having is not None:
        having_expr = lower_post_agg(stmt.having)

    agg_node = GroupByAggregate(
        child=pre_agg_plan,
        keys=tuple(group_keys),
        aggregates=tuple(aggregates),
        having=having_expr,
    )
    plan: PlanNode = Project(agg_node, tuple(output_items))
    plan = _apply_order_limit(
        stmt, plan, [a for _, a in output_items], scope, bound
    )

    bound.plan = plan
    bound.pre_agg_plan = pre_agg_plan
    bound.aggregates = aggregates
    bound.group_keys = group_keys
    bound.output_items = output_items
    bound.having = having_expr


def _apply_order_limit(
    stmt: A.SelectStatement,
    plan: PlanNode,
    output_aliases: List[str],
    scope: _Scope,
    bound: BoundQuery,
) -> PlanNode:
    order_items: List[Tuple[str, bool]] = []
    for item in stmt.order_by:
        name = None
        if isinstance(item.expr, A.ColumnRef) and item.expr.qualifier is None:
            if item.expr.name in output_aliases:
                name = item.expr.name
        if name is None and item.expr.display() in output_aliases:
            name = item.expr.display()
        if name is None and isinstance(item.expr, A.NumberLit):
            pos = int(item.expr.value) - 1
            if not 0 <= pos < len(output_aliases):
                raise BindError(f"ORDER BY position {pos + 1} out of range")
            name = output_aliases[pos]
        if name is None:
            raise BindError(
                f"ORDER BY expression {item.expr.display()!r} must be an "
                "output column, its alias, or a position"
            )
        order_items.append((name, item.ascending))
    if order_items:
        plan = OrderBy(plan, tuple(order_items))
        bound.order_by = order_items
    if stmt.limit is not None:
        plan = Limit(plan, stmt.limit)
        bound.limit = stmt.limit
    return plan


def _split_join_condition(
    condition: A.SqlExpr,
    scope: _Scope,
    left_aliases: Set[str],
    right_alias: str,
) -> Tuple[List[str], List[str], List[E.Expression]]:
    """Split an ON condition into equi-join keys plus residual predicates."""
    left_keys: List[str] = []
    right_keys: List[str] = []
    residual: List[E.Expression] = []

    def visit(expr: A.SqlExpr) -> None:
        if isinstance(expr, A.Binary) and expr.op == "AND":
            visit(expr.left)
            visit(expr.right)
            return
        if (
            isinstance(expr, A.Binary)
            and expr.op == "="
            and isinstance(expr.left, A.ColumnRef)
            and isinstance(expr.right, A.ColumnRef)
        ):
            lq = scope.resolve(expr.left)
            rq = scope.resolve(expr.right)
            l_alias = lq.split(".", 1)[0]
            r_alias = rq.split(".", 1)[0]
            if l_alias in left_aliases and r_alias == right_alias:
                left_keys.append(lq)
                right_keys.append(rq)
                return
            if r_alias in left_aliases and l_alias == right_alias:
                left_keys.append(rq)
                right_keys.append(lq)
                return
        residual.append(resolve_scalar(expr, scope))

    visit(condition)
    return left_keys, right_keys, residual


def _bind_union(stmt: A.SelectStatement, database) -> BoundQuery:
    """Bind a UNION ALL compound: each branch independently, schemas must
    match by output alias list; the result is a plain (non-aggregate)
    bag-union plan."""
    from dataclasses import replace as _replace

    branches = [_replace(stmt, union_branches=())] + list(stmt.union_branches)
    bound_branches = [bind_statement(b, database) for b in branches]
    first_aliases = bound_branches[0].output_aliases
    for b in bound_branches[1:]:
        if b.output_aliases != first_aliases:
            raise BindError(
                f"UNION ALL branches must produce the same columns: "
                f"{first_aliases} vs {b.output_aliases}"
            )
    plan = UnionAll(tuple(b.plan for b in bound_branches))
    tables: List[BoundTable] = []
    for b in bound_branches:
        tables.extend(b.tables)
    return BoundQuery(
        statement=stmt,
        plan=plan,
        tables=tables,
        where=None,
        is_aggregate=False,
        output_items=bound_branches[0].output_items,
    )


def bind_sql(query: str, database) -> BoundQuery:
    """Parse and bind a SQL string against a database."""
    from ..obs.trace import span

    with span("plan") as sp:
        bound = bind_statement(parse_sql(query), database)
        sp.set(
            tables=[t.name for t in bound.tables],
            is_aggregate=bound.is_aggregate,
            has_error_spec=bound.error_spec is not None,
        )
        return bound
