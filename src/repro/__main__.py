"""Command-line interface: ``python -m repro``.

Runs SQL (exact or approximate) against a generated benchmark database or
CSV files, printing results and — for approximate runs — the guarantee
diagnostics. Intended as the smallest possible end-to-end demo surface:

.. code-block:: bash

    # one-shot query against generated TPC-H-lite
    python -m repro --demo tpch --scale 2 \\
        "SELECT l_shipmode, SUM(l_extendedprice) AS rev FROM lineitem \\
         GROUP BY l_shipmode ERROR WITHIN 5% CONFIDENCE 95%"

    # interactive session over CSV files
    python -m repro --csv sales=data/sales.csv

    # parallel benchmark harness (-> benchmarks/results/BENCH_results.json)
    python -m repro bench --smoke
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from typing import Dict, List, Optional

import numpy as np

from . import Database
from .core.options import QueryOptions
from .core.result import ApproximateResult
from .workloads import generate_ssb, generate_tpch


def load_csv(database: Database, name: str, path: str) -> None:
    """Load a CSV file as a table, inferring numeric columns."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        raw: List[List[str]] = [row for row in reader if row]
    columns: Dict[str, np.ndarray] = {}
    for i, col in enumerate(header):
        values = [row[i] for row in raw]
        try:
            columns[col] = np.asarray([float(v) for v in values])
        except ValueError:
            columns[col] = np.asarray(values, dtype=object)
    database.create_table(name, columns)


def format_result(result) -> str:
    lines: List[str] = []
    table = result.table
    names = table.column_names
    widths = [
        max(len(n), *(len(f"{table[n][i]}") for i in range(min(table.num_rows, 50))))
        if table.num_rows
        else len(n)
        for n in names
    ]
    lines.append("  ".join(n.ljust(w) for n, w in zip(names, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for i in range(min(table.num_rows, 50)):
        lines.append(
            "  ".join(f"{table[n][i]}".ljust(w) for n, w in zip(names, widths))
        )
    if table.num_rows > 50:
        lines.append(f"... ({table.num_rows} rows total)")
    if isinstance(result, ApproximateResult):
        lines.append("")
        lines.append(
            f"[approximate] technique={result.technique} "
            f"scanned={result.fraction_scanned:.1%} of blocks "
            f"speedup~{result.speedup:.1f}x "
            f"worst CI ±{result.max_relative_half_width():.2%}"
        )
    else:
        lines.append("")
        lines.append(f"[exact] blocks read: {result.stats.blocks_scanned}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Approximate query processing toolkit CLI",
    )
    parser.add_argument(
        "query",
        nargs="?",
        help="SQL to run (omit for an interactive prompt)",
    )
    parser.add_argument(
        "--demo",
        choices=["tpch", "ssb"],
        help="generate a demo benchmark database",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="demo scale factor"
    )
    parser.add_argument(
        "--csv",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="load a CSV file as table NAME (repeatable)",
    )
    parser.add_argument("--seed", type=int, default=0, help="sampling seed")
    return parser


def make_database(args) -> Database:
    db = Database()
    if args.demo == "tpch":
        generate_tpch(db, scale=args.scale, seed=args.seed)
    elif args.demo == "ssb":
        generate_ssb(db, scale=args.scale, seed=args.seed)
    for spec in args.csv:
        if "=" not in spec:
            raise SystemExit(f"--csv expects NAME=PATH, got {spec!r}")
        name, path = spec.split("=", 1)
        load_csv(db, name, path)
    if not db.table_names:
        raise SystemExit("no tables: pass --demo or --csv")
    return db


def run_query(db: Database, sql: str, seed: int) -> str:
    from .obs.explain import ExplainResult

    try:
        result = db.sql(sql, options=QueryOptions(seed=seed))
    except Exception as exc:  # surface library errors cleanly
        return f"error: {type(exc).__name__}: {exc}"
    if isinstance(result, str):  # EXPLAIN: plan text, nothing ran
        return result
    if isinstance(result, ExplainResult):  # EXPLAIN ANALYZE transcript
        return result.render()
    return format_result(result)


def run_trace(argv: List[str]) -> int:
    """``python -m repro trace``: EXPLAIN ANALYZE from the command line.

    Runs the query under a tracer and prints the plan, the span tree,
    and the cost line — the same transcript ``EXPLAIN ANALYZE <sql>``
    returns through the SQL front-end. ``--metrics`` appends the
    process-wide metrics snapshot as JSON.
    """
    from .obs.explain import run_explain_analyze
    from .obs.metrics import get_metrics

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run one query under a tracer and print its span tree",
    )
    parser.add_argument("query", help="SQL to trace")
    parser.add_argument(
        "--demo", choices=["tpch", "ssb"], help="generate a demo database"
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--csv", action="append", default=[], metavar="NAME=PATH"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-timing",
        action="store_true",
        help="omit durations (stable output for diffing)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="append the metrics-registry snapshot as JSON",
    )
    args = parser.parse_args(argv)
    db = make_database(args)
    explained = run_explain_analyze(db, args.query, seed=args.seed)
    print(explained.render(show_timing=not args.no_timing))
    if args.metrics:
        print()
        print(get_metrics().to_json())
    return 0


def _benchmarks_dir() -> str:
    """Locate the repo's ``benchmarks/`` directory.

    Works from a source checkout (benchmarks/ sits next to src/) and
    falls back to the current working directory for odd layouts.
    """
    here = os.path.dirname(os.path.abspath(__file__))
    for root in (os.path.dirname(os.path.dirname(here)), os.getcwd()):
        candidate = os.path.join(root, "benchmarks")
        if os.path.isfile(os.path.join(candidate, "common.py")):
            return candidate
    raise SystemExit("cannot locate benchmarks/ (run from the repo checkout)")


def run_bench(argv: List[str]) -> int:
    """``python -m repro bench``: the parallel benchmark harness.

    Runs the experiment suite in worker processes, writes
    ``benchmarks/results/BENCH_results.json``, and (unless ``--no-check``)
    compares against the committed baseline, failing on regressions.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the benchmark suite in parallel workers",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast ~30s subset instead of the full suite",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker processes"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="flag experiments slower than THRESHOLD x baseline",
    )
    parser.add_argument(
        "--baseline", default=None, help="baseline JSON to compare against"
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the regression comparison",
    )
    args = parser.parse_args(argv)

    bench_dir = _benchmarks_dir()
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import common as bench_common

    doc = bench_common.run_suite(smoke=args.smoke, workers=args.workers)
    print(f"\nwrote {bench_common.BENCH_RESULTS_JSON}")
    for exp in doc["experiments"]:
        warm = (
            f"  warm {exp['warm_wall_s']:.2f}s "
            f"(cache hits {exp['warm_cache']['hits']})"
            if "warm_wall_s" in exp
            else ""
        )
        print(
            f"  {exp['status']:>6}  {exp['name']:<28} "
            f"cold {exp['cold_wall_s']:.2f}s{warm}"
        )
    failed = [e for e in doc["experiments"] if e["status"] != "ok"]
    if args.no_check:
        return 1 if failed else 0
    baseline = args.baseline or bench_common.BASELINE_JSON
    problems = bench_common.check_against_baseline(
        doc, baseline_path=baseline, threshold=args.threshold
    )
    real = [p for p in problems if not p.startswith("note:")]
    for p in problems:
        print(("WARN " if p.startswith("note:") else "REGRESSION ") + p)
    if not real and not failed:
        print("regression check: clean")
    return 1 if (real or failed) else 0


def run_shardbench(argv: List[str]) -> int:
    """``python -m repro shardbench``: the scatter-gather demo bench.

    Generates a skewed table, shards it, and serves one aggregate query
    through the scatter-gather executor — optionally with shards killed
    — printing per-shard fates, coverage, timings, and the widened CI
    next to the exact whole-table answer.
    """
    import time

    from .core.errorspec import ErrorSpec
    from .core.exceptions import QueryRefused
    from .resilience import FaultInjector, inject, kill_shard
    from .sharding import ScatterGatherExecutor, ShardedTable

    parser = argparse.ArgumentParser(
        prog="python -m repro shardbench",
        description="Scatter-gather serving over a sharded table",
    )
    parser.add_argument("--rows", type=int, default=500_000)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument(
        "--workers", type=int, default=1, help="shard worker threads"
    )
    parser.add_argument(
        "--mode", choices=["exact", "ola", "sample"], default="exact"
    )
    parser.add_argument(
        "--kill",
        action="append",
        type=int,
        default=[],
        metavar="SHARD",
        help="kill this shard id (repeatable)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-coverage", type=float, default=0.5, dest="min_coverage"
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    db = Database()
    db.create_table(
        "events",
        {
            "value": rng.exponential(10.0, args.rows),
            "grp": rng.integers(0, 16, args.rows),
        },
    )
    base = db.table("events")
    sharded = ShardedTable.from_table(base, args.shards)
    if args.mode == "sample":
        sharded.build_shard_samples(
            max(200, args.rows // args.shards // 20), seed=args.seed
        )
    executor = ScatterGatherExecutor(
        sharded, max_workers=args.workers, min_coverage=args.min_coverage
    )
    query = "SELECT SUM(value) AS s FROM events WHERE value > 5"
    spec = ErrorSpec(relative_error=0.10, confidence=0.95)
    truth = float(base["value"][base["value"] > 5].sum())

    injector = FaultInjector([kill_shard(i) for i in args.kill])
    start = time.perf_counter()
    try:
        with inject(injector):
            result = executor.sql(
                query,
                options=QueryOptions(spec=spec, seed=args.seed),
                mode=args.mode,
            )
    except QueryRefused as exc:
        print(f"refused: {exc}")
        for step in exc.provenance:
            if "shard" in step:
                print(
                    f"  shard {step['shard']}: {step['status']} "
                    f"{step.get('error', '')}"
                )
        return 1
    elapsed = time.perf_counter() - start

    print(
        f"{args.rows:,} rows over {args.shards} shards "
        f"({args.workers} workers, mode={args.mode}) "
        f"in {elapsed * 1e3:.1f} ms"
    )
    for step in result.provenance:
        if "shard" in step:
            attempts = (
                f" attempts={step['attempts']}" if step["attempts"] else ""
            )
            print(f"  shard {step['shard']}: {step['status']}{attempts}")
    summary = result.provenance[-1]
    print(f"  {summary['rung']}: {summary['detail']}")
    if isinstance(result, ApproximateResult):
        cell = result.estimate("s", 0)
        covered = "covers" if cell.covers(truth) else "MISSES"
        print(
            f"estimate {cell.value:,.1f} in "
            f"[{cell.ci_low:,.1f}, {cell.ci_high:,.1f}] — "
            f"{covered} exact {truth:,.1f}"
        )
    else:
        value = float(result.table["s"][0])
        print(f"exact answer {value:,.1f} (oracle {truth:,.1f})")
    return 0


def run_servebench(argv: List[str]) -> int:
    """``python -m repro serve-bench``: overload-burst serving demo.

    Stands up a :class:`~repro.serving.ServingFrontend` over a generated
    table, fires a configurable burst of concurrent approximate queries
    at it (default 4x the queue capacity), and prints the serving health
    numbers: outcome counts (served / typed refusals / typed
    rejections), shed rate with the rungs shed to, throughput, and
    queue-wait percentiles.
    """
    import threading
    import time

    from .core.errorspec import ErrorSpec
    from .core.exceptions import QueryRejected, QueryRefused
    from .serving import ServingFrontend

    parser = argparse.ArgumentParser(
        prog="python -m repro serve-bench",
        description="Drive an overload burst through the serving frontend",
    )
    parser.add_argument("--rows", type=int, default=400_000)
    parser.add_argument(
        "--workers", type=int, default=2, help="frontend service threads"
    )
    parser.add_argument(
        "--queue", type=int, default=16, help="admission queue capacity"
    )
    parser.add_argument(
        "--burst",
        type=int,
        default=None,
        help="queries in the burst (default: 4x the queue capacity)",
    )
    parser.add_argument(
        "--clients", type=int, default=8, help="submitting client threads"
    )
    parser.add_argument(
        "--queue-deadline",
        type=float,
        default=5.0,
        dest="queue_deadline",
        help="seconds a query may wait before typed rejection",
    )
    parser.add_argument(
        "--tenant-capacity",
        type=float,
        default=None,
        dest="tenant_capacity",
        help="per-tenant token-bucket capacity (default: unlimited)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    burst = args.burst if args.burst is not None else 4 * args.queue

    rng = np.random.default_rng(args.seed)
    db = Database()
    db.create_table(
        "events",
        {
            "v": rng.exponential(10.0, args.rows),
            "k": rng.integers(0, 100, args.rows),
        },
    )
    query = (
        "SELECT SUM(v) AS s FROM events WHERE v > 5 "
        "ERROR WITHIN 10% CONFIDENCE 95%"
    )
    spec = ErrorSpec(relative_error=0.10, confidence=0.95)
    frontend = ServingFrontend(
        db,
        workers=args.workers,
        max_queue=args.queue,
        queue_deadline_s=args.queue_deadline,
        seed=args.seed,
    )
    if args.tenant_capacity is not None:
        for c in range(args.clients):
            frontend.budgets.configure(
                f"client{c}", capacity=args.tenant_capacity
            )

    tickets: List = []
    rejected: Dict[str, int] = {}
    lock = threading.Lock()

    def client(client_id: int) -> None:
        for i in range(burst // args.clients):
            try:
                t = frontend.submit(
                    query,
                    options=QueryOptions(
                        tenant=f"client{client_id}",
                        priority="interactive" if i % 2 else "batch",
                        spec=spec,
                        seed=client_id * 1000 + i,
                    ),
                )
                with lock:
                    tickets.append(t)
            except QueryRejected as exc:
                with lock:
                    rejected[exc.reason] = rejected.get(exc.reason, 0) + 1

    start = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(c,))
        for c in range(args.clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    frontend.drain(timeout=300.0)
    elapsed = time.perf_counter() - start

    served, refused, shed_to, waits = 0, 0, {}, []
    for t in tickets:
        t.wait(timeout=60.0)
        err = t.exception()
        if err is None:
            served += 1
            waits.append(t.queue_wait or 0.0)
            if t.shed_to is not None:
                shed_to[t.shed_to] = shed_to.get(t.shed_to, 0) + 1
        elif isinstance(err, QueryRejected):
            rejected[err.reason] = rejected.get(err.reason, 0) + 1
        elif isinstance(err, QueryRefused):
            refused += 1
        else:
            print(f"UNTYPED ERROR: {type(err).__name__}: {err}")
    snapshot = frontend.metrics_snapshot()
    frontend.close()

    print(
        f"{burst} queries from {args.clients} clients into a "
        f"{args.queue}-slot queue ({args.workers} workers) "
        f"in {elapsed:.2f}s"
    )
    print(f"  served:   {served}  ({served / elapsed:.1f} qps)")
    total_shed = sum(shed_to.values())
    rate = total_shed / served if served else 0.0
    print(f"  shed:     {total_shed} ({rate:.1%})", end="")
    if shed_to:
        detail = ", ".join(
            f"{rung}={n}" for rung, n in sorted(shed_to.items())
        )
        print(f"  [{detail}]", end="")
    print()
    print(f"  refused:  {refused} (typed)")
    for reason in sorted(rejected):
        print(f"  rejected: {rejected[reason]} ({reason})")
    if waits:
        arr = np.asarray(waits)
        print(
            f"  queue wait p50 {np.percentile(arr, 50) * 1e3:.1f} ms / "
            f"p99 {np.percentile(arr, 99) * 1e3:.1f} ms / "
            f"max {arr.max() * 1e3:.1f} ms"
        )
    print(f"  final shed level: {snapshot['shed_level']}")
    lost = burst - served - refused - sum(rejected.values())
    if lost:
        print(f"LOST QUERIES: {lost}")
        return 1
    return 0


def run_tune(argv: List[str]) -> int:
    """``python -m repro tune``: one tuning session over a live workload.

    Generates (or loads) a database, replays a seeded two-phase workload
    through it with a :class:`~repro.tuner.TuningDaemon` observing, and
    prints each tuning cycle's decisions plus the final catalog.
    """
    from .offline.catalog import SynopsisCatalog
    from .tuner import TuningDaemon, WorkloadLog, install_workload_log
    from .tuner.replay import (
        make_replay_database,
        run_replay,
        two_phase_workload,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro tune",
        description="Run the synopsis tuner against a seeded workload",
    )
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument(
        "--queries", type=int, default=60, help="queries per workload phase"
    )
    parser.add_argument(
        "--tune-every",
        type=int,
        default=15,
        dest="tune_every",
        help="run a tuning cycle every N queries",
    )
    parser.add_argument(
        "--budget-rows",
        type=int,
        default=10_000,
        dest="budget_rows",
        help="tuner storage budget in sample rows",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    db = make_replay_database(args.seed, rows=args.rows)
    # One phase of memory: when the workload shifts, old demand ages out
    # of the log, the entries it justified go cold, and the daemon
    # evicts them to fund the new phase's synopses.
    log = WorkloadLog(capacity=args.queries)
    daemon = TuningDaemon(
        db,
        log,
        storage_budget_rows=args.budget_rows,
        sample_fraction=0.15,
        seed=args.seed,
        min_demand=2,
    )
    queries = two_phase_workload(args.seed, queries_per_phase=args.queries)
    previous = install_workload_log(log)
    try:
        report = run_replay(
            db, queries, seed=args.seed, daemon=daemon,
            tune_every=args.tune_every,
        )
    finally:
        install_workload_log(previous)

    print(
        f"{report.total} queries ({report.served} served, "
        f"{report.refused} refused), {len(report.tuning)} tuning cycles"
    )
    for cycle in report.tuning:
        built = ", ".join(b["key"] for b in cycle["built"]) or "-"
        evicted = ", ".join(e["key"] for e in cycle["evicted"]) or "-"
        print(
            f"  cycle {cycle['cycle']} ({cycle['triggered_by']}): "
            f"built [{built}] evicted [{evicted}] "
            f"churn={cycle['column_churn']:.2f} "
            f"miss={cycle['error_miss_rate']:.2f}"
        )
    catalog = SynopsisCatalog.for_database(db)
    print(f"catalog after tuning ({len(catalog.samples)} entries):")
    for entry in catalog.samples:
        cols = (
            entry.strata_column or entry.measure_column or "-"
        )
        print(
            f"  {entry.table}: {entry.kind:<15} cols={cols} "
            f"rows={entry.sample.num_rows} source={entry.source} "
            f"v{entry.version}"
        )
    print(f"offline hit rate: {report.hit_rate:.1%}")
    return 0


def run_tune_replay_cli(argv: List[str]) -> int:
    """``python -m repro tune-replay``: static-vs-tuned comparison.

    Replays the seeded two-phase workload twice over identical data —
    once against the static hand-built catalog, once with the tuning
    daemon active — and prints both synopsis hit rates plus the
    improvement factor. Deterministic given the seed.
    """
    from .tuner import run_tune_replay

    parser = argparse.ArgumentParser(
        prog="python -m repro tune-replay",
        description="Replay a two-phase workload static vs. tuned",
    )
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument(
        "--queries", type=int, default=60, help="queries per workload phase"
    )
    parser.add_argument(
        "--tune-every", type=int, default=15, dest="tune_every"
    )
    parser.add_argument(
        "--budget-rows", type=int, default=10_000, dest="budget_rows"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-improvement",
        type=float,
        default=None,
        dest="min_improvement",
        help="exit 1 unless tuned/static hit rate >= this factor",
    )
    args = parser.parse_args(argv)

    doc = run_tune_replay(
        seed=args.seed,
        rows=args.rows,
        queries_per_phase=args.queries,
        tune_every=args.tune_every,
        storage_budget_rows=args.budget_rows,
    )
    static, tuned = doc["static"], doc["tuned"]
    print(f"{doc['queries']} queries replayed twice (seed {doc['seed']})")
    for label, rep in (("static", static), ("tuned", tuned)):
        techniques = ", ".join(
            f"{k}={v}" for k, v in sorted(rep["techniques"].items())
        )
        print(
            f"  {label:<7} hit rate {rep['hit_rate']:.1%} "
            f"({rep['offline_hits']}/{rep['served']} offline)  "
            f"[{techniques}]"
        )
    print(
        f"  tuning cycles: {tuned['tuning_cycles']}, "
        f"decisions: {len(tuned['decisions'])}"
    )
    print(f"improvement: {doc['improvement']:.2f}x")
    if (
        args.min_improvement is not None
        and doc["improvement"] < args.min_improvement
    ):
        print(
            f"FAIL: improvement {doc['improvement']:.2f}x below "
            f"required {args.min_improvement:.2f}x"
        )
        return 1
    return 0


def run_audit_cli(argv: List[str]) -> int:
    """``python -m repro audit``: the statistical guarantee audit.

    Replays every registered estimator path for N seeded trials, checks
    each claimed guarantee against an exact-binomial acceptance band,
    writes ``audit/AUDIT_report.json``, and (unless ``--no-check``)
    diffs against the committed baseline. Exit 1 on a broken guarantee
    or a baseline regression.
    """
    from .audit import diff_against_baseline, run_audit, write_report
    from .audit.report import AUDIT_BASELINE_JSON, AUDIT_REPORT_JSON, format_table
    from .audit.runner import DEFAULT_SEED

    parser = argparse.ArgumentParser(
        prog="python -m repro audit",
        description="Audit every estimator's claimed error guarantee",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer trials + smaller data (finishes in seconds)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=int(os.environ.get("REPRO_SEED", DEFAULT_SEED)),
        help="base seed (default: $REPRO_SEED or %(default)s); the whole "
        "report is deterministic given the seed",
    )
    parser.add_argument(
        "--trials", type=int, default=None, help="override light-path trials"
    )
    parser.add_argument(
        "--heavy-trials",
        type=int,
        default=None,
        help="override heavy-path (full-planner) trials",
    )
    parser.add_argument(
        "--paths",
        default=None,
        metavar="NAME[,NAME...]",
        help="audit only these paths",
    )
    parser.add_argument(
        "--output", default=AUDIT_REPORT_JSON, help="report JSON destination"
    )
    parser.add_argument(
        "--baseline", default=AUDIT_BASELINE_JSON, help="baseline JSON"
    )
    parser.add_argument(
        "--rebaseline",
        action="store_true",
        help="write this run as the new committed baseline",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the baseline regression diff",
    )
    args = parser.parse_args(argv)

    doc = run_audit(
        smoke=args.smoke,
        seed=args.seed,
        trials=args.trials,
        heavy_trials=args.heavy_trials,
        path_names=args.paths.split(",") if args.paths else None,
        progress=True,
    )
    rows = [
        (
            p["name"],
            p["claim"],
            p["claimed_coverage"] if p["claimed_coverage"] is not None else "-",
            f"{p['hits']}/{p['effective_trials']}",
            p["empirical_coverage"] if p["empirical_coverage"] is not None else "-",
            p["verdict"] + (" (expected)" if p["expected_failure"] else ""),
            p["mean_relative_error"] if p["mean_relative_error"] is not None else "-",
        )
        for p in doc["paths"]
    ]
    print()
    for line in format_table(
        ["path", "claim", "claimed", "hits", "coverage", "verdict", "mean rel err"],
        rows,
    ):
        print(line)
    path = write_report(doc, args.output)
    print(f"\nwrote {path} (seed {doc['seed']}, mode {doc['mode']})")
    ok = doc["summary"]["all_guarantees_ok"]
    print(
        "guarantee audit: "
        + ("all claims hold" if ok else "BROKEN GUARANTEES")
        + f" ({doc['summary']['num_pass']} pass, "
        f"{doc['summary']['num_conservative']} conservative, "
        f"{doc['summary']['num_expected_failures']} paper-predicted failures, "
        f"{doc['summary']['num_unexpected_failures']} unexpected failures)"
    )
    if args.rebaseline:
        base = write_report(doc, args.baseline)
        print(f"rebaselined -> {base}")
        return 0 if ok else 1
    if args.no_check:
        return 0 if ok else 1
    problems = diff_against_baseline(doc, baseline_path=args.baseline)
    real = [p for p in problems if not p.startswith("note:")]
    for p in problems:
        print(("WARN " if p.startswith("note:") else "REGRESSION ") + p)
    if not real:
        print("baseline check: clean")
    return 0 if ok and not real else 1


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "bench":
        return run_bench(argv[1:])
    if argv and argv[0] == "audit":
        return run_audit_cli(argv[1:])
    if argv and argv[0] == "shardbench":
        return run_shardbench(argv[1:])
    if argv and argv[0] == "serve-bench":
        return run_servebench(argv[1:])
    if argv and argv[0] == "trace":
        return run_trace(argv[1:])
    if argv and argv[0] == "tune":
        return run_tune(argv[1:])
    if argv and argv[0] == "tune-replay":
        return run_tune_replay_cli(argv[1:])
    args = build_parser().parse_args(argv)
    db = make_database(args)
    print(f"tables: {', '.join(db.table_names)}", file=sys.stderr)
    if args.query:
        print(run_query(db, args.query, args.seed))
        return 0
    # Interactive loop.
    print("enter SQL (blank line or Ctrl-D to exit):", file=sys.stderr)
    while True:
        try:
            line = input("repro> ").strip()
        except (EOFError, KeyboardInterrupt):
            break
        if not line:
            break
        print(run_query(db, line, args.seed))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
