"""Scatter-gather execution over a :class:`ShardedTable`.

One query fans out to per-shard workers (a thread pool), each worker
evaluates the bound query directly against its shard, and the gather
step merges partial aggregates into one answer. The serving contract —
the whole point of this module — is that the answer stays *honest*
while the substrate fails:

* **Deadlines** — workers share the query's cooperative
  :class:`~repro.resilience.deadline.Deadline` (explicit or ambient via
  ``deadline_scope``) and check it at block boundaries; a shard that
  cannot finish fails *typed*, it does not wedge the query.
* **Hedging** — the primary attempt on a shard is abandoned at a block
  boundary once it has consumed ``hedge_fraction`` of the remaining
  deadline (the straggler carve-out), and a second, hedged attempt runs
  at the ``shard.<i>.hedge`` fault site. Deterministic under a
  :class:`ManualClock`: "slow" faults advance the clock, the worker
  observes the elapsed time cooperatively.
* **Per-shard circuit breakers** — a flapping shard is skipped outright
  (status ``breaker_open``) after repeated failures until its cooldown
  half-opens it.
* **Quorum + honest widening** — the answer is assembled from the k
  shards that served. Missing shards contribute their *catalog
  statistics* instead of their data: ``SUM`` widens by the missing
  shards' subset-sum envelope ``[Σ negative, Σ positive]``, ``COUNT`` by
  ``[0, Σ rows]``, ``AVG`` by interval division of the two — so the
  reported CI deterministically contains every answer the lost data
  could have produced, on top of the served shards' own sampling error.
  The point estimate transfers the served shards' observed selectivity
  onto the missing rows. Below ``min_coverage`` (row-weighted fraction
  of shards served) the query is refused with full provenance.
* **Provenance** — one ``scatter_gather`` step per shard records its
  fate (``served`` / ``served_hedged`` / ``failed`` / ``breaker_open``,
  plus any abandoned attempts), and a summary step under the
  ``reshard_degraded`` rung carries the coverage; degraded answers set
  the same ``degraded`` flag the ladder uses, so ``result.is_degraded``
  and :class:`DegradedAnswer` warnings behave identically.

Widening is only possible for bare-column aggregates (the catalog holds
per-column envelopes, not per-expression ones); an expression aggregate
with a missing shard refuses rather than guesses.
"""

from __future__ import annotations

import math
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.errorspec import ErrorSpec
from ..core.exceptions import (
    BudgetExhausted,
    DeadlineExceeded,
    DegradedAnswer,
    QueryRefused,
    ReproError,
    SynopsisUnavailable,
    UnsupportedQueryError,
)
from ..core.result import ApproximateResult, QueryResult
from ..engine.aggregates import AggregateSpec
from ..engine.executor import ExecutionStats
from ..engine.expressions import Column, compile_expression
from ..engine.fused import SliceRelation
from ..engine.kernel_cache import get_kernel_cache
from ..engine.table import Table
from ..obs.metrics import get_metrics
from ..obs.trace import current_span, current_tracer, event, span
from ..online.ola import OnlineAggregator
from ..resilience.deadline import (
    Deadline,
    ResourceBudget,
    resolve_budget,
    resolve_deadline,
)
from ..resilience.faults import get_injector, maybe_fault, shard_site
from ..resilience.ladder import RESHARD_RUNG
from ..resilience.retry import CircuitBreaker
from ..sql.binder import BoundQuery, bind_sql
from .table import ShardedTable, Shard

__all__ = ["ScatterGatherExecutor", "ShardOutcome", "SCATTER_RUNG"]

#: provenance rung name for the per-shard fan-out steps
SCATTER_RUNG = "scatter_gather"

#: how a QueryOptions ``technique`` maps onto this executor's per-shard
#: ``mode`` when the caller leaves ``mode`` at its default
_TECHNIQUE_MODES = {
    "exact": "exact",
    "ola": "ola",
    "sample": "sample",
    "offline_sample": "sample",
}


class _StragglerAbandoned(ReproError):
    """Internal: a primary shard attempt gave way to its hedge."""


@dataclass(frozen=True)
class _BoundKernels:
    """Compiled, data-independent closures for one bound shard query.

    Every shard worker evaluates the same WHERE/key/input expressions;
    compiling them once per query (and caching per query signature in
    the process-wide kernel cache) replaces N_shards × N_blocks
    ``Expression.evaluate`` tree walks with direct closure calls. The
    closures are read-only after construction, so sharing them across
    the worker thread pool is safe.
    """

    where_fn: Optional[Callable]
    key_fns: Tuple[Callable, ...]
    #: aggregate alias -> compiled argument (None for COUNT(*)-style)
    input_fns: Dict[str, Optional[Callable]]

    def mask_of(self, qtable) -> Optional[np.ndarray]:
        if self.where_fn is None:
            return None
        return np.asarray(self.where_fn(qtable), dtype=bool)

    def inputs_of(self, agg: AggregateSpec, qtable) -> np.ndarray:
        fn = self.input_fns.get(agg.alias)
        if fn is None:
            return np.ones(qtable.num_rows, dtype=np.float64)
        return np.asarray(fn(qtable), dtype=np.float64)


@dataclass
class AggPartial:
    """Mergeable sum/count components of one aggregate on one shard.

    ``sum_hw2`` / ``count_hw2`` are *squared* CI half-widths at the
    query's confidence level; independent shard estimates merge by
    adding them (the merged half-width is the root of the sum).
    """

    sum: float = 0.0
    sum_hw2: float = 0.0
    count: float = 0.0
    count_hw2: float = 0.0


@dataclass
class ShardPartial:
    """Everything a shard worker hands back to the gather step."""

    shard_id: int
    #: rows actually read (work accounting)
    rows_scanned: int = 0
    #: shard population the partial speaks for
    population_rows: int = 0
    #: matched rows in the shard population (exact or HT-estimated)
    matched_rows: float = 0.0
    scalars: Dict[str, AggPartial] = field(default_factory=dict)
    groups: Dict[Tuple, Dict[str, AggPartial]] = field(default_factory=dict)


@dataclass
class ShardOutcome:
    """One shard's fate under one query."""

    shard_id: int
    status: str  # served | served_hedged | failed | breaker_open
    partial: Optional[ShardPartial] = None
    detail: str = ""
    error: str = ""
    #: fates of earlier attempts ("abandoned" / "failed")
    attempts: Tuple[str, ...] = ()
    elapsed: float = 0.0

    @property
    def served(self) -> bool:
        return self.status in ("served", "served_hedged")


@dataclass
class _Widen:
    """Aggregated missing-shard envelope for one aggregate."""

    neg: float = 0.0
    pos: float = 0.0
    total: float = 0.0
    rows: int = 0


def _fmt_error(exc: Optional[BaseException]) -> str:
    return f"{type(exc).__name__}: {exc}" if exc else ""


def _py(value):
    return value.item() if hasattr(value, "item") else value


class ScatterGatherExecutor:
    """Partition-tolerant aggregate serving over a :class:`ShardedTable`.

    Parameters
    ----------
    sharded:
        The shard substrate to serve from.
    max_workers:
        Thread-pool width; ``1`` runs shards sequentially (what the
        deterministic chaos sweeps use).
    min_coverage:
        Row-weighted coverage floor; an answer assembled from less of
        the table than this is refused (:class:`QueryRefused`).
    hedge / hedge_fraction:
        Straggler policy: the primary attempt on a shard may use
        ``hedge_fraction`` of the deadline remaining at its start before
        it is abandoned for one hedged retry (which also fires after a
        failed primary, hedged retries being cheaper than losing the
        shard). ``hedge=False`` gives every shard a single attempt.
    breaker_threshold / breaker_cooldown:
        Per-shard :class:`CircuitBreaker` configuration.
    catalog:
        Catalog for ``mode="sample"`` lookups; defaults to the binder
        database's catalog (where :meth:`ShardedTable.build_shard_samples`
        registers).
    warn_on_degrade:
        Emit :class:`DegradedAnswer` for k-of-n answers.
    """

    def __init__(
        self,
        sharded: ShardedTable,
        max_workers: Optional[int] = None,
        min_coverage: float = 0.5,
        hedge: bool = True,
        hedge_fraction: float = 0.5,
        breaker_threshold: int = 3,
        breaker_cooldown: int = 2,
        catalog=None,
        warn_on_degrade: bool = False,
    ) -> None:
        if not (0.0 < min_coverage <= 1.0):
            raise ValueError("min_coverage must be in (0, 1]")
        if not (0.0 < hedge_fraction <= 1.0):
            raise ValueError("hedge_fraction must be in (0, 1]")
        self.sharded = sharded
        self.max_workers = max_workers
        self.min_coverage = min_coverage
        self.hedge = hedge
        self.hedge_fraction = hedge_fraction
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self.catalog = catalog
        self.warn_on_degrade = warn_on_degrade
        self.breakers: Dict[int, CircuitBreaker] = {}
        # breaker() is called from pool worker threads; guard the
        # check-then-insert (the breakers themselves carry their own lock).
        self._breakers_lock = threading.Lock()

    # ------------------------------------------------------------------
    def breaker(self, shard_id: int) -> CircuitBreaker:
        with self._breakers_lock:
            if shard_id not in self.breakers:
                self.breakers[shard_id] = CircuitBreaker(
                    failure_threshold=self._breaker_threshold,
                    cooldown=self._breaker_cooldown,
                    name=f"shard.{shard_id}",
                )
            return self.breakers[shard_id]

    # ------------------------------------------------------------------
    def sql(
        self,
        query: str,
        options: Optional[QueryOptions] = None,
        mode: str = "exact",
        **kwargs,
    ):
        """Serve one aggregate query from the shards.

        ``mode`` picks the per-shard technique: ``"exact"`` scans the
        shard, ``"ola"`` runs a fixed-stop online-aggregation snapshot
        per shard, ``"sample"`` answers from registered per-shard
        samples. When ``mode`` is left at its default,
        ``options.technique`` maps onto it (``"ola"`` → ola,
        ``"sample"``/``"offline_sample"`` → sample, ``"exact"`` →
        exact). Returns :class:`QueryResult` (exact, full coverage, no
        spec) or :class:`ApproximateResult`; raises
        :class:`QueryRefused` below the coverage floor or when a missing
        shard cannot be honestly widened.

        ``options`` is a :class:`~repro.core.options.QueryOptions`;
        legacy per-field keywords (``spec=...``, ``tenant=...``) still
        work via the deprecation shim. ``options.tenant`` labels the
        query span and work metrics so a multi-tenant serving layer can
        attribute shard work; the tenant's deadline/budget arrive
        through the ambient ``deadline_scope`` (or ``options``) either
        way.
        """
        from ..core.options import maybe_trace, resolve_options

        options = resolve_options(
            options, kwargs, entry="ScatterGatherExecutor.sql()"
        )
        if mode == "exact" and options.technique is not None:
            mode = _TECHNIQUE_MODES.get(options.technique, mode)
        spec, seed = options.spec, options.seed
        tenant = "" if options.tenant == "default" else options.tenant
        deadline = resolve_deadline(options.deadline)
        budget = resolve_budget(options.budget)
        with maybe_trace(options), span(
            "query", engine="scatter_gather", sql=query.strip()[:200]
        ) as qsp:
            if tenant:
                qsp.set(tenant=tenant)
            bound = bind_sql(query, self.sharded.binder_database())
            if spec is None and bound.error_spec is not None:
                spec = ErrorSpec(
                    relative_error=bound.error_spec.relative_error,
                    confidence=bound.error_spec.confidence,
                )
            self._check_supported(bound, mode)
            kernels = self._prepare_kernels(bound)
            outcomes = self._scatter(
                bound, kernels, spec, seed, mode, deadline, budget
            )
            result = self._gather(bound, spec, mode, outcomes, deadline)
            technique = getattr(result, "technique", "exact")
            qsp.set(
                mode=mode,
                technique=technique,
                stats=result.stats.to_dict(),
            )
            labels = {"engine": "scatter_gather", "mode": mode}
            if tenant:
                labels["tenant"] = tenant
            get_metrics().inc(
                "queries_total", technique=technique, **labels
            )
            return result

    def _prepare_kernels(self, bound: BoundQuery) -> _BoundKernels:
        """Compile (or fetch cached) closures for the bound expressions.

        The cache key is the query's normalized expression signature —
        the kernels never touch shard *data*, so unlike the fused
        executor's per-plan cache no table fingerprint is needed.
        """
        signature = "\n".join(
            [
                f"sharded={self.sharded.name}",
                f"where={bound.where!r}",
                *(
                    f"key:{alias}={expr!r}"
                    for expr, alias in bound.group_keys
                ),
                *(f"agg:{agg!r}" for agg in bound.aggregates),
            ]
        )

        def compile_kernels() -> _BoundKernels:
            return _BoundKernels(
                where_fn=(
                    compile_expression(bound.where)
                    if bound.where is not None
                    else None
                ),
                key_fns=tuple(
                    compile_expression(expr)
                    for expr, _alias in bound.group_keys
                ),
                input_fns={
                    agg.alias: (
                        compile_expression(agg.argument)
                        if agg.argument is not None
                        else None
                    )
                    for agg in bound.aggregates
                },
            )

        return get_kernel_cache().get_or_compile(
            ("sharded", self.sharded.name, signature), compile_kernels
        )

    # ------------------------------------------------------------------
    # Support checks
    # ------------------------------------------------------------------
    def _check_supported(self, bound: BoundQuery, mode: str) -> None:
        if mode not in ("exact", "ola", "sample"):
            raise UnsupportedQueryError(f"unknown shard mode {mode!r}")
        if len(bound.tables) != 1:
            raise UnsupportedQueryError(
                "scatter-gather serves single-table queries"
            )
        if bound.tables[0].name != self.sharded.name:
            raise UnsupportedQueryError(
                f"query targets {bound.tables[0].name!r}, this executor "
                f"serves {self.sharded.name!r}"
            )
        if not bound.is_aggregate or not bound.aggregates:
            raise UnsupportedQueryError(
                "scatter-gather serves aggregate queries"
            )
        if bound.having is not None or bound.order_by or bound.limit is not None:
            raise UnsupportedQueryError(
                "HAVING/ORDER BY/LIMIT are not supported over shards"
            )
        aliases = {alias for _, alias in bound.group_keys}
        aliases.update(a.alias for a in bound.aggregates)
        for expr, _out_alias in bound.output_items:
            if not (isinstance(expr, Column) and expr.name in aliases):
                raise UnsupportedQueryError(
                    "scatter-gather serves plain key/aggregate outputs"
                )
        for agg in bound.aggregates:
            if agg.distinct:
                raise UnsupportedQueryError(
                    "DISTINCT aggregates do not merge across shards"
                )
            if agg.func not in ("sum", "count", "avg"):
                raise UnsupportedQueryError(
                    f"{agg.func.upper()} is not mergeable across shards"
                )
        if mode == "ola":
            if bound.group_keys:
                raise UnsupportedQueryError("OLA mode does not serve GROUP BY")
            if len(bound.aggregates) != 1:
                raise UnsupportedQueryError("OLA mode serves one aggregate")
        if mode == "sample":
            if bound.group_keys:
                raise UnsupportedQueryError(
                    "uniform per-shard samples cannot protect groups"
                )
            for agg in bound.aggregates:
                if agg.func != "count" and self._bare_column(bound, agg) is None:
                    raise UnsupportedQueryError(
                        "sample mode serves bare-column aggregates"
                    )

    @staticmethod
    def _bare_column(bound: BoundQuery, agg: AggregateSpec) -> Optional[str]:
        """The raw column a bare-column aggregate reads, else ``None``."""
        if agg.argument is None:
            return None
        if isinstance(agg.argument, Column):
            name = agg.argument.name
            prefix = bound.tables[0].alias + "."
            return name[len(prefix):] if name.startswith(prefix) else name
        return None

    # ------------------------------------------------------------------
    # Scatter
    # ------------------------------------------------------------------
    def _scatter(
        self,
        bound: BoundQuery,
        kernels: _BoundKernels,
        spec: Optional[ErrorSpec],
        seed: Optional[int],
        mode: str,
        deadline: Optional[Deadline],
        budget: Optional[ResourceBudget],
    ) -> List[ShardOutcome]:
        shards = self.sharded.shards
        workers = self.max_workers or min(len(shards), 8)
        # ThreadPoolExecutor workers do not inherit contextvars: capture
        # the ambient trace scope here and re-root it per shard.
        tracer = current_tracer()
        parent = current_span()

        def run(shard: Shard) -> ShardOutcome:
            return self._run_shard(
                shard,
                bound,
                kernels,
                spec,
                seed,
                mode,
                deadline,
                budget,
                tracer=tracer,
                parent=parent,
            )

        if workers <= 1 or len(shards) == 1:
            return [run(s) for s in shards]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run, shards))

    def _run_shard(
        self,
        shard: Shard,
        bound: BoundQuery,
        kernels: _BoundKernels,
        spec: Optional[ErrorSpec],
        seed: Optional[int],
        mode: str,
        deadline: Optional[Deadline],
        budget: Optional[ResourceBudget],
        tracer=None,
        parent=None,
    ) -> ShardOutcome:
        # The span re-roots the ambient trace scope inside the worker
        # thread, so hedge/ola/fault events below land in this subtree.
        with span(
            f"shard.{shard.shard_id}", tracer=tracer, parent=parent
        ) as sp:
            outcome = self._shard_attempts(
                shard, bound, kernels, spec, seed, mode, deadline, budget
            )
            sp.set(
                shard_status=outcome.status,
                attempts=list(outcome.attempts),
                rows_scanned=(
                    outcome.partial.rows_scanned if outcome.partial else 0
                ),
            )
            if not outcome.served:
                sp.fail(outcome.error or outcome.detail)
            return outcome

    def _shard_attempts(
        self,
        shard: Shard,
        bound: BoundQuery,
        kernels: _BoundKernels,
        spec: Optional[ErrorSpec],
        seed: Optional[int],
        mode: str,
        deadline: Optional[Deadline],
        budget: Optional[ResourceBudget],
    ) -> ShardOutcome:
        clock = deadline.clock if deadline is not None else time.monotonic
        start = clock()
        breaker = self.breaker(shard.shard_id)
        if not breaker.allow():
            return ShardOutcome(
                shard.shard_id,
                "breaker_open",
                detail="circuit open; shard skipped",
                elapsed=0.0,
            )
        attempts: List[str] = []
        last: Optional[BaseException] = None
        detail = ""
        max_attempts = 2 if self.hedge else 1
        for attempt in range(max_attempts):
            if deadline is not None and deadline.expired:
                last = last or DeadlineExceeded(
                    f"deadline expired before shard {shard.shard_id} attempt",
                    site=shard_site(shard.shard_id, "exec"),
                )
                detail = "deadline"
                break
            if attempt > 0:
                event("hedge", shard=shard.shard_id, attempt=attempt)
                get_metrics().inc(
                    "shard_hedges_total", shard=str(shard.shard_id)
                )
            attempt_start = clock()
            hedge_after = None
            if attempt == 0 and self.hedge and deadline is not None:
                hedge_after = max(deadline.remaining(), 0.0) * self.hedge_fraction
            try:
                # Every attempt passes the shard's "exec" hazard (a killed
                # shard fails primary and hedge alike); hedged attempts
                # additionally pass "hedge" for hedge-targeted faults.
                marker = maybe_fault(shard_site(shard.shard_id, "exec"))
                if attempt > 0:
                    marker = (
                        maybe_fault(shard_site(shard.shard_id, "hedge"))
                        or marker
                    )
                if marker == "corrupt":
                    raise SynopsisUnavailable(
                        f"shard {shard.shard_id} failed checksum validation"
                    )
                partial = self._execute_partial(
                    shard,
                    bound,
                    kernels,
                    spec,
                    seed,
                    mode,
                    deadline,
                    budget,
                    hedge_after,
                    clock,
                    attempt_start,
                )
            except _StragglerAbandoned as exc:
                # Not a health signal — the shard was slow, not broken —
                # so the breaker is not fed; the hedge attempt follows.
                attempts.append("abandoned")
                last = exc
                detail = "straggler"
                continue
            except DeadlineExceeded as exc:
                breaker.record_failure()
                return ShardOutcome(
                    shard.shard_id,
                    "failed",
                    detail="deadline",
                    error=_fmt_error(exc),
                    attempts=tuple(attempts),
                    elapsed=clock() - start,
                )
            except BudgetExhausted as exc:
                breaker.record_failure()
                return ShardOutcome(
                    shard.shard_id,
                    "failed",
                    detail="budget",
                    error=_fmt_error(exc),
                    attempts=tuple(attempts),
                    elapsed=clock() - start,
                )
            except Exception as exc:  # injected faults, corruption, bugs
                breaker.record_failure()
                attempts.append("failed")
                last = exc
                detail = "error"
                continue
            breaker.record_success()
            return ShardOutcome(
                shard.shard_id,
                "served_hedged" if attempt > 0 else "served",
                partial=partial,
                attempts=tuple(attempts),
                elapsed=clock() - start,
            )
        return ShardOutcome(
            shard.shard_id,
            "failed",
            detail=detail or "error",
            error=_fmt_error(last),
            attempts=tuple(attempts),
            elapsed=clock() - start,
        )

    def _execute_partial(
        self,
        shard: Shard,
        bound: BoundQuery,
        kernels: _BoundKernels,
        spec: Optional[ErrorSpec],
        seed: Optional[int],
        mode: str,
        deadline: Optional[Deadline],
        budget: Optional[ResourceBudget],
        hedge_after: Optional[float],
        clock,
        attempt_start: float,
    ) -> ShardPartial:
        with span(
            "scan",
            table=self.sharded.name,
            shard=shard.shard_id,
            mode=mode,
        ) as sp:
            if mode == "exact":
                partial = self._exact_partial(
                    shard,
                    bound,
                    kernels,
                    deadline,
                    budget,
                    hedge_after,
                    clock,
                    attempt_start,
                )
                blocks = shard.table.num_blocks
            elif mode == "ola":
                partial = self._ola_partial(
                    shard,
                    bound,
                    kernels,
                    spec,
                    seed,
                    deadline,
                    budget,
                    hedge_after,
                    clock,
                    attempt_start,
                )
                blocks = shard.table.num_blocks
            else:
                partial = self._sample_partial(shard, bound, kernels, spec)
                blocks = 0
            sp.set(
                rows_scanned=partial.rows_scanned, blocks_scanned=blocks
            )
            return partial

    # ------------------------------------------------------------------
    # Per-shard techniques
    # ------------------------------------------------------------------
    def _exact_partial(
        self,
        shard: Shard,
        bound: BoundQuery,
        kernels: _BoundKernels,
        deadline: Optional[Deadline],
        budget: Optional[ResourceBudget],
        hedge_after: Optional[float],
        clock,
        attempt_start: float,
    ) -> ShardPartial:
        alias = bound.tables[0].alias
        table = shard.table
        rename_map = {c: f"{alias}.{c}" for c in table.column_names}
        partial = ShardPartial(
            shard.shard_id, population_rows=table.num_rows
        )
        site = shard_site(shard.shard_id, "scan")
        fast = (
            deadline is None
            and budget is None
            and hedge_after is None
            and get_injector() is None
        )
        if fast:
            qtable = SliceRelation(table, 0, table.num_rows, rename_map)
            self._accumulate(partial, bound, kernels, qtable)
            return partial
        for b in range(table.num_blocks):
            if (
                hedge_after is not None
                and (clock() - attempt_start) > hedge_after
            ):
                raise _StragglerAbandoned(
                    f"shard {shard.shard_id} primary attempt abandoned "
                    f"after {clock() - attempt_start:.3f}s "
                    f"(carve-out {hedge_after:.3f}s)"
                )
            maybe_fault(site)
            if deadline is not None:
                deadline.check(site=site)
            start, stop = table.block_bounds(b)
            block = SliceRelation(table, start, stop, rename_map)
            if budget is not None:
                budget.charge(rows=block.num_rows, blocks=1, site=site)
            self._accumulate(partial, bound, kernels, block)
        return partial

    def _accumulate(
        self,
        partial: ShardPartial,
        bound: BoundQuery,
        kernels: _BoundKernels,
        qtable,
    ) -> None:
        mask = kernels.mask_of(qtable)
        matched = int(mask.sum()) if mask is not None else qtable.num_rows
        partial.rows_scanned += qtable.num_rows
        partial.matched_rows += matched
        if bound.group_keys:
            self._accumulate_groups(partial, bound, kernels, qtable, mask)
            return
        for agg in bound.aggregates:
            ap = partial.scalars.setdefault(agg.alias, AggPartial())
            if agg.func == "count":
                ap.count += matched
                continue
            vals = kernels.inputs_of(agg, qtable)
            if mask is not None:
                vals = vals[mask]
            ap.sum += float(vals.sum())
            if agg.func == "avg":
                ap.count += matched

    def _accumulate_groups(
        self,
        partial: ShardPartial,
        bound: BoundQuery,
        kernels: _BoundKernels,
        qtable,
        mask: Optional[np.ndarray],
    ) -> None:
        key_arrays = []
        for key_fn in kernels.key_fns:
            arr = np.asarray(key_fn(qtable))
            key_arrays.append(arr[mask] if mask is not None else arr)
        n = len(key_arrays[0]) if key_arrays else 0
        if n == 0:
            return
        codes = np.zeros(n, dtype=np.int64)
        for arr in key_arrays:
            uniq, inv = np.unique(arr, return_inverse=True)
            codes = codes * np.int64(len(uniq) + 1) + inv
        _, first_idx, inv = np.unique(
            codes, return_index=True, return_inverse=True
        )
        keys = [
            tuple(_py(arr[i]) for arr in key_arrays) for i in first_idx
        ]
        counts = np.bincount(inv, minlength=len(keys)).astype(np.float64)
        for agg in bound.aggregates:
            if agg.func == "count":
                sums = None
            else:
                vals = kernels.inputs_of(agg, qtable)
                if mask is not None:
                    vals = vals[mask]
                sums = np.bincount(inv, weights=vals, minlength=len(keys))
            for g, key in enumerate(keys):
                ap = partial.groups.setdefault(key, {}).setdefault(
                    agg.alias, AggPartial()
                )
                if agg.func == "count":
                    ap.count += counts[g]
                elif agg.func == "sum":
                    ap.sum += float(sums[g])
                else:
                    ap.sum += float(sums[g])
                    ap.count += counts[g]

    def _ola_partial(
        self,
        shard: Shard,
        bound: BoundQuery,
        kernels: _BoundKernels,
        spec: Optional[ErrorSpec],
        seed: Optional[int],
        deadline: Optional[Deadline],
        budget: Optional[ResourceBudget],
        hedge_after: Optional[float],
        clock,
        attempt_start: float,
    ) -> ShardPartial:
        agg = bound.aggregates[0]
        alias = bound.tables[0].alias
        table = shard.table
        site = shard_site(shard.shard_id, "scan")
        qtable = SliceRelation(
            table, 0, table.num_rows,
            {c: f"{alias}.{c}" for c in table.column_names},
        )
        mask = kernels.mask_of(qtable)
        matched = int(mask.sum()) if mask is not None else table.num_rows
        values = kernels.inputs_of(agg, qtable)
        conf = spec.confidence if spec is not None else 0.95
        shard_seed = int(
            np.random.SeedSequence(
                [seed if seed is not None else 0, shard.shard_id]
            ).generate_state(1)[0]
        )

        def snapshot_of(kind: str, rows: Optional[int] = None):
            # COUNT formerly passed value_column=None, which the wrapped
            # Table path expanded to an all-ones vector; feed the same
            # vector to from_values so the snapshots stay bitwise-equal.
            ola = OnlineAggregator.from_values(
                values if kind != "count" else np.ones(table.num_rows),
                agg=kind,
                predicate_mask=mask,
                confidence=conf,
                seed=shard_seed,
            )
            if rows is not None:
                return ola.snapshot(rows)
            # Fixed, data-independent stopping (never "stop when the CI
            # looks good" — the peeking fallacy forfeits coverage).
            max_fraction = 1.0 if deadline is not None else 0.30
            batch = max(256, table.num_rows // 20)
            snap = None
            for snap in ola.run(
                batch_size=batch, max_fraction=max_fraction, deadline=deadline
            ):
                event(
                    "ola_step",
                    rows_seen=snap.rows_seen,
                    fraction=snap.fraction_seen,
                )
                maybe_fault(site)
                if (
                    hedge_after is not None
                    and (clock() - attempt_start) > hedge_after
                ):
                    raise _StragglerAbandoned(
                        f"shard {shard.shard_id} OLA attempt abandoned"
                    )
            if snap is None:
                snap = ola.snapshot(min(batch, table.num_rows))
            return snap

        partial = ShardPartial(
            shard.shard_id,
            population_rows=table.num_rows,
            matched_rows=matched,
        )
        ap = partial.scalars.setdefault(agg.alias, AggPartial())
        if agg.func in ("sum", "count"):
            snap = snapshot_of(agg.func)
            half = (snap.ci_high - snap.ci_low) / 2.0
            if agg.func == "sum":
                ap.sum, ap.sum_hw2 = snap.value, half * half
            else:
                ap.count, ap.count_hw2 = snap.value, half * half
        else:  # avg: merge as ratio of SUM and COUNT components, taken
            # from the same permutation prefix (same seed, same rows).
            snap = snapshot_of("sum")
            half = (snap.ci_high - snap.ci_low) / 2.0
            ap.sum, ap.sum_hw2 = snap.value, half * half
            csnap = snapshot_of("count", rows=snap.rows_seen)
            chalf = (csnap.ci_high - csnap.ci_low) / 2.0
            ap.count, ap.count_hw2 = csnap.value, chalf * chalf
        partial.rows_scanned = snap.rows_seen
        if budget is not None:
            budget.charge(rows=snap.rows_seen, site=site)
        return partial

    def _sample_partial(
        self,
        shard: Shard,
        bound: BoundQuery,
        kernels: _BoundKernels,
        spec: Optional[ErrorSpec],
    ) -> ShardPartial:
        from ..offline.catalog import SynopsisCatalog

        catalog = self.catalog
        if catalog is None:
            catalog = SynopsisCatalog.for_database(
                self.sharded.binder_database()
            )
        entry = catalog.find_sample(
            self.sharded.name, require_fresh=False, shard=shard.shard_id
        )
        if entry is None:
            raise SynopsisUnavailable(
                f"no sample registered for shard {shard.shard_id}"
            )
        marker = maybe_fault(shard_site(shard.shard_id, "scan"))
        if marker == "corrupt":
            raise SynopsisUnavailable(
                f"shard {shard.shard_id} sample failed validation"
            )
        sample = entry.sample
        alias = bound.tables[0].alias
        conf = spec.confidence if spec is not None else 0.95
        qtable = SliceRelation(
            sample.table, 0, sample.table.num_rows,
            {c: f"{alias}.{c}" for c in sample.table.column_names},
        )
        mask = kernels.mask_of(qtable)
        filtered = sample.filtered(mask) if mask is not None else sample
        count_est = filtered.estimate_count()
        clo, chi = count_est.ci(conf)
        partial = ShardPartial(
            shard.shard_id,
            rows_scanned=sample.num_rows,
            population_rows=shard.stats.rows,
            matched_rows=float(max(count_est.value, 0.0)),
        )
        for agg in bound.aggregates:
            ap = partial.scalars.setdefault(agg.alias, AggPartial())
            if agg.func in ("count", "avg"):
                ap.count = count_est.value
                ap.count_hw2 = ((chi - clo) / 2.0) ** 2
            if agg.func in ("sum", "avg"):
                column = self._bare_column(bound, agg)
                if filtered.num_rows == 0:
                    ap.sum, ap.sum_hw2 = 0.0, 0.0
                else:
                    est = filtered.estimate_sum(column)
                    lo, hi = est.ci(conf)
                    ap.sum = est.value
                    ap.sum_hw2 = ((hi - lo) / 2.0) ** 2
        return partial

    # ------------------------------------------------------------------
    # Gather
    # ------------------------------------------------------------------
    def _gather(
        self,
        bound: BoundQuery,
        spec: Optional[ErrorSpec],
        mode: str,
        outcomes: List[ShardOutcome],
        deadline: Optional[Deadline],
    ):
        provenance: List[Dict[str, object]] = []
        for o in outcomes:
            get_metrics().inc("shard_outcomes_total", status=o.status)
            provenance.append(
                {
                    "rung": SCATTER_RUNG,
                    "shard": o.shard_id,
                    "outcome": (
                        "ok"
                        if o.served
                        else ("skipped" if o.status == "breaker_open" else "failed")
                    ),
                    "status": o.status,
                    "detail": o.detail,
                    "error": o.error,
                    "attempts": list(o.attempts),
                    "degraded": False,
                    "technique": mode,
                }
            )
        served = [o for o in outcomes if o.served]
        missing_ids = [o.shard_id for o in outcomes if not o.served]
        total_rows = self.sharded.total_rows
        served_rows = self.sharded.rows_in([o.shard_id for o in served])
        coverage = served_rows / total_rows if total_rows else 0.0
        summary = {
            "rung": RESHARD_RUNG if missing_ids else SCATTER_RUNG,
            "outcome": "ok",
            "detail": (
                f"coverage {coverage:.2%} "
                f"({len(served)}/{len(outcomes)} shards)"
            ),
            "error": "",
            "degraded": bool(missing_ids),
            "technique": mode,
            "coverage": coverage,
            "shards_served": [o.shard_id for o in served],
            "shards_missing": missing_ids,
            "hedged": [o.shard_id for o in served if o.status == "served_hedged"],
        }
        if not served or coverage < self.min_coverage:
            summary["outcome"] = "failed"
            summary["detail"] = (
                f"coverage {coverage:.2%} below floor "
                f"{self.min_coverage:.2%}"
            )
            provenance.append(summary)
            get_metrics().inc(
                "queries_refused_total", engine="scatter_gather"
            )
            raise QueryRefused(
                f"scatter-gather quorum failed: {summary['detail']}",
                provenance=provenance,
            )
        widens, unboundable = self._widening(bound, missing_ids)
        if unboundable is not None:
            summary["outcome"] = "failed"
            summary["detail"] = unboundable
            provenance.append(summary)
            get_metrics().inc(
                "queries_refused_total", engine="scatter_gather"
            )
            raise QueryRefused(
                f"cannot widen for missing shards: {unboundable}",
                provenance=provenance,
            )
        provenance.append(summary)
        result = self._assemble(
            bound, spec, mode, served, widens, coverage, provenance
        )
        if missing_ids and self.warn_on_degrade:
            warnings.warn(
                DegradedAnswer(
                    f"answer assembled from {len(served)}/{len(outcomes)} "
                    f"shards (coverage {coverage:.2%}); CIs widened for "
                    f"the missing partitions"
                ),
                stacklevel=3,
            )
        return result

    def _widening(
        self, bound: BoundQuery, missing_ids: List[int]
    ) -> Tuple[Dict[str, _Widen], Optional[str]]:
        """Aggregate the missing shards' envelopes per aggregate alias.

        Returns ``(widens, None)`` or ``({}, reason)`` when some missing
        shard cannot be honestly bounded for some aggregate.
        """
        widens: Dict[str, _Widen] = {
            agg.alias: _Widen() for agg in bound.aggregates
        }
        if not missing_ids:
            return widens, None
        for agg in bound.aggregates:
            w = widens[agg.alias]
            column = self._bare_column(bound, agg)
            for sid in missing_ids:
                stats = self.sharded.shards[sid].stats
                w.rows += stats.rows
                if agg.func == "count":
                    continue
                if column is None:
                    return {}, (
                        f"aggregate {agg.alias!r} is not a bare column; "
                        f"no catalog envelope for missing shard {sid}"
                    )
                bounds = stats.sum_envelope(column)
                if bounds is None:
                    return {}, (
                        f"no envelope for column {column!r} in missing "
                        f"shard {sid}"
                    )
                w.neg += bounds.negative
                w.pos += bounds.positive
                w.total += bounds.total
        return widens, None

    def _assemble(
        self,
        bound: BoundQuery,
        spec: Optional[ErrorSpec],
        mode: str,
        served: List[ShardOutcome],
        widens: Dict[str, _Widen],
        coverage: float,
        provenance: List[Dict[str, object]],
    ):
        partials = [o.partial for o in served]
        scanned = sum(p.rows_scanned for p in partials)
        population = sum(p.population_rows for p in partials)
        matched = sum(p.matched_rows for p in partials)
        sel = min(max(matched / population, 0.0), 1.0) if population else 0.0
        degraded = any(w.rows or w.neg or w.pos for w in widens.values())

        if bound.group_keys:
            values, lows, highs, key_columns, nrows = self._assemble_groups(
                bound, partials, widens, sel
            )
        else:
            values, lows, highs = {}, {}, {}
            for agg in bound.aggregates:
                merged = AggPartial()
                for p in partials:
                    ap = p.scalars.get(agg.alias)
                    if ap is None:
                        continue
                    merged.sum += ap.sum
                    merged.sum_hw2 += ap.sum_hw2
                    merged.count += ap.count
                    merged.count_hw2 += ap.count_hw2
                v, lo, hi = self._cell(agg.func, merged, widens[agg.alias], sel)
                values[agg.alias] = np.array([v])
                lows[agg.alias] = np.array([lo])
                highs[agg.alias] = np.array([hi])
            key_columns, nrows = {}, 1

        columns: Dict[str, np.ndarray] = {}
        ci_low: Dict[str, np.ndarray] = {}
        ci_high: Dict[str, np.ndarray] = {}
        agg_aliases = {a.alias for a in bound.aggregates}
        for expr, out_alias in bound.output_items:
            name = expr.name  # validated Column in _check_supported
            if name in agg_aliases:
                columns[out_alias] = values[name]
                ci_low[out_alias] = lows[name]
                ci_high[out_alias] = highs[name]
            else:
                columns[out_alias] = key_columns[name]

        stats = ExecutionStats()
        stats.rows_scanned = scanned
        stats.agg_input_rows = scanned
        stats.rows_output = nrows
        table = Table(columns, name="aggregate")
        total_rows = self.sharded.total_rows
        exact_full_coverage = (
            mode == "exact" and not degraded and spec is None
        )
        if exact_full_coverage:
            return QueryResult(
                table=table, stats=stats, provenance=provenance
            )
        achieved = 0.0
        for alias in agg_aliases:
            v = values[alias]
            with np.errstate(divide="ignore", invalid="ignore"):
                rel = np.where(
                    v != 0,
                    (highs[alias] - lows[alias]) / 2.0 / np.abs(v),
                    np.inf,
                )
            finite = rel[np.isfinite(rel)]
            if len(finite):
                achieved = max(achieved, float(finite.max()))
        conf = spec.confidence if spec is not None else 0.95
        base_rel = spec.relative_error if spec is not None else 0.05
        claimed = ErrorSpec(
            relative_error=min(0.99, max(base_rel, achieved, 1e-9)),
            confidence=conf,
        )
        result = ApproximateResult(
            table=table,
            stats=stats,
            spec=claimed,
            technique=f"scatter_gather_{mode}",
            ci_low=ci_low,
            ci_high=ci_high,
            fraction_scanned=scanned / total_rows if total_rows else 0.0,
            approx_cost=float(scanned),
            exact_cost=float(total_rows),
            diagnostics={
                "mode": mode,
                "coverage": coverage,
                "shards_served": len(served),
                "shards_total": self.sharded.num_shards,
                "selectivity_estimate": sel,
                "widen_rule": "sum:[Σneg,Σpos] count:[0,rows] avg:interval-ratio",
                "groups_possibly_missing": bool(
                    bound.group_keys
                    and any(w.rows for w in widens.values())
                ),
            },
            provenance=provenance,
        )
        return result

    def _assemble_groups(
        self,
        bound: BoundQuery,
        partials: List[ShardPartial],
        widens: Dict[str, _Widen],
        sel: float,
    ):
        merged: Dict[Tuple, Dict[str, AggPartial]] = {}
        for p in partials:
            for key, aggs in p.groups.items():
                slot = merged.setdefault(key, {})
                for alias, ap in aggs.items():
                    m = slot.setdefault(alias, AggPartial())
                    m.sum += ap.sum
                    m.sum_hw2 += ap.sum_hw2
                    m.count += ap.count
                    m.count_hw2 += ap.count_hw2
        keys = sorted(merged, key=repr)
        nrows = len(keys)
        key_columns = {
            alias: np.asarray([key[i] for key in keys])
            for i, (_, alias) in enumerate(bound.group_keys)
        }
        values: Dict[str, np.ndarray] = {}
        lows: Dict[str, np.ndarray] = {}
        highs: Dict[str, np.ndarray] = {}
        for agg in bound.aggregates:
            # Per-group selectivity of the lost rows is unknowable, so a
            # group keeps its served value and widens by the *full*
            # missing-shard envelope — conservative for every group.
            vs, ls, hs = [], [], []
            for key in keys:
                ap = merged[key].get(agg.alias, AggPartial())
                v, lo, hi = self._cell(
                    agg.func, ap, widens[agg.alias], sel=0.0
                )
                vs.append(v)
                ls.append(lo)
                hs.append(hi)
            values[agg.alias] = np.asarray(vs)
            lows[agg.alias] = np.asarray(ls)
            highs[agg.alias] = np.asarray(hs)
        return values, lows, highs, key_columns, nrows

    @staticmethod
    def _cell(
        func: str, ap: AggPartial, w: _Widen, sel: float
    ) -> Tuple[float, float, float]:
        """Merged value + CI for one aggregate cell, widened for missing
        shards (see module docstring for the rule)."""
        s_hw = math.sqrt(ap.sum_hw2)
        c_hw = math.sqrt(ap.count_hw2)
        if func == "sum":
            center = min(max(sel * w.total, w.neg), w.pos)
            return (
                ap.sum + center,
                ap.sum - s_hw + w.neg,
                ap.sum + s_hw + w.pos,
            )
        if func == "count":
            return (
                ap.count + sel * w.rows,
                max(ap.count - c_hw, 0.0),
                ap.count + c_hw + w.rows,
            )
        # avg: interval division of the SUM envelope by the COUNT envelope
        s_lo = ap.sum - s_hw + w.neg
        s_hi = ap.sum + s_hw + w.pos
        c_lo = max(ap.count - c_hw, 0.0)
        c_hi = ap.count + c_hw + w.rows
        denom = ap.count + sel * w.rows
        numer = ap.sum + min(max(sel * w.total, w.neg), w.pos)
        value = numer / denom if denom > 0 else math.nan
        if c_lo <= 0.0:
            return value, -math.inf, math.inf
        candidates = (s_lo / c_lo, s_lo / c_hi, s_hi / c_lo, s_hi / c_hi)
        return value, min(candidates), max(candidates)
