"""Merging per-shard partial results into whole-table answers.

Three families of partials come back from shard workers, each with its
own merge algebra:

* **Mergeable sketches** (CM/CS/HLL/KMV/Bloom/SpaceSaving) — closed
  under ``merge``; merging shard sketches is *equivalent* to sketching
  the whole table (exactly for the deterministic structures, to the
  sketch's own guarantee for SpaceSaving). The property tests in
  ``tests/test_merge_property.py`` assert this shard/whole equivalence.
* **OLA snapshots** — per-shard fixed-stop estimates are independent, so
  totals add and variances add: the merged half-width is the root of the
  summed squared half-widths (all snapshots share the z of their common
  confidence level).
* **Weighted samples** — HT weights are inverse inclusion probabilities
  *within the shard*; shards partition the table, so the union of
  per-shard samples with their original weights is a valid weighted
  sample of the whole (stratified by shard).
"""

from __future__ import annotations

import math
from functools import reduce
from typing import Sequence

from ..core.exceptions import MergeError
from ..engine.table import Table
from ..online.ola import OLASnapshot
from ..sampling.base import WeightedSample

__all__ = ["merge_sketches", "merge_snapshots", "merge_weighted_samples"]


def merge_sketches(sketches: Sequence[object]):
    """Fold shard sketches with their own ``merge`` into one."""
    if not sketches:
        raise MergeError("nothing to merge")
    return reduce(lambda a, b: a.merge(b), sketches)


def merge_snapshots(
    snapshots: Sequence[OLASnapshot], population_rows: int
) -> OLASnapshot:
    """Sum independent per-shard snapshots of an additive aggregate.

    Valid for SUM/COUNT totals (values add; shard estimates are
    independent so squared half-widths add). AVG does not merge this way
    — merge its SUM and COUNT components and take the ratio instead.
    """
    if not snapshots:
        raise MergeError("nothing to merge")
    value = sum(s.value for s in snapshots)
    half2 = 0.0
    for s in snapshots:
        half = (s.ci_high - s.ci_low) / 2.0
        if not math.isfinite(half):
            return OLASnapshot(
                rows_seen=sum(s.rows_seen for s in snapshots),
                fraction_seen=(
                    sum(s.rows_seen for s in snapshots) / population_rows
                    if population_rows
                    else 0.0
                ),
                value=value,
                ci_low=-math.inf,
                ci_high=math.inf,
            )
        half2 += half * half
    half = math.sqrt(half2)
    rows_seen = sum(s.rows_seen for s in snapshots)
    return OLASnapshot(
        rows_seen=rows_seen,
        fraction_seen=rows_seen / population_rows if population_rows else 0.0,
        value=value,
        ci_low=value - half,
        ci_high=value + half,
    )


def merge_weighted_samples(
    samples: Sequence[WeightedSample],
) -> WeightedSample:
    """Union per-shard samples; weights carry over (shard-stratified HT).

    Each shard's weights are inverse inclusion probabilities within that
    shard; because shards partition the population, the same weights are
    the correct HT weights within the union, and the population is the
    sum of shard populations.
    """
    if not samples:
        raise MergeError("nothing to merge")
    import numpy as np

    table = Table.concat(
        [s.table for s in samples], name=samples[0].table.name
    )
    weights = np.concatenate([s.weights for s in samples])
    return WeightedSample(
        table=table,
        weights=weights,
        method=f"sharded_union[{len(samples)}]:{samples[0].method}",
        population_rows=sum(s.population_rows for s in samples),
        params={"shards": len(samples)},
    )
