"""Sharded table substrate: hash/range partitions with widening statistics.

A :class:`ShardedTable` splits one :class:`~repro.engine.table.Table`
into N disjoint shards and records, per shard, the statistics the
scatter-gather executor needs to answer *without* a shard while staying
honest about the error: the row count plus, for every numeric column,
the total, the sum of positive values and the sum of negative values.

Those three sums give a deterministic envelope for any predicate: the
contribution of a shard's *matched* rows to ``SUM(col)`` — whatever the
predicate selects — always lies in ``[negative, positive]``, because a
subset sum can at worst collect every negative value and at best every
positive one. ``COUNT`` is bounded by ``[0, rows]``. That is the
missing-shard analogue of the stale-synopsis widening rule in
:mod:`repro.resilience.ladder`: a bound derived from catalog statistics
of data we did not read, added on top of whatever sampling error the
shards we *did* read report.

Per-shard synopses (uniform samples today) register in the
:class:`~repro.offline.catalog.SynopsisCatalog` with their shard id, and
flow through the synopsis cache under shard-aware keys so two shards of
the same parent can never collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.exceptions import SchemaError
from ..engine.table import Table
from ..sketches.hashing import hash64

__all__ = [
    "ColumnBounds",
    "ShardStats",
    "Shard",
    "ShardedTable",
    "compute_shard_stats",
]


@dataclass(frozen=True)
class ColumnBounds:
    """Deterministic envelope of one numeric column within one shard."""

    total: float
    #: sum of ``max(x, 0)`` — the largest any subset sum can be
    positive: float
    #: sum of ``min(x, 0)`` — the smallest any subset sum can be
    negative: float
    minimum: float
    maximum: float


@dataclass(frozen=True)
class ShardStats:
    """Catalog statistics recorded when a shard is built."""

    rows: int
    bounds: Mapping[str, ColumnBounds] = field(default_factory=dict)

    def sum_envelope(self, column: str) -> Optional[ColumnBounds]:
        return self.bounds.get(column)


def compute_shard_stats(table: Table) -> ShardStats:
    """Row count + per-numeric-column subset-sum envelopes."""
    bounds: Dict[str, ColumnBounds] = {}
    for name in table.column_names:
        arr = table[name]
        if arr.dtype.kind not in ("i", "u", "f", "b"):
            continue
        x = np.asarray(arr, dtype=np.float64)
        if len(x) == 0:
            bounds[name] = ColumnBounds(0.0, 0.0, 0.0, 0.0, 0.0)
            continue
        if not np.all(np.isfinite(x)):
            # A non-finite value defeats any subset-sum envelope; leaving
            # the column out makes the executor refuse rather than lie.
            continue
        bounds[name] = ColumnBounds(
            total=float(x.sum()),
            positive=float(np.clip(x, 0.0, None).sum()),
            negative=float(np.clip(x, None, 0.0).sum()),
            minimum=float(x.min()),
            maximum=float(x.max()),
        )
    return ShardStats(rows=table.num_rows, bounds=bounds)


@dataclass
class Shard:
    """One partition of a sharded table."""

    shard_id: int
    table: Table
    stats: ShardStats


class ShardedTable:
    """N disjoint shards of one logical table.

    Build with :meth:`from_table`; ``by="hash"`` spreads rows
    pseudo-randomly (by a key column's hash, or by row position when no
    key is given) so every shard is an exchangeable subsample of the
    whole — the property the executor's selectivity transfer relies on.
    ``by="range"`` splits on quantile boundaries of ``key`` (locality,
    shard pruning), at the price of shards that are *not* exchangeable.
    """

    def __init__(
        self,
        name: str,
        shards: Sequence[Shard],
        strategy: str = "hash",
        key: Optional[str] = None,
        boundaries: Optional[np.ndarray] = None,
    ) -> None:
        if not shards:
            raise SchemaError("a sharded table needs at least one shard")
        self.name = name
        self.shards: List[Shard] = list(shards)
        self.strategy = strategy
        self.key = key
        self.boundaries = boundaries
        self._binder_db = None

    # ------------------------------------------------------------------
    @classmethod
    def from_table(
        cls,
        table: Table,
        num_shards: int,
        by: str = "hash",
        key: Optional[str] = None,
        seed: int = 0,
    ) -> "ShardedTable":
        if num_shards < 1:
            raise SchemaError("num_shards must be >= 1")
        if by not in ("hash", "range"):
            raise SchemaError(f"unknown sharding strategy {by!r}")
        if table.num_rows == 0:
            raise SchemaError("refusing to shard an empty table")
        boundaries = None
        if by == "hash":
            basis = (
                np.asarray(table[key])
                if key is not None
                else np.arange(table.num_rows, dtype=np.int64)
            )
            assignment = hash64(basis, seed=seed).astype(np.uint64) % np.uint64(
                num_shards
            )
            assignment = assignment.astype(np.int64)
        else:
            if key is None:
                raise SchemaError("range sharding requires a key column")
            values = np.asarray(table[key], dtype=np.float64)
            qs = np.linspace(0.0, 1.0, num_shards + 1)[1:-1]
            boundaries = np.quantile(values, qs) if len(qs) else np.array([])
            assignment = np.searchsorted(boundaries, values, side="right")
        parts = table.split_by_assignment(assignment, num_shards)
        name = table.name or "sharded"
        shards = [
            Shard(
                shard_id=i,
                table=Table(
                    part.columns_dict(),
                    name=f"{name}#{i}",
                    block_size=table.block_size,
                ),
                stats=compute_shard_stats(part),
            )
            for i, part in enumerate(parts)
        ]
        return cls(
            name=name,
            shards=shards,
            strategy=by,
            key=key,
            boundaries=boundaries,
        )

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def total_rows(self) -> int:
        return sum(s.stats.rows for s in self.shards)

    @property
    def column_names(self) -> List[str]:
        return self.shards[0].table.column_names

    def shard(self, shard_id: int) -> Shard:
        return self.shards[shard_id]

    def rows_in(self, shard_ids: Sequence[int]) -> int:
        return sum(self.shards[i].stats.rows for i in shard_ids)

    def whole_table(self) -> Table:
        """Reassemble the full table (tests/oracles only)."""
        return Table.concat(
            [s.table for s in self.shards], name=self.name
        )

    def binder_database(self):
        """A schema-only Database so SQL binds once against shard schema.

        Holds an empty table with the parent's name and columns; the
        executor never runs the bound plan against it — shards are
        evaluated directly.
        """
        if self._binder_db is None:
            from ..engine.database import Database

            template = self.shards[0].table
            db = Database()
            db.create_table(
                self.name, {c: template[c][:0] for c in template.column_names}
            )
            self._binder_db = db
        return self._binder_db

    # ------------------------------------------------------------------
    def build_shard_samples(
        self,
        rows_per_shard: int,
        seed: int = 0,
        catalog=None,
        cache=None,
    ) -> list:
        """Register one uniform sample per shard, through the cache.

        Samples are built via :meth:`SynopsisCache.get_or_build` with the
        shard id folded into the content address, and registered in
        ``catalog`` (default: the binder database's catalog) as
        :class:`~repro.offline.catalog.SampleEntry` rows carrying their
        ``shard`` id, so shard-aware lookups find exactly their shard.
        """
        from ..offline.catalog import SampleEntry, SynopsisCatalog
        from ..sampling.row import srs_sample
        from ..storage.synopsis_cache import get_global_cache

        if catalog is None:
            catalog = SynopsisCatalog.for_database(self.binder_database())
        cache = get_global_cache() if cache is None else cache
        entries = []
        for shard in self.shards:
            size = min(rows_per_shard, shard.stats.rows)
            if size == 0:
                continue
            shard_seed = int(
                np.random.SeedSequence([seed, shard.shard_id]).generate_state(1)[0]
            )

            def _build(shard=shard, size=size, shard_seed=shard_seed):
                return srs_sample(
                    shard.table, size, np.random.default_rng(shard_seed)
                )

            sample = cache.get_or_build(
                (self.name, shard.table.fingerprint()),
                kind="sample:uniform",
                columns=tuple(shard.table.column_names),
                params={"rows": size, "seed": seed},
                builder=_build,
                shard=shard.shard_id,
            )
            entry = SampleEntry(
                table=self.name,
                sample=sample,
                kind="uniform",
                built_at_rows=shard.stats.rows,
                shard=shard.shard_id,
            )
            catalog.add_sample(entry)
            entries.append(entry)
        return entries
