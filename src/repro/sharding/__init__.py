"""Partition-tolerant sharded execution (DESIGN.md §2.11).

Split a table into N shards, fan aggregate queries out to shard workers,
and merge partial answers while surviving shard kills, stragglers, and
corruption — widening the CI honestly for whatever was not served.
"""

from .executor import (
    AggPartial,
    SCATTER_RUNG,
    ScatterGatherExecutor,
    ShardOutcome,
    ShardPartial,
)
from .merge import merge_sketches, merge_snapshots, merge_weighted_samples
from .table import (
    ColumnBounds,
    Shard,
    ShardStats,
    ShardedTable,
    compute_shard_stats,
)

__all__ = [
    "AggPartial",
    "ColumnBounds",
    "SCATTER_RUNG",
    "ScatterGatherExecutor",
    "Shard",
    "ShardOutcome",
    "ShardPartial",
    "ShardStats",
    "ShardedTable",
    "compute_shard_stats",
    "merge_sketches",
    "merge_snapshots",
    "merge_weighted_samples",
]
