"""Sample+Seek (Ding et al. 2016): distribution-precision guarantees.

The hybrid the survey highlights as the credible route to a-priori
guarantees: a *measure-biased* sample answers every **large** group of a
group-by accurately (each sampled row carries equal SUM mass, so a group
holding an ε fraction of the measure gets ~ε·n sample rows), while
**small** groups — hopeless for any sample — are answered *exactly* by
seeking a secondary index. The error metric is distribution precision:
the L2 distance between the true and estimated group-share vectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import SynopsisError
from ..engine.table import Table
from ..sampling.measure_biased import measure_biased_sample
from ..storage.cost import index_seek_cost, scan_cost
from ..storage.synopsis_cache import SynopsisCache, get_global_cache


@dataclass
class SeekIndex:
    """A (simulated) secondary index: group value -> row positions.

    Seeking a group costs ``seek_cost`` per matching row in the cost
    model, which is exactly why it only pays for small groups.
    """

    table_name: str
    column: str
    postings: Dict[object, np.ndarray]

    def lookup(self, value) -> np.ndarray:
        return self.postings.get(value, np.array([], dtype=np.int64))

    def storage_rows(self) -> int:
        return int(sum(len(v) for v in self.postings.values()))


def build_seek_index(table: Table, column: str) -> SeekIndex:
    values = table[column]
    uniq, inverse = np.unique(values, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    sorted_inv = inverse[order]
    boundaries = np.flatnonzero(np.diff(sorted_inv)) + 1
    starts = np.concatenate([[0], boundaries, [len(values)]])
    postings = {}
    for i, val in enumerate(uniq):
        postings[val.item() if hasattr(val, "item") else val] = order[
            starts[i]: starts[i + 1]
        ]
    return SeekIndex(table_name=table.name, column=column, postings=postings)


@dataclass
class SampleSeekSynopsis:
    """The precomputed pair: measure-biased sample + seek index."""

    table_name: str
    measure_column: str
    group_column: str
    sample_table: Table
    sample_weights: np.ndarray
    index: SeekIndex
    built_at_rows: int
    #: groups whose sample support is below this are answered via seek
    min_sample_rows: int = 30


def build_sample_seek(
    table: Table,
    measure_column: str,
    group_column: str,
    sample_size: int = 10_000,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    cache: Optional[SynopsisCache] = None,
) -> SampleSeekSynopsis:
    """Build (or fetch) the measure-biased sample + seek index pair.

    When the build is deterministic — ``seed`` given (or neither ``seed``
    nor ``rng``, which defaults to seed 0), rather than a live ``rng`` —
    the synopsis is memoized in the synopsis cache keyed by the table's
    content fingerprint, so benchmark reruns and repeated queries reuse
    it instead of rebuilding. Passing an explicit ``rng`` bypasses the
    cache, since the result then depends on generator state.
    """
    if rng is not None:
        return _build_sample_seek(table, measure_column, group_column,
                                  sample_size, rng)
    seed = 0 if seed is None else seed
    cache = get_global_cache() if cache is None else cache
    return cache.get_or_build(
        table,
        kind="sample_seek",
        columns=(measure_column, group_column),
        params={"sample_size": sample_size, "seed": seed},
        builder=lambda: _build_sample_seek(
            table, measure_column, group_column, sample_size,
            np.random.default_rng(seed),
        ),
    )


def _build_sample_seek(
    table: Table,
    measure_column: str,
    group_column: str,
    sample_size: int,
    rng: Optional[np.random.Generator],
) -> SampleSeekSynopsis:
    sample = measure_biased_sample(table, measure_column, sample_size, rng=rng)
    index = build_seek_index(table, group_column)
    return SampleSeekSynopsis(
        table_name=table.name,
        measure_column=measure_column,
        group_column=group_column,
        sample_table=sample.table,
        sample_weights=sample.weights,
        index=index,
        built_at_rows=table.num_rows,
    )


@dataclass
class GroupAnswer:
    key: object
    value: float
    method: str  # "sample" or "seek"
    sample_rows: int = 0


def answer_group_by_sum(
    synopsis: SampleSeekSynopsis,
    base_table: Table,
) -> Tuple[List[GroupAnswer], float]:
    """SUM(measure) GROUP BY group_column via sample for large groups and
    seek for small ones. Returns (answers, simulated_cost)."""
    sample = synopsis.sample_table
    weights = synopsis.sample_weights
    measure = np.asarray(sample[synopsis.measure_column], dtype=np.float64)
    groups = sample[synopsis.group_column]
    uniq, inverse = np.unique(groups, return_inverse=True)
    support = np.bincount(inverse, minlength=len(uniq))
    estimates = np.bincount(
        inverse, weights=weights * measure, minlength=len(uniq)
    )
    answers: List[GroupAnswer] = []
    cost = scan_cost(
        max(sample.num_rows // 1024, 1), sample.num_rows
    ).total  # reading the sample
    sampled_keys = set()
    for i, key in enumerate(uniq):
        k = key.item() if hasattr(key, "item") else key
        sampled_keys.add(k)
        if support[i] >= synopsis.min_sample_rows:
            answers.append(
                GroupAnswer(
                    key=k,
                    value=float(estimates[i]),
                    method="sample",
                    sample_rows=int(support[i]),
                )
            )
        else:
            rows = synopsis.index.lookup(k)
            exact = float(
                np.sum(
                    np.asarray(
                        base_table[synopsis.measure_column], dtype=np.float64
                    )[rows]
                )
            )
            cost += index_seek_cost(len(rows)).total
            answers.append(
                GroupAnswer(key=k, value=exact, method="seek", sample_rows=int(support[i]))
            )
    # Groups entirely absent from the sample: seek them too.
    for k in synopsis.index.postings:
        if k in sampled_keys:
            continue
        rows = synopsis.index.lookup(k)
        exact = float(
            np.sum(
                np.asarray(base_table[synopsis.measure_column], dtype=np.float64)[rows]
            )
        )
        cost += index_seek_cost(len(rows)).total
        answers.append(GroupAnswer(key=k, value=exact, method="seek"))
    return answers, cost


def distribution_precision(
    answers: Sequence[GroupAnswer], truth: Dict[object, float]
) -> float:
    """L2 distance between normalized true and estimated group-share
    vectors — Sample+Seek's error metric."""
    keys = sorted(truth, key=str)
    t = np.asarray([truth[k] for k in keys], dtype=np.float64)
    by_key = {a.key: a.value for a in answers}
    e = np.asarray([by_key.get(k, 0.0) for k in keys], dtype=np.float64)
    t_norm = t / t.sum() if t.sum() else t
    e_norm = e / e.sum() if e.sum() else e
    return float(np.linalg.norm(t_norm - e_norm))
