"""BlinkDB-style workload-aware sample selection.

Offline AQP's planning problem: given a storage budget and an expected
workload of (table, query-column-set) templates, choose which stratified
samples to precompute so the largest possible (frequency-weighted) share
of the workload is covered. BlinkDB formulates this as an MILP; like most
deployments we solve the same objective with a budgeted greedy that picks
the best marginal coverage-per-row at each step (the classic (1-1/e)
approximation for coverage objectives).

A sample stratified on column set φ covers a query template whose group
columns are a subset of φ — that is the coverage rule the catalog also
enforces at query time.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.exceptions import SynopsisError
from ..sampling.stratified import stratified_sample
from ..storage.synopsis_cache import SynopsisCache, get_global_cache
from .catalog import SampleEntry, SynopsisCatalog


@dataclass(frozen=True)
class QueryTemplate:
    """One recurring query shape in the expected workload."""

    table: str
    #: group-by / filter columns the template touches (its QCS)
    columns: Tuple[str, ...]
    frequency: float = 1.0

    def __post_init__(self) -> None:
        if self.frequency < 0:
            raise SynopsisError("frequency must be non-negative")


@dataclass
class CandidateSample:
    """One sample the selector may build."""

    table: str
    columns: Tuple[str, ...]
    storage_rows: int
    covered_weight: float = 0.0

    @property
    def benefit_per_row(self) -> float:
        if self.storage_rows <= 0:
            return math.inf
        return self.covered_weight / self.storage_rows


class BlinkDBSelector:
    """Chooses and materializes stratified samples under a budget."""

    def __init__(
        self,
        database,
        budget_rows: int,
        rows_per_stratum: int = 100,
        seed: Optional[int] = None,
        cache: Optional[SynopsisCache] = None,
    ) -> None:
        if budget_rows < 1:
            raise SynopsisError("budget_rows must be >= 1")
        self.database = database
        self.budget_rows = budget_rows
        self.rows_per_stratum = rows_per_stratum
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.catalog = SynopsisCatalog.for_database(database)
        #: memoizes materialized stratified samples across rebuilds; only
        #: consulted when ``seed`` makes each build deterministic
        self.cache = get_global_cache() if cache is None else cache

    # ------------------------------------------------------------------
    def candidates(self, workload: Sequence[QueryTemplate]) -> List[CandidateSample]:
        """One candidate per distinct (table, QCS) in the workload.

        Storage cost: ``min(#strata · rows_per_stratum, table_rows)`` —
        every distinct value combination keeps up to ``rows_per_stratum``
        rows (BlinkDB's K cap).
        """
        out: Dict[Tuple[str, Tuple[str, ...]], CandidateSample] = {}
        for template in workload:
            key = (template.table, tuple(sorted(template.columns)))
            if key in out:
                continue
            table = self.database.table(template.table)
            stats = self.database.stats(template.table)
            ndv = 1
            for col in key[1]:
                cstats = stats.column(col)
                ndv *= cstats.num_distinct if cstats else 1
            storage = min(ndv * self.rows_per_stratum, table.num_rows)
            out[key] = CandidateSample(
                table=key[0], columns=key[1], storage_rows=storage
            )
        # Coverage weights: candidate covers template iff QCS ⊆ candidate.
        for cand in out.values():
            cand.covered_weight = sum(
                t.frequency
                for t in workload
                if t.table == cand.table and set(t.columns) <= set(cand.columns)
            )
        return list(out.values())

    def select(
        self, workload: Sequence[QueryTemplate]
    ) -> Tuple[List[CandidateSample], float]:
        """Greedy budgeted coverage; returns (chosen, covered_fraction).

        Marginal coverage is recomputed after each pick because a chosen
        superset-QCS candidate covers the templates of its subsets.
        """
        remaining = {id(t): t for t in workload}
        total_weight = sum(t.frequency for t in workload) or 1.0
        budget = self.budget_rows
        chosen: List[CandidateSample] = []
        cands = self.candidates(workload)
        while budget > 0 and remaining:
            best, best_score = None, 0.0
            for cand in cands:
                if cand in chosen or cand.storage_rows > budget:
                    continue
                marginal = sum(
                    t.frequency
                    for t in remaining.values()
                    if t.table == cand.table and set(t.columns) <= set(cand.columns)
                )
                if cand.storage_rows <= 0:
                    continue
                score = marginal / cand.storage_rows
                if score > best_score:
                    best, best_score = cand, score
            if best is None or best_score <= 0:
                break
            chosen.append(best)
            budget -= best.storage_rows
            for tid in [
                tid
                for tid, t in remaining.items()
                if t.table == best.table and set(t.columns) <= set(best.columns)
            ]:
                remaining.pop(tid)
        covered = 1.0 - sum(t.frequency for t in remaining.values()) / total_weight
        return chosen, covered

    # ------------------------------------------------------------------
    def materialize(self, chosen: Sequence[CandidateSample]) -> List[SampleEntry]:
        """Build the selected samples and register them in the catalog.

        With a ``seed``, each candidate's sample is drawn from its own
        deterministic generator (derived from the seed and the candidate
        identity) and memoized in the synopsis cache keyed on the table's
        content fingerprint — so re-running the selector after a restart
        or in a benchmark rerun reuses the stored sample instead of
        re-stratifying the base table. Without a seed the legacy shared-
        generator path is kept and nothing is cached.
        """
        entries: List[SampleEntry] = []
        for cand in chosen:
            table = self.database.table(cand.table)
            strata = cand.columns[0] if len(cand.columns) == 1 else list(cand.columns)
            min_per = min(self.rows_per_stratum, max(table.num_rows, 1))

            def build(table=table, strata=strata, cand=cand, min_per=min_per):
                if self.seed is None:
                    rng = self.rng
                else:
                    # Stable per-candidate stream: independent of build
                    # order, build count, and PYTHONHASHSEED.
                    digest = hashlib.blake2b(
                        "/".join(cand.columns).encode(), digest_size=4
                    ).digest()
                    rng = np.random.default_rng(
                        [self.seed, int.from_bytes(digest, "little")]
                    )
                return stratified_sample(
                    table,
                    strata,
                    total_size=cand.storage_rows,
                    policy="congress",
                    min_per_stratum=min_per,
                    rng=rng,
                )

            if self.seed is None:
                sample = build()
            else:
                sample = self.cache.get_or_build(
                    table,
                    kind="blinkdb_stratified",
                    columns=cand.columns,
                    params={
                        "storage_rows": cand.storage_rows,
                        "min_per_stratum": min_per,
                        "policy": "congress",
                        "seed": self.seed,
                    },
                    builder=build,
                )
            entry = SampleEntry(
                table=cand.table,
                sample=sample,
                kind="stratified",
                strata_column=(
                    cand.columns[0] if len(cand.columns) == 1 else cand.columns
                ),
                built_at_rows=table.num_rows,
            )
            self.catalog.add_sample(entry)
            entries.append(entry)
        return entries

    def build_for_workload(
        self, workload: Sequence[QueryTemplate]
    ) -> Tuple[List[SampleEntry], float]:
        """Select + materialize in one call; returns (entries, coverage)."""
        chosen, coverage = self.select(workload)
        return self.materialize(chosen), coverage


def workload_coverage(
    catalog: SynopsisCatalog, workload: Sequence[QueryTemplate]
) -> float:
    """Frequency-weighted fraction of ``workload`` the catalog can answer
    from fresh samples — the drift metric of experiment E7."""
    total = sum(t.frequency for t in workload) or 1.0
    covered = 0.0
    for template in workload:
        entry = catalog.find_sample(template.table, template.columns)
        if entry is not None:
            covered += template.frequency
    return covered / total
