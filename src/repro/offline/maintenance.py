"""Maintenance cost accounting for offline synopses.

The survey's sharpest criticism of offline AQP is not accuracy — it is
the *cumulative* cost of keeping synopses valid while the base data
changes. This module simulates that: it applies an insert stream to a
database, lets a refresh policy decide when each synopsis is rebuilt, and
charges every rebuild its full construction cost. Experiment E8 sweeps
update rates and shows maintenance overtaking the query-time savings.

Policies implemented:

* ``eager``     — rebuild after every batch (always fresh, max cost);
* ``threshold`` — rebuild when staleness exceeds the catalog threshold
  (the common deployment);
* ``never``     — never rebuild (zero cost, unbounded bias);
* ``reservoir`` — incrementally fold inserts into uniform samples via
  reservoir updates (cheap and exact for uniform samples only — the
  asymmetry is the point: stratified/measure-biased synopses have no such
  cheap path).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..core.exceptions import SynopsisError
from ..sampling.base import WeightedSample
from ..sampling.measure_biased import measure_biased_sample
from ..sampling.reservoir import ReservoirSampler
from ..sampling.row import srs_sample
from ..sampling.stratified import stratified_sample
from ..storage.cost import scan_cost
from .catalog import SampleEntry, SynopsisCatalog

POLICIES = ("eager", "threshold", "never", "reservoir")


@dataclass
class MaintenanceLog:
    """What maintenance happened and what it cost."""

    rebuilds: int = 0
    incremental_updates: int = 0
    rows_rescanned: int = 0
    cost: float = 0.0
    #: staleness of each entry at every batch boundary (for plots)
    staleness_series: List[float] = field(default_factory=list)


class MaintenanceSimulator:
    """Applies inserts and maintains catalog samples under a policy."""

    def __init__(
        self,
        database,
        policy: str = "threshold",
        seed: Optional[int] = None,
    ) -> None:
        if policy not in POLICIES:
            raise SynopsisError(f"unknown maintenance policy {policy!r}")
        self.database = database
        self.policy = policy
        self.catalog = SynopsisCatalog.for_database(database)
        self.rng = np.random.default_rng(seed)
        self.log = MaintenanceLog()
        #: reservoir state per uniform entry (policy == "reservoir")
        self._reservoirs: Dict[int, ReservoirSampler] = {}

    # ------------------------------------------------------------------
    def apply_batch(self, table: str, rows: Mapping[str, Iterable]) -> None:
        """Insert a batch, then run the maintenance policy."""
        self.database.append_rows(table, rows)
        self._maintain(table, rows)
        worst = max(
            (e.staleness(self.database) for e in self.catalog.samples if e.table == table),
            default=0.0,
        )
        self.log.staleness_series.append(worst)

    # ------------------------------------------------------------------
    def _maintain(self, table: str, new_rows: Mapping[str, Iterable]) -> None:
        for entry in self.catalog.samples:
            if entry.table != table:
                continue
            if self.policy == "never":
                continue
            if self.policy == "eager":
                self._rebuild(entry)
                continue
            if self.policy == "threshold":
                if entry.staleness(self.database) > self.catalog.staleness_threshold:
                    self._rebuild(entry)
                continue
            # reservoir policy
            if entry.kind == "uniform":
                self._reservoir_update(entry, new_rows)
            else:
                # No incremental path for stratified/biased samples.
                if entry.staleness(self.database) > self.catalog.staleness_threshold:
                    self._rebuild(entry)

    def _rebuild(self, entry: SampleEntry) -> None:
        """Full rebuild: one scan of the base table + redraw."""
        base = self.database.table(entry.table)
        if entry.kind == "uniform":
            entry.sample = srs_sample(base, entry.sample.num_rows, rng=self.rng)
        elif entry.kind == "stratified":
            entry.sample = stratified_sample(
                base,
                entry.strata_column
                if isinstance(entry.strata_column, str)
                else list(entry.strata_column),
                total_size=entry.sample.num_rows,
                policy="congress",
                rng=self.rng,
            )
        elif entry.kind == "measure_biased" and entry.measure_column:
            entry.sample = measure_biased_sample(
                base,
                entry.measure_column,
                entry.sample.num_rows,
                rng=self.rng,
            )
        else:
            raise SynopsisError(f"cannot rebuild synopsis kind {entry.kind!r}")
        entry.built_at_rows = base.num_rows
        entry.version += 1
        self.log.rebuilds += 1
        self.log.rows_rescanned += base.num_rows
        self.log.cost += scan_cost(base.num_blocks, base.num_rows).total

    def _reservoir_update(self, entry: SampleEntry, new_rows: Mapping[str, Iterable]) -> None:
        """Fold inserted row *indices* into a reservoir, then refresh the
        sample table from the union of old and new rows.

        Cost charged: only the size of the insert batch (no rescan).
        """
        key = id(entry)
        base = self.database.table(entry.table)
        batch_len = len(next(iter(new_rows.values())))
        if key not in self._reservoirs:
            reservoir = ReservoirSampler(entry.sample.num_rows, seed=int(self.rng.integers(2**31)))
            # Seed with the rows the current sample represents.
            reservoir.offer_many(range(entry.built_at_rows))
            self._reservoirs[key] = reservoir
        reservoir = self._reservoirs[key]
        start = base.num_rows - batch_len
        reservoir.offer_many(range(start, base.num_rows))
        indices = np.asarray(sorted(int(i) for i in reservoir.sample()), dtype=np.int64)
        sampled = base.take(indices)
        weight = base.num_rows / max(len(indices), 1)
        entry.sample = WeightedSample(
            table=sampled,
            weights=np.full(len(indices), weight),
            method="srs_rows",
            population_rows=base.num_rows,
            params={"size": len(indices)},
        )
        entry.built_at_rows = base.num_rows
        entry.version += 1
        self.log.incremental_updates += 1
        self.log.cost += batch_len * 0.01  # touch only the new rows


def cumulative_overhead(
    log: MaintenanceLog, queries_served: int, per_query_savings: float
) -> float:
    """Net benefit ratio: (query savings − maintenance cost) / savings.

    Falls below 0 when maintenance costs more than approximation saved —
    the break-even the survey warns about.
    """
    savings = queries_served * per_query_savings
    if savings <= 0:
        return -math.inf if log.cost > 0 else 0.0
    return (savings - log.cost) / savings
