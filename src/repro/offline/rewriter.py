"""Query rewriting onto precomputed samples (the AQUA/VerdictDB move).

Given a bound aggregate query, the rewriter asks the catalog for a sample
that covers it, evaluates the query's filters/keys directly on the sample
rows (their HT weights make every linear aggregate unbiased), and checks
*before answering* whether the resulting CIs meet the error spec — if
they cannot, it refuses and the advisor moves on. That refusal is the
honest version of offline AQP's a-priori guarantee: the guarantee only
exists when the precomputed sample happens to be big and relevant enough.

Coverage rules (deliberately conservative, as in the real systems):

* single-table queries: a fresh sample of that table, stratified on the
  group-by column when the query groups;
* FK-join queries: a join synopsis of the largest (fact) table covering
  every joined dimension.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errorspec import ErrorSpec
from ..core.exceptions import InfeasiblePlanError, UnsupportedQueryError
from ..core.result import ApproximateResult
from ..engine import expressions as E
from ..engine.executor import ExecutionStats
from ..engine.table import Table
from ..online.estimation import (
    estimate_groups_row_level,
    project_output_with_intervals,
)
from ..sql.binder import BoundQuery
from ..storage import blocks as blockio
from ..storage.cost import aggregation_cost, scan_cost
from .catalog import SynopsisCatalog


class OfflineRewriter:
    """Answers queries from catalog samples when coverage allows."""

    def __init__(self, database) -> None:
        self.database = database
        self.catalog = SynopsisCatalog.for_database(database)

    # ------------------------------------------------------------------
    def run(
        self, bound: BoundQuery, spec: ErrorSpec, seed: Optional[int] = None
    ) -> ApproximateResult:
        self._check_supported(bound)
        sample_table, weights, provenance = self._find_covering_sample(bound)
        estimates = estimate_groups_row_level(bound, sample_table, weights)
        if not estimates:
            raise InfeasiblePlanError("the precomputed sample has no matching rows")
        out_table, ci_low, ci_high = project_output_with_intervals(
            bound, spec, estimates
        )
        self._check_spec_met(bound, spec, out_table, ci_low, ci_high)
        stats = ExecutionStats()
        stats.rows_scanned = sample_table.num_rows
        stats.agg_input_rows = sample_table.num_rows
        approx_cost = aggregation_cost(sample_table.num_rows).total + scan_cost(
            max(sample_table.num_rows // 1024, 1), sample_table.num_rows
        ).total
        exact_cost = self._exact_cost(bound)
        return ApproximateResult(
            table=out_table,
            stats=stats,
            spec=spec,
            technique="offline_sample",
            ci_low=ci_low,
            ci_high=ci_high,
            fraction_scanned=0.0,  # no base-table blocks touched
            approx_cost=approx_cost,
            exact_cost=exact_cost,
            diagnostics=provenance,
        )

    # ------------------------------------------------------------------
    def _check_supported(self, bound: BoundQuery) -> None:
        if not bound.is_aggregate:
            raise UnsupportedQueryError("offline samples answer aggregates only")
        for agg in bound.aggregates:
            if not agg.is_linear:
                raise UnsupportedQueryError(
                    f"offline samples cannot answer {agg.func.upper()}"
                )

    def _find_covering_sample(
        self, bound: BoundQuery
    ) -> Tuple[Table, np.ndarray, Dict[str, object]]:
        """Locate a covering synopsis and present it under the query's
        qualified column names."""
        if len(bound.tables) == 1:
            target = bound.tables[0]
            group_cols = self._group_columns(bound, target.alias)
            entry = self.catalog.find_sample(
                target.name, group_columns=group_cols or ()
            )
            if entry is None:
                raise InfeasiblePlanError(
                    f"no fresh covering sample for table {target.name!r}"
                )
            qualified = entry.sample.table.rename(
                {c: f"{target.alias}.{c}" for c in entry.sample.table.column_names}
            )
            filtered, weights = self._apply_where(bound, qualified, entry.sample.weights)
            return filtered, weights, {
                "synopsis": entry.kind,
                "table": entry.table,
                "strata_column": entry.strata_column,
                "sample_rows": entry.storage_rows,
                "version": entry.version,
            }
        # Multi-table: try a join synopsis rooted at the largest table.
        fact = max(bound.tables, key=lambda t: t.num_rows)
        dims = [t.name for t in bound.tables if t.name != fact.name]
        synopsis = self.catalog.find_join_synopsis(fact.name, dims)
        if synopsis is None:
            raise InfeasiblePlanError(
                f"no join synopsis covers fact {fact.name!r} with dimensions {dims}"
            )
        if (
            abs(
                self.database.table(fact.name).num_rows - synopsis.built_at_rows
            )
            / max(synopsis.built_at_rows, 1)
            > self.catalog.staleness_threshold
        ):
            raise InfeasiblePlanError("join synopsis is stale")
        qualified = self._qualify_join_synopsis(bound, synopsis, fact.alias)
        filtered, weights = self._apply_where(
            bound, qualified, synopsis.sample.weights
        )
        return filtered, weights, {
            "synopsis": "join_synopsis",
            "fact_table": fact.name,
            "dimensions": dims,
            "sample_rows": synopsis.sample.num_rows,
        }

    def _qualify_join_synopsis(
        self, bound: BoundQuery, synopsis, fact_alias: str
    ) -> Table:
        """Rename synopsis columns to the query's qualified names.

        The synopsis stores fact columns bare and dimension columns as
        ``<dimension>.<col>``; the query wants ``<alias>.<col>`` per the
        FROM-clause aliases.
        """
        alias_of = {t.name: t.alias for t in bound.tables}
        mapping: Dict[str, str] = {}
        for col in synopsis.sample.table.column_names:
            if "." in col:
                dim, raw = col.split(".", 1)
                mapping[col] = f"{alias_of.get(dim, dim)}.{raw}"
            else:
                mapping[col] = f"{fact_alias}.{col}"
        return synopsis.sample.table.rename(mapping)

    def _group_columns(self, bound: BoundQuery, alias: str) -> Optional[List[str]]:
        if not bound.group_keys:
            return None
        prefix = f"{alias}."
        out = []
        for expr, _ in bound.group_keys:
            if not isinstance(expr, E.Column) or not expr.name.startswith(prefix):
                raise InfeasiblePlanError(
                    "offline samples only cover group-bys on base columns"
                )
            out.append(expr.name[len(prefix):])
        return out

    def _apply_where(
        self, bound: BoundQuery, table: Table, weights: np.ndarray
    ) -> Tuple[Table, np.ndarray]:
        if bound.where is None:
            return table, np.asarray(weights, dtype=np.float64)
        missing = [c for c in bound.where.columns() if c not in table]
        if missing:
            raise InfeasiblePlanError(
                f"sample does not carry predicate columns {missing}"
            )
        mask = np.asarray(bound.where.evaluate(table), dtype=bool)
        return table.take(mask), np.asarray(weights, dtype=np.float64)[mask]

    def _check_spec_met(
        self,
        bound: BoundQuery,
        spec: ErrorSpec,
        table: Table,
        ci_low: Dict[str, np.ndarray],
        ci_high: Dict[str, np.ndarray],
    ) -> None:
        """A-priori gate: refuse if any CI is wider than the spec allows."""
        for alias, lows in ci_low.items():
            highs = ci_high[alias]
            values = np.asarray(table[alias], dtype=np.float64)
            with np.errstate(divide="ignore", invalid="ignore"):
                half = (highs - lows) / 2.0
                rel = np.where(values != 0, half / np.abs(values), math.inf)
            if np.any(~np.isfinite(rel)) or np.any(rel > spec.relative_error):
                raise InfeasiblePlanError(
                    f"precomputed sample is too small for ±"
                    f"{spec.relative_error:.1%} on {alias!r}"
                )

    def _exact_cost(self, bound: BoundQuery) -> float:
        total = 0.0
        for t in bound.tables:
            table = self.database.table(t.name)
            total += scan_cost(table.num_blocks, table.num_rows).total
        biggest = max(
            (self.database.table(t.name).num_rows for t in bound.tables),
            default=0,
        )
        total += aggregation_cost(biggest).total
        return total
