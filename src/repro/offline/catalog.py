"""The synopsis catalog.

Offline AQP lives or dies by bookkeeping: which samples/sketches exist,
what they cover, how stale they are, and how much storage they consume.
The catalog is deliberately explicit about those four things because the
survey's main criticism of offline methods — maintenance burden and
workload sensitivity — is only visible when they are tracked.

A catalog attaches to a :class:`~repro.engine.database.Database`; the
offline rewriter and the advisor look synopses up through it.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.exceptions import SynopsisError
from ..sampling.base import WeightedSample
from ..sampling.join_synopsis import JoinSynopsis
from ..storage.synopsis_cache import SynopsisCache, get_global_cache


@dataclass
class SampleEntry:
    """One precomputed sample and its provenance."""

    table: str
    sample: WeightedSample
    kind: str  # "uniform" | "stratified" | "measure_biased"
    strata_column: Optional[str] = None
    measure_column: Optional[str] = None
    built_at_rows: int = 0
    #: monotonically increasing refresh counter (for maintenance stats)
    version: int = 0
    #: shard id for per-shard synopses of a sharded table; ``None`` means
    #: the entry covers the whole table. Shard entries only answer
    #: shard-aware lookups (and vice versa) — see :meth:`find_sample`.
    shard: Optional[int] = None
    #: who materialized this entry: ``"manual"`` (hand-registered, the
    #: historical default) or ``"tuner"`` (the workload-adaptive tuner —
    #: only tuner-sourced entries are eligible for tuner eviction).
    source: str = "manual"

    @property
    def storage_rows(self) -> int:
        return self.sample.num_rows

    def staleness(self, database) -> float:
        """Relative growth of the base table since this entry was built."""
        current = database.table(self.table).num_rows
        if self.built_at_rows == 0:
            return float("inf") if current else 0.0
        return abs(current - self.built_at_rows) / self.built_at_rows


@dataclass
class SketchEntry:
    """One precomputed sketch over (table, column)."""

    table: str
    column: str
    kind: str  # "hll", "countmin", "kmv", "quantile", ...
    sketch: object
    built_at_rows: int = 0
    #: shard id for per-shard sketches; ``None`` covers the whole table
    shard: Optional[int] = None

    def staleness(self, database) -> float:
        current = database.table(self.table).num_rows
        if self.built_at_rows == 0:
            return float("inf") if current else 0.0
        return abs(current - self.built_at_rows) / self.built_at_rows


class SynopsisCatalog:
    """Registry of all precomputed synopses for one database."""

    _ATTR = "_repro_synopsis_catalog"

    def __init__(
        self,
        database,
        staleness_threshold: float = 0.1,
        cache: Optional[SynopsisCache] = None,
    ) -> None:
        self.database = database
        self.staleness_threshold = staleness_threshold
        self.samples: List[SampleEntry] = []
        self.sketches: Dict[Tuple[str, str, str], SketchEntry] = {}
        self.join_synopses: List[JoinSynopsis] = []
        #: content-addressed store shared across catalog rebuilds
        self.cache = get_global_cache() if cache is None else cache
        #: >0 inside :meth:`allow_stale` — freshness gates are suspended
        self._stale_depth = 0
        #: per-sketch circuit breakers guarding repeated build failures
        self._sketch_breakers: Dict[Tuple[str, str, str], object] = {}
        setattr(database, self._ATTR, self)

    # ------------------------------------------------------------------
    @classmethod
    def for_database(cls, database) -> "SynopsisCatalog":
        """The database's catalog, creating an empty one if needed."""
        existing = getattr(database, cls._ATTR, None)
        if existing is not None:
            return existing
        return cls(database)

    # ------------------------------------------------------------------
    # Freshness policy
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def allow_stale(self) -> Iterator["SynopsisCatalog"]:
        """Suspend the freshness gate for the enclosed lookups.

        The degradation ladder's stale-synopsis rung deliberately serves
        from entries that failed :attr:`staleness_threshold` — it widens
        their error bars afterwards — so it needs lookups that see those
        entries without loosening the gate for everyone else. Nests
        safely; the gate is restored on exit even if the body raises.
        """
        self._stale_depth += 1
        try:
            yield self
        finally:
            self._stale_depth -= 1

    @property
    def stale_allowed(self) -> bool:
        return self._stale_depth > 0

    # ------------------------------------------------------------------
    # Samples
    # ------------------------------------------------------------------
    def add_sample(self, entry: SampleEntry) -> None:
        if entry.sample.num_rows == 0:
            raise SynopsisError("refusing to register an empty sample")
        self.samples.append(entry)

    def find_sample(
        self,
        table: str,
        group_columns: Sequence[str] = (),
        require_fresh: bool = True,
        shard: Optional[int] = None,
    ) -> Optional[SampleEntry]:
        """Best sample for ``table`` grouped by ``group_columns``.

        Preference: a stratified sample whose strata column is one of the
        group columns (group coverage!), then any uniform sample. Stale
        entries are skipped when ``require_fresh``. ``shard`` selects a
        per-shard entry; whole-table lookups (``shard=None``) never see
        shard entries — a shard's sample describes a fraction of the
        table and would silently bias a whole-table estimate.
        """
        fresh = [
            e
            for e in self.samples
            if e.table == table
            and e.shard == shard
            and (
                not require_fresh
                or self.stale_allowed
                or e.staleness(self.database) <= self.staleness_threshold
            )
        ]
        if group_columns:
            wanted = set(group_columns)
            for entry in fresh:
                if entry.kind != "stratified" or entry.strata_column is None:
                    continue
                have = (
                    {entry.strata_column}
                    if isinstance(entry.strata_column, str)
                    else set(entry.strata_column)
                )
                # A sample stratified on φ keeps rows for every value
                # combination of φ, hence covers any group-by over a
                # subset of φ (BlinkDB's coverage rule).
                if wanted <= have:
                    return entry
            # A uniform sample cannot protect groups; only use it when the
            # query does not group.
            return None
        for entry in fresh:
            if entry.kind == "uniform":
                return entry
        for entry in fresh:
            if entry.kind == "stratified":
                return entry  # stratified is still a valid weighted sample
        return None

    # ------------------------------------------------------------------
    # Sketches
    # ------------------------------------------------------------------
    def add_sketch(self, entry: SketchEntry) -> None:
        self.sketches[(entry.table, entry.column, entry.kind)] = entry

    def find_sketch(
        self, table: str, column: str, kind: str, require_fresh: bool = True
    ) -> Optional[SketchEntry]:
        entry = self.sketches.get((table, column, kind))
        if entry is None:
            return None
        if (
            require_fresh
            and not self.stale_allowed
            and entry.staleness(self.database) > self.staleness_threshold
        ):
            return None
        return entry

    def ensure_sketch(
        self,
        table: str,
        column: str,
        kind: str,
        builder: Callable[..., object],
        params: Optional[Dict[str, object]] = None,
        retry=None,
    ) -> SketchEntry:
        """A fresh sketch entry, built through the synopsis cache.

        ``builder(table_obj, column)`` runs only when neither this
        catalog nor the cache holds the synopsis — so a rebuilt catalog
        (a benchmark rerun, a fresh session over the same data) reuses
        the sketch bytes instead of re-ingesting the column.

        Builds run behind a per-sketch circuit breaker: after repeated
        build failures the breaker opens and further calls fail fast
        with :class:`~repro.core.exceptions.SynopsisUnavailable` until
        its cooldown half-opens it — a flapping builder cannot stall
        every query that wants the sketch. Pass a
        :class:`~repro.resilience.retry.RetryPolicy` as ``retry`` to
        also retry transient build failures with backoff; the default is
        a single attempt.
        """
        existing = self.find_sketch(table, column, kind)
        if existing is not None:
            return existing
        from ..resilience.faults import maybe_fault
        from ..resilience.retry import CircuitBreaker, RetryPolicy

        skey = (table, column, kind)
        breaker = self._sketch_breakers.get(skey)
        if breaker is None:
            breaker = CircuitBreaker(failure_threshold=3, cooldown=2)
            self._sketch_breakers[skey] = breaker
        table_obj = self.database.table(table)

        def _build() -> object:
            maybe_fault("catalog.sketch_build")
            return self.cache.get_or_build(
                table_obj,
                kind=f"sketch:{kind}",
                columns=(column,),
                params=params,
                builder=lambda: builder(table_obj, column),
            )

        policy = retry if retry is not None else RetryPolicy(
            max_attempts=1, jitter=0.0, seed=0
        )
        sketch = policy.call(
            _build, site=f"sketch:{table}.{column}:{kind}", breaker=breaker
        )
        entry = SketchEntry(
            table=table,
            column=column,
            kind=kind,
            sketch=sketch,
            built_at_rows=table_obj.num_rows,
        )
        self.add_sketch(entry)
        return entry

    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss/eviction counters of the backing synopsis cache."""
        return self.cache.stats.as_dict()

    # ------------------------------------------------------------------
    # Join synopses
    # ------------------------------------------------------------------
    def add_join_synopsis(self, synopsis: JoinSynopsis) -> None:
        self.join_synopses.append(synopsis)

    def find_join_synopsis(
        self, fact_table: str, dimensions: Sequence[str]
    ) -> Optional[JoinSynopsis]:
        """A synopsis of ``fact_table`` covering at least ``dimensions``."""
        wanted = set(dimensions)
        for syn in self.join_synopses:
            have = {edge.dimension for edge in syn.edges}
            if syn.fact_table == fact_table and wanted <= have:
                return syn
        return None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def storage_rows(self) -> int:
        """Total rows held by all synopses (the storage budget consumed)."""
        total = sum(e.storage_rows for e in self.samples)
        total += sum(s.sample.num_rows for s in self.join_synopses)
        return total

    def stale_entries(self) -> List[SampleEntry]:
        return [
            e
            for e in self.samples
            if e.staleness(self.database) > self.staleness_threshold
        ]
