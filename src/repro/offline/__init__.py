"""Offline (precomputed-synopsis) AQP."""

from .blinkdb import BlinkDBSelector, QueryTemplate, workload_coverage
from .catalog import SampleEntry, SketchEntry, SynopsisCatalog
from .maintenance import MaintenanceLog, MaintenanceSimulator, cumulative_overhead
from .rewriter import OfflineRewriter
from .sample_seek import (
    SampleSeekSynopsis,
    answer_group_by_sum,
    build_sample_seek,
    build_seek_index,
    distribution_precision,
)

__all__ = [
    "BlinkDBSelector",
    "MaintenanceLog",
    "MaintenanceSimulator",
    "OfflineRewriter",
    "QueryTemplate",
    "SampleEntry",
    "SampleSeekSynopsis",
    "SketchEntry",
    "SynopsisCatalog",
    "answer_group_by_sum",
    "build_sample_seek",
    "build_seek_index",
    "cumulative_overhead",
    "distribution_precision",
    "workload_coverage",
]
