"""Workload observation: per-query fingerprints and the bounded log.

A :class:`QueryFingerprint` is the tuner's unit of evidence — what one
served query *asked of the data* (table, predicate columns, group-by
columns, aggregate family) and how well the system answered (achieved
vs. requested relative error, serving technique). Fingerprints carry no
values and no SQL text, only column names, so logging them is cheap and
the log can be serialized for replay.

The hook is process-global and opt-in: :func:`install_workload_log`
arms it, after which every ``sql()`` front door calls
:func:`observe_query` on the query it just served. With no log
installed the hook is a no-op costing one attribute read; it never
raises into the serving path.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "QueryFingerprint",
    "WorkloadLog",
    "fingerprint_query",
    "install_workload_log",
    "get_workload_log",
    "observe_query",
]


@dataclass(frozen=True)
class QueryFingerprint:
    """What one served query asked of the data, and how it went."""

    table: str
    predicate_columns: Tuple[str, ...] = ()
    group_columns: Tuple[str, ...] = ()
    agg_family: str = "none"  # "sum" | "count" | "avg" | ... | "mixed"
    measure_columns: Tuple[str, ...] = ()
    technique: str = "exact"
    tenant: str = "default"
    requested_error: Optional[float] = None
    achieved_error: Optional[float] = None
    #: did the answer honor the requested contract? ``None`` = no contract
    spec_met: Optional[bool] = None

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "table": self.table,
            "predicate_columns": list(self.predicate_columns),
            "group_columns": list(self.group_columns),
            "agg_family": self.agg_family,
            "measure_columns": list(self.measure_columns),
            "technique": self.technique,
            "tenant": self.tenant,
            "requested_error": self.requested_error,
            "achieved_error": self.achieved_error,
            "spec_met": self.spec_met,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QueryFingerprint":
        return cls(
            table=str(data["table"]),
            predicate_columns=tuple(data.get("predicate_columns", ())),
            group_columns=tuple(data.get("group_columns", ())),
            agg_family=str(data.get("agg_family", "none")),
            measure_columns=tuple(data.get("measure_columns", ())),
            technique=str(data.get("technique", "exact")),
            tenant=str(data.get("tenant", "default")),
            requested_error=data.get("requested_error"),
            achieved_error=data.get("achieved_error"),
            spec_met=data.get("spec_met"),
        )


def _bare(columns: Iterable[str]) -> List[str]:
    """Strip table qualifiers: ``events.v`` -> ``v``.

    Fingerprints store bare column names so the advisor can hand them
    straight to the samplers, which address physical table columns.
    """
    return [c.rsplit(".", 1)[-1] for c in columns]


def fingerprint_query(bound, options, result) -> Optional[QueryFingerprint]:
    """Distill one served query into a fingerprint.

    ``bound`` is the :class:`~repro.sql.binder.BoundQuery`, ``options``
    the resolved :class:`~repro.core.options.QueryOptions` (with the SQL
    error clause already folded into ``options.spec``), ``result`` the
    answer. Returns ``None`` for shapes the tuner cannot act on (no
    table).
    """
    if not bound.tables:
        return None
    table = bound.tables[0].name
    predicate: Tuple[str, ...] = ()
    if bound.where is not None:
        predicate = tuple(sorted(_bare(bound.where.columns())))
    group_cols: set = set()
    for expr, _alias in bound.group_keys:
        group_cols.update(_bare(expr.columns()))
    funcs = sorted({agg.func for agg in bound.aggregates})
    if not funcs:
        family = "none"
    elif len(funcs) == 1:
        family = funcs[0]
    else:
        family = "mixed"
    measures: set = set()
    for agg in bound.aggregates:
        if agg.argument is not None:
            measures.update(_bare(agg.argument.columns()))
    spec = options.spec
    requested = spec.relative_error if spec is not None else None
    achieved: Optional[float] = None
    spec_met: Optional[bool] = None
    if getattr(result, "is_approximate", False):
        try:
            achieved = float(result.max_relative_half_width())
        except Exception:
            achieved = None
        if requested is not None and achieved is not None:
            spec_met = achieved <= requested
    elif requested is not None:
        # Exact answer to a spec'd query trivially meets the contract —
        # unless the ladder degraded to get there (contract dropped).
        spec_met = not getattr(result, "is_degraded", False)
    return QueryFingerprint(
        table=table,
        predicate_columns=predicate,
        group_columns=tuple(sorted(group_cols)),
        agg_family=family,
        measure_columns=tuple(sorted(measures)),
        technique=str(getattr(result, "technique", "exact")),
        tenant=options.tenant,
        requested_error=requested,
        achieved_error=achieved,
        spec_met=spec_met,
    )


class WorkloadLog:
    """Bounded, thread-safe ring of recent query fingerprints.

    ``capacity`` bounds memory; old fingerprints fall off the back, which
    is also the drift policy's forgetting mechanism — demand that stopped
    arriving stops being demand.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: Deque[QueryFingerprint] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: total ever recorded (survives ring eviction)
        self.total_recorded = 0

    # ------------------------------------------------------------------
    def record(self, fingerprint: QueryFingerprint) -> None:
        with self._lock:
            self._entries.append(fingerprint)
            self.total_recorded += 1

    def extend(self, fingerprints: Iterable[QueryFingerprint]) -> None:
        for fp in fingerprints:
            self.record(fp)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self, last: Optional[int] = None) -> List[QueryFingerprint]:
        """A snapshot of the newest ``last`` fingerprints (all if None)."""
        with self._lock:
            items = list(self._entries)
        if last is not None:
            items = items[-last:]
        return items

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Demand views (what the advisor consumes)
    # ------------------------------------------------------------------
    def tables(self) -> List[str]:
        counts = Counter(fp.table for fp in self.entries())
        return [t for t, _ in counts.most_common()]

    def group_demand(self, table: str) -> "Counter[Tuple[str, ...]]":
        """How often each group-column set was asked of ``table``."""
        return Counter(
            fp.group_columns
            for fp in self.entries()
            if fp.table == table and fp.group_columns
        )

    def scalar_demand(self, table: str) -> int:
        """Ungrouped (scalar-aggregate) queries against ``table``."""
        return sum(
            1
            for fp in self.entries()
            if fp.table == table and not fp.group_columns and fp.agg_family != "none"
        )

    def measure_demand(self, table: str) -> "Counter[str]":
        """SUM/AVG mass per measure column (measure-biased candidates)."""
        counts: "Counter[str]" = Counter()
        for fp in self.entries():
            if fp.table != table or fp.agg_family not in ("sum", "avg"):
                continue
            counts.update(fp.measure_columns)
        return counts

    def error_miss_rate(self, table: Optional[str] = None) -> float:
        """Fraction of contract-carrying queries that missed their spec."""
        judged = [
            fp
            for fp in self.entries()
            if fp.spec_met is not None and (table is None or fp.table == table)
        ]
        if not judged:
            return 0.0
        return sum(1 for fp in judged if not fp.spec_met) / len(judged)

    def column_churn(self, window: int = 0) -> float:
        """Jaccard distance between old and recent group-column demand.

        Splits the log (or its newest ``window`` entries) in half and
        compares the *sets* of (table, group-columns) asked in each half:
        0.0 means the recent workload asks exactly what the old one did,
        1.0 means no overlap — the drift signal the daemon re-tunes on.
        """
        items = self.entries(last=window or None)
        if len(items) < 4:
            return 0.0
        mid = len(items) // 2
        old = {
            (fp.table, fp.group_columns) for fp in items[:mid] if fp.group_columns
        }
        new = {
            (fp.table, fp.group_columns) for fp in items[mid:] if fp.group_columns
        }
        if not old and not new:
            return 0.0
        union = old | new
        return 1.0 - len(old & new) / len(union)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        entries = self.entries()
        return {
            "size": len(entries),
            "capacity": self.capacity,
            "total_recorded": self.total_recorded,
            "tables": self.tables(),
            "error_miss_rate": round(self.error_miss_rate(), 4),
            "column_churn": round(self.column_churn(), 4),
        }

    def to_records(self) -> List[Dict[str, object]]:
        return [fp.to_dict() for fp in self.entries()]

    @classmethod
    def from_records(
        cls, records: Sequence[Dict[str, object]], capacity: int = 4096
    ) -> "WorkloadLog":
        log = cls(capacity=capacity)
        log.extend(QueryFingerprint.from_dict(r) for r in records)
        return log


# ----------------------------------------------------------------------
# Process-global observation hook
# ----------------------------------------------------------------------
_active_log: Optional[WorkloadLog] = None
_hook_lock = threading.Lock()


def install_workload_log(log: Optional[WorkloadLog]) -> Optional[WorkloadLog]:
    """Arm (or, with ``None``, disarm) the global observation hook.

    Returns the previously installed log so callers can restore it —
    tests wrap this in try/finally.
    """
    global _active_log
    with _hook_lock:
        previous = _active_log
        _active_log = log
    return previous


def get_workload_log() -> Optional[WorkloadLog]:
    return _active_log


def observe_query(bound, options, result) -> None:
    """Record one served query into the installed log, if any.

    Called by every ``sql()`` front door after a successful answer.
    Deliberately swallows all errors: observation must never break
    serving.
    """
    log = _active_log
    if log is None:
        return
    try:
        fingerprint = fingerprint_query(bound, options, result)
        if fingerprint is not None:
            log.record(fingerprint)
    except Exception:  # noqa: BLE001 — observation is best-effort
        pass
