"""Workload-adaptive synopsis tuning.

The survey's "no silver bullet" verdict cuts hardest at offline AQP:
precomputed samples and sketches only pay off when they match the
*observed* workload, and someone has to keep choosing them as the
workload drifts. Historically that someone was the operator — the
catalog in :mod:`repro.offline` was populated by hand and never learned
from the query log. This package closes the loop:

* :class:`~repro.tuner.workload.WorkloadLog` ingests one
  :class:`~repro.tuner.workload.QueryFingerprint` per served query
  (table, predicate columns, group-by columns, aggregate family,
  achieved vs. requested error) from every ``sql()`` front door — they
  all speak :class:`~repro.core.options.QueryOptions`, so fingerprints
  are uniform no matter which door the query walked through.
* :class:`~repro.tuner.advisor.SynopsisAdvisor` scores candidate
  synopses (uniform / stratified / measure-biased samples) against the
  logged demand under a storage budget, using the cost model in
  :mod:`repro.storage.cost` and the observed miss counters of the
  content-addressed :mod:`repro.storage.synopsis_cache`.
* :class:`~repro.tuner.daemon.TuningDaemon` materializes the winners
  into the :class:`~repro.offline.catalog.SynopsisCatalog`
  (deadline-scoped, circuit-breaker-wrapped builds, like every other
  synopsis build), evicts cold tuner-built entries, and re-tunes when
  the log shows drift — column-set churn or error-contract misses.
  Tuner-built entries that go stale before the next cycle feed the
  degradation ladder's existing ``stale_synopsis`` rung (served with
  honestly widened bounds) rather than vanishing.
* :mod:`~repro.tuner.replay` replays a seeded two-phase workload so
  tuning decisions are testable and ``python -m repro tune-replay``
  can demonstrate the adaptivity win end to end.

Everything is deterministic under a seed: same seed + same replayed log
⇒ identical catalog decisions.
"""

from .advisor import Candidate, SynopsisAdvisor, TuningPlan
from .daemon import TuningDaemon, TuningReport
from .replay import ReplayReport, run_tune_replay, two_phase_workload
from .workload import (
    QueryFingerprint,
    WorkloadLog,
    fingerprint_query,
    get_workload_log,
    install_workload_log,
    observe_query,
)

__all__ = [
    "Candidate",
    "QueryFingerprint",
    "ReplayReport",
    "SynopsisAdvisor",
    "TuningDaemon",
    "TuningPlan",
    "TuningReport",
    "WorkloadLog",
    "fingerprint_query",
    "get_workload_log",
    "install_workload_log",
    "observe_query",
    "run_tune_replay",
    "two_phase_workload",
]
