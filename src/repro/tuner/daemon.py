"""The tuning daemon: applies advisor plans to the catalog.

One :meth:`TuningDaemon.run_cycle` takes a snapshot of the workload log,
asks the :class:`~repro.tuner.advisor.SynopsisAdvisor` for a plan, and
applies it: winning candidates are materialized into the catalog
(through the content-addressed synopsis cache, deadline-scoped and
circuit-breaker-wrapped like every other synopsis build), cold
tuner-built entries are evicted, and the cycle is recorded as a span
(``tuner_cycle``) plus metrics (``tuner_builds``, ``tuner_evictions``,
``synopsis_hit_rate``).

Determinism: the RNG for every build is derived from
``splitmix64(seed, cycle, crc32(candidate.key))`` — no wall clock, no
global RNG — so the same seed over the same replayed log produces
identical catalog decisions *and* identical sample contents.

Entries the daemon built that go stale before the next cycle are not
special-cased away: they stay registered, which means the degradation
ladder's ``stale_synopsis`` rung can still serve from them with honestly
widened bounds until the daemon refreshes them (see
:mod:`repro.resilience.ladder`).
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.exceptions import ReproError
from ..obs.metrics import get_metrics
from ..obs.trace import span
from ..offline.catalog import SampleEntry, SynopsisCatalog
from ..resilience.deadline import Deadline, deadline_scope
from ..resilience.faults import maybe_fault, splitmix64
from ..resilience.retry import CircuitBreaker, RetryPolicy
from ..sampling.measure_biased import measure_biased_sample
from ..sampling.row import srs_sample
from ..sampling.stratified import stratified_sample
from .advisor import Candidate, SynopsisAdvisor, TuningPlan
from .workload import WorkloadLog

__all__ = ["TuningDaemon", "TuningReport"]


@dataclass
class TuningReport:
    """What one tuning cycle decided and did."""

    cycle: int
    triggered_by: str  # "interval" | "drift" | "manual"
    built: List[Dict[str, object]] = field(default_factory=list)
    evicted: List[Dict[str, object]] = field(default_factory=list)
    failed: List[Dict[str, object]] = field(default_factory=list)
    deferred: List[Dict[str, object]] = field(default_factory=list)
    column_churn: float = 0.0
    error_miss_rate: float = 0.0
    synopsis_hit_rate: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "cycle": self.cycle,
            "triggered_by": self.triggered_by,
            "built": self.built,
            "evicted": self.evicted,
            "failed": self.failed,
            "deferred": self.deferred,
            "column_churn": round(self.column_churn, 4),
            "error_miss_rate": round(self.error_miss_rate, 4),
            "synopsis_hit_rate": round(self.synopsis_hit_rate, 4),
        }

    def decisions(self) -> List[str]:
        """Stable decision signature (the determinism test's subject)."""
        return (
            [f"build:{b['key']}" for b in self.built]
            + [f"evict:{e['key']}" for e in self.evicted]
            + [f"fail:{f['key']}" for f in self.failed]
        )


class TuningDaemon:
    """Materializes advisor plans into the catalog, cycle by cycle.

    Parameters
    ----------
    database / log:
        What to tune and the evidence to tune from.
    storage_budget_rows / sample_fraction / min_demand:
        Forwarded to the :class:`SynopsisAdvisor`.
    seed:
        Root of every build RNG (see module docstring).
    build_deadline_s:
        Per-build cooperative deadline; a build that blows it fails that
        candidate (feeding its breaker) without poisoning the cycle.
    drift_churn_threshold / drift_miss_threshold:
        :meth:`should_retune` fires when group-column churn or the
        error-contract miss rate crosses these.
    interval_s:
        Cadence of the background thread (:meth:`start`); cycles also
        run early when drift is detected.
    """

    def __init__(
        self,
        database,
        log: WorkloadLog,
        storage_budget_rows: int = 50_000,
        sample_fraction: float = 0.1,
        min_demand: int = 2,
        seed: int = 0,
        build_deadline_s: Optional[float] = None,
        drift_churn_threshold: float = 0.5,
        drift_miss_threshold: float = 0.2,
        interval_s: float = 5.0,
    ) -> None:
        self.database = database
        self.log = log
        self.catalog = SynopsisCatalog.for_database(database)
        self.advisor = SynopsisAdvisor(
            database,
            log,
            storage_budget_rows=storage_budget_rows,
            sample_fraction=sample_fraction,
            min_demand=min_demand,
        )
        self.seed = seed
        self.build_deadline_s = build_deadline_s
        self.drift_churn_threshold = drift_churn_threshold
        self.drift_miss_threshold = drift_miss_threshold
        self.interval_s = interval_s
        self.cycle = 0
        self.reports: List[TuningReport] = []
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def breaker(self, key: str) -> CircuitBreaker:
        with self._lock:
            if key not in self._breakers:
                self._breakers[key] = CircuitBreaker(
                    failure_threshold=3, cooldown=2, name=f"tuner.{key}"
                )
            return self._breakers[key]

    # ------------------------------------------------------------------
    # Drift policy
    # ------------------------------------------------------------------
    def should_retune(self) -> bool:
        """Re-tune early when the workload stopped matching the catalog."""
        return (
            self.log.column_churn() > self.drift_churn_threshold
            or self.log.error_miss_rate() > self.drift_miss_threshold
        )

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def run_cycle(self, triggered_by: str = "manual") -> TuningReport:
        """Plan against the current log and apply builds/evictions."""
        metrics = get_metrics()
        with self._lock:
            cycle = self.cycle
            self.cycle += 1
        report = TuningReport(
            cycle=cycle,
            triggered_by=triggered_by,
            column_churn=self.log.column_churn(),
            error_miss_rate=self.log.error_miss_rate(),
        )
        with span(
            "tuner_cycle",
            cycle=cycle,
            triggered_by=triggered_by,
            log_size=len(self.log),
        ) as tsp:
            plan = self.advisor.plan()
            for entry in plan.evictions:
                self._evict(entry)
                report.evicted.append(
                    {
                        "key": f"{entry.table}:{entry.kind}",
                        "table": entry.table,
                        "kind": entry.kind,
                    }
                )
                metrics.inc("tuner_evictions", table=entry.table, kind=entry.kind)
            for candidate in plan.builds:
                try:
                    built = self._build(candidate, cycle)
                except ReproError as exc:
                    report.failed.append(
                        {"key": candidate.key, "error": str(exc)}
                    )
                    continue
                report.built.append(
                    {"key": candidate.key, **candidate.to_dict(),
                     "sample_rows": built.storage_rows}
                )
                metrics.inc(
                    "tuner_builds", table=candidate.table, kind=candidate.kind
                )
            report.deferred = [c.to_dict() for c in plan.deferred]
            hit_rate = float(self.catalog.cache_stats().get("hit_rate", 0.0))
            report.synopsis_hit_rate = hit_rate
            metrics.set_gauge("synopsis_hit_rate", hit_rate)
            tsp.set(
                builds=len(report.built),
                evictions=len(report.evicted),
                failures=len(report.failed),
            )
        self.reports.append(report)
        return report

    def maybe_tune(self) -> Optional[TuningReport]:
        """Run a cycle only when drift says the catalog went stale."""
        if not self.should_retune():
            return None
        return self.run_cycle(triggered_by="drift")

    # ------------------------------------------------------------------
    # Builds / evictions
    # ------------------------------------------------------------------
    def _build_seed(self, candidate: Candidate, cycle: int) -> int:
        return splitmix64(
            self.seed, cycle, zlib.crc32(candidate.key.encode())
        ) % (2**31)

    def _build(self, candidate: Candidate, cycle: int) -> SampleEntry:
        """Materialize one candidate behind its breaker + deadline."""
        table_obj = self.database.table(candidate.table)
        build_seed = self._build_seed(candidate, cycle)
        deadline = (
            Deadline(self.build_deadline_s)
            if self.build_deadline_s is not None
            else None
        )

        def _sample():
            rng = np.random.default_rng(build_seed)
            if candidate.kind == "uniform":
                return srs_sample(table_obj, candidate.rows, rng=rng)
            if candidate.kind == "stratified":
                return stratified_sample(
                    table_obj,
                    list(candidate.columns)
                    if len(candidate.columns) > 1
                    else candidate.columns[0],
                    total_size=candidate.rows,
                    policy="congress",
                    rng=rng,
                )
            return measure_biased_sample(
                table_obj, candidate.columns[0], candidate.rows, rng=rng
            )

        def _cached_build():
            # Arrive at the hazard point on every attempt (not just cache
            # misses) so fault schedules see deterministic arrivals.
            maybe_fault("tuner.build")
            return self.catalog.cache.get_or_build(
                table_obj,
                kind=f"tuned:{candidate.kind}",
                columns=candidate.columns,
                params={"rows": candidate.rows, "seed": build_seed},
                builder=_sample,
            )

        policy = RetryPolicy(max_attempts=1, jitter=0.0, seed=0)
        with deadline_scope(deadline, None):
            sample = policy.call(
                _cached_build,
                site=f"tuner:{candidate.key}",
                deadline=deadline,
                breaker=self.breaker(candidate.key),
            )
        return self._register(candidate, sample, table_obj.num_rows)

    def _register(
        self, candidate: Candidate, sample, built_at_rows: int
    ) -> SampleEntry:
        """Install (or refresh in place) the tuned entry."""
        strata = (
            (
                candidate.columns[0]
                if len(candidate.columns) == 1
                else tuple(candidate.columns)
            )
            if candidate.kind == "stratified"
            else None
        )
        measure = (
            candidate.columns[0] if candidate.kind == "measure_biased" else None
        )
        for entry in self.catalog.samples:
            if (
                entry.source == "tuner"
                and entry.table == candidate.table
                and entry.kind == candidate.kind
                and entry.strata_column == strata
                and entry.measure_column == measure
                and entry.shard is None
            ):
                entry.sample = sample
                entry.built_at_rows = built_at_rows
                entry.version += 1
                return entry
        entry = SampleEntry(
            table=candidate.table,
            sample=sample,
            kind=candidate.kind,
            strata_column=strata,
            measure_column=measure,
            built_at_rows=built_at_rows,
            source="tuner",
        )
        self.catalog.add_sample(entry)
        return entry

    def _evict(self, entry: SampleEntry) -> None:
        try:
            self.catalog.samples.remove(entry)
        except ValueError:
            pass  # already gone (concurrent cycle); eviction is idempotent

    # ------------------------------------------------------------------
    # Background operation
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run cycles on ``interval_s`` cadence (drift checks between)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-tuner", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _loop(self) -> None:
        # Check for drift at a finer grain than the full-cycle cadence so
        # a phase shift is answered within ~interval/5, not a full period.
        tick = max(self.interval_s / 5.0, 0.05)
        elapsed = 0.0
        while not self._stop.wait(timeout=tick):
            elapsed += tick
            if elapsed >= self.interval_s:
                self.run_cycle(triggered_by="interval")
                elapsed = 0.0
            elif self.should_retune():
                self.run_cycle(triggered_by="drift")
                elapsed = 0.0
