"""Candidate synopsis scoring under a storage budget.

The advisor turns logged demand into a build/evict plan. It is pure
decision logic — no sampling, no catalog mutation — so its output
(:class:`TuningPlan`) is deterministic given a log snapshot and a
catalog state, which is what makes tuning decisions replayable.

Scoring follows the BlinkDB/VerdictDB shape: a candidate synopsis is
worth (queries it would serve) × (work it saves each one), normalized by
the storage rows it occupies; candidates are admitted greedily under the
budget. The observed miss rate of the content-addressed synopsis cache
scales the urgency — a workload whose lookups keep missing is a workload
whose synopses are not the ones being asked for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..offline.catalog import SampleEntry, SynopsisCatalog
from ..storage.cost import scan_cost
from .workload import WorkloadLog

__all__ = ["Candidate", "TuningPlan", "SynopsisAdvisor"]


@dataclass(frozen=True)
class Candidate:
    """One buildable synopsis and why it is worth building."""

    table: str
    kind: str  # "uniform" | "stratified" | "measure_biased"
    columns: Tuple[str, ...] = ()  # strata columns / (measure column,)
    rows: int = 0  # proposed sample size (storage rows)
    demand: int = 0  # queries in the log this would serve
    score: float = 0.0  # benefit per storage row (higher = better)

    @property
    def key(self) -> str:
        """Stable identity used for seeds, breakers, and dedup."""
        return f"{self.table}:{self.kind}:{','.join(self.columns)}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "table": self.table,
            "kind": self.kind,
            "columns": list(self.columns),
            "rows": self.rows,
            "demand": self.demand,
            "score": round(self.score, 6),
        }


@dataclass
class TuningPlan:
    """What one tuning cycle should do to the catalog."""

    builds: List[Candidate] = field(default_factory=list)
    #: catalog indices are unstable; evictions carry the entry itself
    evictions: List[SampleEntry] = field(default_factory=list)
    #: candidates that scored but did not fit the budget
    deferred: List[Candidate] = field(default_factory=list)
    storage_budget_rows: int = 0
    storage_used_rows: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "builds": [c.to_dict() for c in self.builds],
            "evictions": [
                {
                    "table": e.table,
                    "kind": e.kind,
                    "strata_column": e.strata_column,
                    "measure_column": e.measure_column,
                }
                for e in self.evictions
            ],
            "deferred": [c.to_dict() for c in self.deferred],
            "storage_budget_rows": self.storage_budget_rows,
            "storage_used_rows": self.storage_used_rows,
        }


class SynopsisAdvisor:
    """Scores candidate synopses against a workload log.

    Parameters
    ----------
    database:
        The database whose tables the candidates sample.
    log:
        The :class:`WorkloadLog` supplying demand.
    storage_budget_rows:
        Total rows the catalog's *tuner-sourced* samples may occupy.
        Manual entries are the operator's business and never counted
        against (or evicted for) the tuner's budget.
    sample_fraction:
        Proposed sample size as a fraction of the base table.
    min_rows / min_demand:
        Floors below which a candidate is not worth the bookkeeping.
    """

    def __init__(
        self,
        database,
        log: WorkloadLog,
        storage_budget_rows: int = 50_000,
        sample_fraction: float = 0.1,
        min_rows: int = 256,
        min_demand: int = 2,
    ) -> None:
        self.database = database
        self.log = log
        self.storage_budget_rows = storage_budget_rows
        self.sample_fraction = sample_fraction
        self.min_rows = min_rows
        self.min_demand = min_demand
        self.catalog = SynopsisCatalog.for_database(database)

    # ------------------------------------------------------------------
    def _proposed_rows(self, table_name: str) -> int:
        table = self.database.table(table_name)
        return max(self.min_rows, int(table.num_rows * self.sample_fraction))

    def _benefit_per_query(self, table_name: str, rows: int) -> float:
        """Work saved by answering from ``rows`` instead of a full scan."""
        table = self.database.table(table_name)
        full = scan_cost(
            table.num_blocks, table.num_rows, self.database.cost_params
        ).total
        sample_blocks = max(1, rows // max(table.block_size, 1))
        approx = scan_cost(sample_blocks, rows, self.database.cost_params).total
        return max(full - approx, 0.0)

    # ------------------------------------------------------------------
    def candidates(self) -> List[Candidate]:
        """All scoring candidates, best first (ties broken by key)."""
        # A missing synopsis shows up as cache misses; the higher the
        # observed miss rate, the more urgent building becomes.
        stats = self.catalog.cache_stats()
        miss_rate = 1.0 - float(stats.get("hit_rate", 0.0))
        urgency = 1.0 + miss_rate
        out: List[Candidate] = []
        for table_name in self.log.tables():
            try:
                self.database.table(table_name)
            except Exception:
                continue  # logged against a table this database lacks
            rows = self._proposed_rows(table_name)
            benefit = self._benefit_per_query(table_name, rows)
            scalar = self.log.scalar_demand(table_name)
            if scalar >= self.min_demand:
                out.append(
                    Candidate(
                        table=table_name,
                        kind="uniform",
                        rows=rows,
                        demand=scalar,
                        score=urgency * scalar * benefit / max(rows, 1),
                    )
                )
            for group_cols, count in self.log.group_demand(table_name).items():
                if count < self.min_demand:
                    continue
                out.append(
                    Candidate(
                        table=table_name,
                        kind="stratified",
                        columns=group_cols,
                        rows=rows,
                        demand=count,
                        score=urgency * count * benefit / max(rows, 1),
                    )
                )
            for measure, count in self.log.measure_demand(table_name).items():
                # Only worth a dedicated biased sample when the measure
                # dominates scalar SUM/AVG traffic; grouped queries are
                # already covered by stratified candidates.
                if count < max(self.min_demand, 2 * scalar) or scalar == 0:
                    continue
                out.append(
                    Candidate(
                        table=table_name,
                        kind="measure_biased",
                        columns=(measure,),
                        rows=rows,
                        demand=count,
                        score=0.5 * urgency * count * benefit / max(rows, 1),
                    )
                )
        out.sort(key=lambda c: (-c.score, c.key))
        return out

    # ------------------------------------------------------------------
    def _covered(self, candidate: Candidate) -> bool:
        """Is a fresh catalog entry already serving this demand?"""
        for entry in self.catalog.samples:
            if entry.table != candidate.table or entry.shard is not None:
                continue
            if entry.staleness(self.database) > self.catalog.staleness_threshold:
                continue
            if candidate.kind == "uniform" and entry.kind == "uniform":
                return True
            if candidate.kind == "stratified" and entry.kind == "stratified":
                have = (
                    {entry.strata_column}
                    if isinstance(entry.strata_column, str)
                    else set(entry.strata_column or ())
                )
                if set(candidate.columns) <= have:
                    return True
            if (
                candidate.kind == "measure_biased"
                and entry.kind == "measure_biased"
                and entry.measure_column == candidate.columns[0]
            ):
                return True
        return False

    def _demand_keys(self) -> set:
        """Every (table, kind-ish) the current log still asks for."""
        wanted = set()
        for table_name in self.log.tables():
            if self.log.scalar_demand(table_name) > 0:
                wanted.add((table_name, "uniform", ()))
            for group_cols in self.log.group_demand(table_name):
                wanted.add((table_name, "stratified", group_cols))
            for measure in self.log.measure_demand(table_name):
                wanted.add((table_name, "measure_biased", (measure,)))
        return wanted

    def cold_entries(self) -> List[SampleEntry]:
        """Tuner-built entries the current log no longer asks for."""
        wanted = self._demand_keys()
        cold: List[SampleEntry] = []
        for entry in self.catalog.samples:
            if entry.source != "tuner":
                continue  # manual entries are never the tuner's to evict
            if entry.kind == "uniform":
                hot = (entry.table, "uniform", ()) in wanted
            elif entry.kind == "stratified":
                have = (
                    (entry.strata_column,)
                    if isinstance(entry.strata_column, str)
                    else tuple(entry.strata_column or ())
                )
                hot = any(
                    t == entry.table and k == "stratified" and set(g) <= set(have)
                    for t, k, g in wanted
                )
            else:
                hot = (
                    entry.table,
                    "measure_biased",
                    (entry.measure_column,),
                ) in wanted
            if not hot:
                cold.append(entry)
        return cold

    # ------------------------------------------------------------------
    def plan(self) -> TuningPlan:
        """Greedy build list under the storage budget, plus evictions.

        Evicting cold entries first frees their rows for this cycle's
        builds — the budget is a property of the *post-cycle* catalog.
        """
        evictions = self.cold_entries()
        evicted_ids = {id(e) for e in evictions}
        used = sum(
            e.storage_rows
            for e in self.catalog.samples
            if e.source == "tuner" and id(e) not in evicted_ids
        )
        plan = TuningPlan(
            evictions=evictions,
            storage_budget_rows=self.storage_budget_rows,
            storage_used_rows=used,
        )
        for candidate in self.candidates():
            if self._covered(candidate):
                continue
            if used + candidate.rows > self.storage_budget_rows:
                plan.deferred.append(candidate)
                continue
            plan.builds.append(candidate)
            used += candidate.rows
        plan.storage_used_rows = used
        return plan
