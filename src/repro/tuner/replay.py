"""Seeded workload replay: the tuner's test and demo harness.

The classic failure mode of offline AQP is a *phase shift*: a catalog
tuned for yesterday's group-by columns answers nothing about today's.
:func:`two_phase_workload` generates exactly that — a seeded stream of
scalar and grouped aggregate queries whose group-by column flips from
``seg_a`` to ``seg_b`` at the halfway mark — and :func:`run_tune_replay`
replays it twice over identical data:

* **static**: the hand-built catalog (one uniform sample, the
  historical default) serves what it can;
* **tuned**: a :class:`~repro.tuner.daemon.TuningDaemon` watches the
  workload log and re-tunes every ``tune_every`` queries.

The comparison metric is the **synopsis hit rate**: the fraction of
replayed queries answered from an offline synopsis (technique
``offline_sample``) rather than falling back to query-time sampling.
Everything is seeded — same seed ⇒ same workload, same sample draws,
same tuning decisions — so the ≥2x adaptivity win is a deterministic
test assertion, not a benchmark anecdote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.options import QueryOptions
from ..engine.database import Database
from ..offline.catalog import SampleEntry, SynopsisCatalog
from ..resilience.faults import splitmix64
from ..sampling.row import srs_sample
from .daemon import TuningDaemon
from .workload import WorkloadLog, install_workload_log

__all__ = [
    "ReplayReport",
    "make_replay_database",
    "two_phase_workload",
    "run_replay",
    "run_tune_replay",
]

#: spec attached to every replayed query — loose enough that a tuner-
#: sized stratified sample (~375 rows per stratum over 8 groups) answers
#: per-group SUMs of exponential data (~20% half-width), so the hit-rate
#: comparison measures *coverage*, not sample size. The static baseline
#: misses grouped queries structurally (a uniform sample never serves a
#: group-by), so the loose spec does not help it.
_ERROR_CLAUSE = "ERROR WITHIN 30% CONFIDENCE 95%"


def make_replay_database(seed: int = 0, rows: int = 20_000) -> Database:
    """An ``events`` table with two alternative segmentation columns."""
    rng = np.random.default_rng(seed)
    db = Database()
    db.create_table(
        "events",
        {
            "seg_a": rng.integers(0, 8, rows),
            "seg_b": rng.integers(0, 8, rows),
            "v": rng.exponential(10.0, rows),
            "price": rng.exponential(25.0, rows),
        },
    )
    return db


def two_phase_workload(
    seed: int = 0,
    queries_per_phase: int = 60,
    scalar_fraction: float = 0.4,
) -> List[str]:
    """Two phases of mixed scalar / grouped queries with a column shift.

    Phase 1 groups by ``seg_a``, phase 2 by ``seg_b``; a
    ``scalar_fraction`` share of each phase is ungrouped SUM/COUNT
    traffic (servable by a plain uniform sample — the part a static
    catalog gets right).
    """
    rng = np.random.default_rng(splitmix64(seed, 0x5EED))
    queries: List[str] = []
    for phase, seg in enumerate(("seg_a", "seg_b")):
        for _ in range(queries_per_phase):
            if rng.random() < scalar_fraction:
                agg = "SUM(v) AS s" if rng.random() < 0.5 else "COUNT(*) AS c"
                queries.append(f"SELECT {agg} FROM events {_ERROR_CLAUSE}")
            else:
                queries.append(
                    f"SELECT {seg}, SUM(v) AS s FROM events "
                    f"GROUP BY {seg} {_ERROR_CLAUSE}"
                )
    return queries


@dataclass
class ReplayReport:
    """Outcome of one replayed workload."""

    total: int = 0
    served: int = 0
    offline_hits: int = 0
    refused: int = 0
    techniques: Dict[str, int] = field(default_factory=dict)
    tuning: List[Dict[str, object]] = field(default_factory=list)
    #: flat decision log across all cycles (the determinism subject)
    decisions: List[str] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        """Fraction of served queries answered from an offline synopsis."""
        return self.offline_hits / self.served if self.served else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "served": self.served,
            "offline_hits": self.offline_hits,
            "refused": self.refused,
            "hit_rate": round(self.hit_rate, 4),
            "techniques": dict(sorted(self.techniques.items())),
            "tuning_cycles": len(self.tuning),
            "decisions": list(self.decisions),
        }


def run_replay(
    database: Database,
    queries: List[str],
    seed: int = 0,
    daemon: Optional[TuningDaemon] = None,
    tune_every: int = 20,
) -> ReplayReport:
    """Replay ``queries`` against ``database``, optionally tuning.

    With a ``daemon``, its workload log must already be installed as the
    global observation hook (see :func:`run_tune_replay`); every
    ``tune_every`` queries the daemon runs a cycle (drift-triggered when
    its thresholds say so, cadence otherwise) — the synchronous stand-in
    for the background thread, so replays are deterministic.
    """
    report = ReplayReport()
    for index, query in enumerate(queries):
        report.total += 1
        options = QueryOptions(seed=splitmix64(seed, 1 + index))
        try:
            result = database.sql(query, options=options)
        except Exception:
            report.refused += 1
            continue
        report.served += 1
        technique = str(getattr(result, "technique", "exact"))
        report.techniques[technique] = report.techniques.get(technique, 0) + 1
        if technique == "offline_sample":
            report.offline_hits += 1
        if daemon is not None and (index + 1) % tune_every == 0:
            cycle = (
                daemon.run_cycle(triggered_by="drift")
                if daemon.should_retune()
                else daemon.run_cycle(triggered_by="interval")
            )
            report.tuning.append(cycle.to_dict())
            report.decisions.extend(cycle.decisions())
    return report


def _install_static_catalog(
    database: Database, seed: int, sample_rows: int = 2_000
) -> SynopsisCatalog:
    """The hand-built baseline: one uniform sample over ``events``."""
    catalog = SynopsisCatalog.for_database(database)
    table = database.table("events")
    rng = np.random.default_rng(splitmix64(seed, 0xCA7A106))
    catalog.add_sample(
        SampleEntry(
            table="events",
            sample=srs_sample(table, sample_rows, rng=rng),
            kind="uniform",
            built_at_rows=table.num_rows,
            source="manual",
        )
    )
    return catalog


def run_tune_replay(
    seed: int = 0,
    rows: int = 20_000,
    queries_per_phase: int = 60,
    tune_every: int = 15,
    storage_budget_rows: int = 10_000,
) -> Dict[str, object]:
    """Static-vs-tuned comparison on the two-phase workload.

    Returns both replay reports plus the headline ``improvement`` factor
    (tuned hit rate / static hit rate). Restores the global workload-log
    hook on exit.
    """
    queries = two_phase_workload(seed, queries_per_phase=queries_per_phase)

    static_db = make_replay_database(seed, rows=rows)
    _install_static_catalog(static_db, seed)
    static = run_replay(static_db, queries, seed=seed)

    tuned_db = make_replay_database(seed, rows=rows)
    _install_static_catalog(tuned_db, seed)
    log = WorkloadLog(capacity=4 * queries_per_phase)
    daemon = TuningDaemon(
        tuned_db,
        log,
        storage_budget_rows=storage_budget_rows,
        sample_fraction=0.15,
        seed=seed,
        min_demand=2,
    )
    previous = install_workload_log(log)
    try:
        tuned = run_replay(
            tuned_db, queries, seed=seed, daemon=daemon, tune_every=tune_every
        )
    finally:
        install_workload_log(previous)

    static_rate = static.hit_rate
    tuned_rate = tuned.hit_rate
    improvement = tuned_rate / static_rate if static_rate else float("inf")
    return {
        "seed": seed,
        "queries": len(queries),
        "static": static.to_dict(),
        "tuned": tuned.to_dict(),
        "static_hit_rate": round(static_rate, 4),
        "tuned_hit_rate": round(tuned_rate, 4),
        "improvement": round(improvement, 4),
    }
