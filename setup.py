"""Setuptools entry point.

Kept alongside pyproject.toml so ``pip install -e .`` works in offline
environments without the ``wheel`` package (pip falls back to the legacy
``setup.py develop`` path when PEP 660 editable builds are unavailable).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "An approximate query processing (AQP) toolkit reproducing "
        "'Approximate Query Processing: No Silver Bullet' (SIGMOD 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
