PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke

test:
	$(PYTHON) -m pytest -x -q

## Full benchmark suite in parallel workers -> benchmarks/results/BENCH_results.json
bench:
	$(PYTHON) -m repro bench

## Fast (~30s) subset; fails on >2x regression vs benchmarks/BENCH_baseline.json
bench-smoke:
	$(PYTHON) -m repro bench --smoke
