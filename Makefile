PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-smoke audit audit-smoke trace-smoke stress-smoke tune-smoke

test:
	$(PYTHON) -m pytest -x -q

## Inner-loop subset: skips @slow statistical/trial-loop tests
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## Full benchmark suite in parallel workers -> benchmarks/results/BENCH_results.json
bench:
	$(PYTHON) -m repro bench

## Fast (~30s) subset; fails on >2x regression vs benchmarks/BENCH_baseline.json
bench-smoke:
	$(PYTHON) -m repro bench --smoke

## Statistical guarantee audit (full trials) -> audit/AUDIT_report.json
audit:
	$(PYTHON) -m repro audit --no-check

## Seconds-fast audit; fails on broken guarantees or baseline regressions
audit-smoke:
	$(PYTHON) -m repro audit --smoke

## Observability smoke: trace-conformance tests + one live EXPLAIN ANALYZE
trace-smoke:
	$(PYTHON) -m pytest -m obs -q
	$(PYTHON) -m repro trace --demo tpch --scale 1 --metrics \
		"SELECT SUM(l_extendedprice) AS revenue FROM lineitem ERROR WITHIN 5% CONFIDENCE 95%"

## Tuner smoke: tuner test suite + public-API snapshot + one live seeded
## static-vs-tuned replay that must show >= 2x synopsis hit rate.
tune-smoke:
	$(PYTHON) -m pytest -q tests/test_public_api.py tests/test_query_options.py tests/test_tuner.py
	$(PYTHON) -m repro tune-replay --min-improvement 2.0

## Concurrency hammer: serving frontend + thread-safety audits + one live
## overload burst. Wrapped in a hard wall-clock timeout so a deadlock is
## a red build, not a hung one (pytest-timeout is not a dependency).
stress-smoke:
	timeout 600 $(PYTHON) -m pytest -m stress -q
	timeout 120 $(PYTHON) -m repro serve-bench --rows 100000 --burst 48
