"""E6 — sampling and joins: independent samples fail; structure-aware
sampling works.

Claims: (a) joining two *independent* Bernoulli samples at rate p keeps
only ~p² of output pairs and produces far noisier SUM estimates than a
single-side sample of the same cost; (b) universe (correlated hash)
sampling of both sides keeps matching keys together and recovers accuracy;
(c) a precomputed join synopsis answers FK-join aggregates at sample cost.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import Database, Table
from repro.engine.executor import join_indices
from repro.sampling.join_synopsis import ForeignKeyEdge, build_join_synopsis
from repro.sampling.universe import estimate_join_sum, joint_universe_samples
from repro.workloads import generate_ssb

RATE = 0.01
TRIALS = 12


@pytest.fixture(scope="module")
def join_data():
    rng = np.random.default_rng(14)
    # Near-key-unique join: each dim key matches only ~3 fact rows, the
    # regime where independent two-sided sampling keeps almost no pairs.
    n, d = 300_000, 100_000
    keys = rng.integers(0, d, n)
    fact = Table({"k": keys, "v": rng.exponential(10.0, n)})
    dim = Table({"k": np.arange(d), "w": rng.random(d) + 0.5})
    truth = float(np.sum(fact["v"] * dim["w"][keys]))
    return fact, dim, truth


def join_sum(lk, lv, rk, rw):
    li, ri, _ = join_indices([lk], [rk])
    return float(np.sum(lv[li] * rw[ri])), lk[li]


def test_e06_independent_vs_universe(benchmark, join_data):
    fact, dim, truth = join_data

    def compute():
        indep_errs, single_errs, universe_errs = [], [], []
        for trial in range(TRIALS):
            rng = np.random.default_rng(500 + trial)
            # (a) independent Bernoulli on both sides, scale by 1/p².
            lm = rng.random(fact.num_rows) < RATE
            rm = rng.random(dim.num_rows) < RATE
            s, _ = join_sum(
                fact["k"][lm], fact["v"][lm], dim["k"][rm], dim["w"][rm]
            )
            indep_errs.append(abs(s / (RATE * RATE) - truth) / truth)
            # (b) sample only the fact side, join full dim, scale by 1/p.
            s, _ = join_sum(fact["k"][lm], fact["v"][lm], dim["k"], dim["w"])
            single_errs.append(abs(s / RATE - truth) / truth)
            # (c) universe-sample both sides with one hash, scale by 1/p.
            ls, rs = joint_universe_samples(
                fact, "k", dim, "k", RATE, seed=600 + trial
            )
            s, jkeys = join_sum(
                ls.table["k"], ls.table["v"], rs.table["k"], rs.table["w"]
            )
            est = estimate_join_sum(
                ls.table["v"][join_indices([ls.table["k"]], [rs.table["k"]])[0]]
                * rs.table["w"][join_indices([ls.table["k"]], [rs.table["k"]])[1]],
                jkeys,
                RATE,
            )
            universe_errs.append(abs(est.value - truth) / truth)
        return (
            float(np.median(indep_errs)),
            float(np.median(single_errs)),
            float(np.median(universe_errs)),
        )

    indep, single, universe = once(benchmark, compute)
    write_report(
        "e06_join_strategies",
        table(
            ["strategy", f"median relerr (rate={RATE})"],
            [
                ("independent samples both sides (1/p² scale-up)", f"{indep:.3%}"),
                ("sample fact side only", f"{single:.3%}"),
                ("universe sampling both sides", f"{universe:.3%}"),
            ],
        ),
    )
    # Shape: independent two-sided sampling is far worse than either
    # structure-aware strategy.
    assert indep > 3 * single
    assert indep > 3 * universe


def test_e06_join_synopsis_on_star_schema(benchmark):
    db = generate_ssb(scale=2.0, seed=15, block_size=512)

    def compute():
        syn = build_join_synopsis(
            db,
            "lineorder",
            [
                ForeignKeyEdge("lo_custkey", "customer_dim", "c_custkey"),
                ForeignKeyEdge("lo_orderdate", "date_dim", "d_datekey"),
            ],
            sample_size=8000,
            rng=np.random.default_rng(16),
        )
        # Revenue by customer region, answered entirely from the synopsis.
        lo = db.table("lineorder")
        cust = db.table("customer_dim")
        region_of = cust["c_region"][lo["lo_custkey"]]
        out = []
        for region in np.unique(cust["c_region"]):
            truth = float(lo["lo_revenue"][region_of == region].sum())
            mask = syn.sample.table["customer_dim.c_region"] == region
            est = syn.sample.filtered(mask).estimate_sum("lo_revenue")
            out.append((str(region), truth, est.value, abs(est.value - truth) / truth))
        return out

    rows = once(benchmark, compute)
    write_report(
        "e06_join_synopsis",
        table(
            ["region", "true revenue", "synopsis estimate", "relerr"],
            [(r, f"{t:.0f}", f"{e:.0f}", f"{err:.3%}") for r, t, e, err in rows],
        ),
    )
    for _, _, _, err in rows:
        assert err < 0.15
