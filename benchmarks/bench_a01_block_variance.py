"""A1 — ablation: naive i.i.d. vs cluster-correct variance for block
samples.

Design choice under test: every block-sample estimate in this library
computes variance over *per-block totals* (clusters), never over rows.
This ablation shows what the naive row-level formula would do on a
clustered physical layout: report intervals that are far too narrow and
under-cover catastrophically — the statistical failure mode that makes
block sampling "dangerous by default" and motivates the cluster
machinery.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import Table
from repro.core.errorspec import z_value
from repro.estimators.closed_form import srs_sum
from repro.sampling.block import block_fixed_sample, estimate_sum_blockwise
from repro.estimators.subsampling import design_effect_from_rows
from repro.workloads import clustered_values

TRIALS = 60
RATE = 0.2
BLOCK = 256


def build(layout: str) -> Table:
    cols = clustered_values(40_000, block_size=BLOCK, seed=33)
    t = Table(cols, block_size=BLOCK)
    if layout == "shuffled":
        rng = np.random.default_rng(34)
        t = t.take(rng.permutation(t.num_rows))
    return t


def coverage(t: Table):
    truth = float(t["value"].sum())
    hits_naive = hits_cluster = 0
    width_naive = width_cluster = 0.0
    z = z_value(0.95)
    m = max(int(t.num_blocks * RATE), 2)
    for trial in range(TRIALS):
        s = block_fixed_sample(t, m, np.random.default_rng(trial))
        # naive: pretend the sampled rows are an SRS of rows
        naive = srs_sum(
            np.asarray(s.table["value"], dtype=np.float64), t.num_rows
        )
        lo = naive.value - z * naive.std_error
        hi = naive.value + z * naive.std_error
        hits_naive += lo <= truth <= hi
        width_naive += (hi - lo) / truth
        # cluster-correct
        est = estimate_sum_blockwise(s, "value")
        lo, hi = est.ci(0.95)
        hits_cluster += lo <= truth <= hi
        width_cluster += (hi - lo) / truth
    return (
        hits_naive / TRIALS,
        hits_cluster / TRIALS,
        width_naive / TRIALS,
        width_cluster / TRIALS,
    )


def test_a01_coverage_on_clustered_layout(benchmark):
    def compute():
        rows = []
        for layout in ("clustered", "shuffled"):
            t = build(layout)
            deff = design_effect_from_rows(
                np.asarray(t["value"], dtype=np.float64),
                np.arange(t.num_rows) // BLOCK,
            )
            naive_cov, cluster_cov, naive_w, cluster_w = coverage(t)
            rows.append((layout, deff, naive_cov, cluster_cov, naive_w, cluster_w))
        return rows

    rows = once(benchmark, compute)
    write_report(
        "a01_block_variance",
        table(
            ["layout", "design effect", "naive 95% CI coverage",
             "cluster CI coverage", "naive width", "cluster width"],
            [
                (l, f"{d:.0f}", f"{nc:.1%}", f"{cc:.1%}", f"{nw:.3%}", f"{cw:.3%}")
                for l, d, nc, cc, nw, cw in rows
            ],
        ),
    )
    clustered = rows[0]
    shuffled = rows[1]
    # On the clustered layout the naive CI under-covers badly while the
    # cluster-correct CI stays near nominal.
    assert clustered[2] < 0.6
    assert clustered[3] >= 0.85
    # On a shuffled layout blocks behave like random subsets: both agree.
    assert shuffled[2] >= 0.85 and shuffled[3] >= 0.85
    # The design effect quantifies the gap.
    assert clustered[1] > 10 * shuffled[1]
