"""P4 — concurrent serving: a 4x overload burst against the frontend.

The serving front-end's contract under overload (DESIGN.md §2.14): every
submitted query ends in exactly one of {answer, typed refusal, typed
rejection} — nothing hangs, nothing dies untyped — while the overload
controller sheds *accuracy* (ladder entry rung) before the admission
queue sheds *work*. This benchmark drives a burst of 4x the queue
capacity from concurrent client threads and records the three serving
health numbers the claim lives on:

* **throughput** — queries answered per second during the burst;
* **shed rate** — fraction of answers served from a shed entry rung
  (``shed_to`` provenance present);
* **p99 queue wait** — among *served* queries, which the queue deadline
  must bound (a query past the deadline is rejected, not served late).

The numbers land in ``BENCH_results.json`` via ``record_metric`` so the
baseline comparison can watch serving health across commits.
"""

import threading
import time

import numpy as np
import pytest

from common import once, record_metric, table, write_report
from repro import Database
from repro.core.errorspec import ErrorSpec
from repro.core.exceptions import QueryRejected, QueryRefused
from repro.serving import ServingFrontend

N_ROWS = 400_000
WORKERS = 2
MAX_QUEUE = 16
BURST = 4 * MAX_QUEUE
CLIENTS = 8
QUEUE_DEADLINE_S = 5.0
QUERY = (
    "SELECT SUM(v) AS s FROM events WHERE v > 5 "
    "ERROR WITHIN 10% CONFIDENCE 95%"
)


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(4)
    db = Database()
    db.create_table(
        "events",
        {
            "v": rng.exponential(10.0, N_ROWS),
            "k": rng.integers(0, 100, N_ROWS),
        },
    )
    return db


def test_p04_concurrent_serving(benchmark, world):
    db = world
    spec = ErrorSpec(relative_error=0.10, confidence=0.95)

    def compute():
        frontend = ServingFrontend(
            db,
            workers=WORKERS,
            max_queue=MAX_QUEUE,
            queue_deadline_s=QUEUE_DEADLINE_S,
            seed=7,
        )
        tickets = []
        rejected = {"overload": 0, "queue_deadline": 0, "budget": 0}
        lock = threading.Lock()

        def client(client_id: int) -> None:
            for i in range(BURST // CLIENTS):
                try:
                    t = frontend.submit(
                        QUERY,
                        tenant=f"client{client_id}",
                        priority="interactive" if i % 2 else "batch",
                        spec=spec,
                        seed=client_id * 1000 + i,
                    )
                    with lock:
                        tickets.append(t)
                except QueryRejected as exc:
                    with lock:
                        rejected[exc.reason] += 1

        start = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(c,)) for c in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert frontend.drain(timeout=120.0), "queue failed to drain"
        elapsed = time.perf_counter() - start

        served, refused, waits, shed = 0, 0, [], 0
        for t in tickets:
            assert t.wait(timeout=60.0), "ticket never resolved (hang)"
            err = t.exception()
            if err is None:
                served += 1
                waits.append(t.queue_wait)
                if t.shed_to is not None:
                    shed += 1
            elif isinstance(err, QueryRejected):
                rejected[err.reason] += 1
            else:
                assert isinstance(err, QueryRefused), f"untyped error: {err!r}"
                refused += 1
        frontend.close()

        total = served + refused + sum(rejected.values())
        assert total == BURST, f"lost queries: {total}/{BURST}"
        p99_wait = float(np.percentile(waits, 99)) if waits else 0.0
        assert p99_wait <= QUEUE_DEADLINE_S, (
            f"served a query after waiting {p99_wait:.2f}s, past the "
            f"queue deadline {QUEUE_DEADLINE_S:.2f}s"
        )
        throughput = served / elapsed if elapsed > 0 else 0.0
        shed_rate = shed / served if served else 0.0
        record_metric(
            "bench_p04_concurrent_serving",
            "serving",
            {
                "burst": BURST,
                "served": served,
                "refused": refused,
                "rejected": rejected,
                "shed_answers": shed,
                "shed_rate": shed_rate,
                "throughput_qps": throughput,
                "p99_queue_wait_s": p99_wait,
                "elapsed_s": elapsed,
            },
        )
        return elapsed, served, refused, rejected, shed_rate, throughput, p99_wait

    elapsed, served, refused, rejected, shed_rate, throughput, p99 = once(
        benchmark, compute
    )
    write_report(
        "P04_concurrent_serving",
        [
            f"{BURST} queries from {CLIENTS} clients into a "
            f"{MAX_QUEUE}-slot queue, {WORKERS} workers, "
            f"{elapsed:.2f}s wall",
            "",
            *table(
                ["outcome", "count"],
                [
                    ("served", served),
                    ("served from shed rung", f"{shed_rate:.1%}"),
                    ("refused (typed)", refused),
                    ("rejected overload", rejected["overload"]),
                    ("rejected queue_deadline", rejected["queue_deadline"]),
                    ("throughput qps", f"{throughput:.1f}"),
                    ("p99 queue wait", f"{p99 * 1e3:.1f} ms"),
                ],
            ),
        ],
    )
