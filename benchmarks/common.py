"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one claim from DESIGN.md's experiment index
(E1–E14). The measured series are written to ``benchmarks/results/`` so
EXPERIMENTS.md can cite them, and asserted on *shape* (who wins, rough
factors) rather than absolute numbers.

This module also hosts the **parallel harness**: a
``ProcessPoolExecutor`` runner that executes experiment files in worker
processes, re-runs cache-relevant experiments warm to measure synopsis
reuse, emits a machine-readable ``BENCH_results.json`` (wall time,
simulated cost, synopsis-cache counters per experiment), and compares
against a previous JSON to flag regressions. Entry points:
``python -m repro bench [--smoke]`` and ``make bench-smoke``.
"""

from __future__ import annotations

import contextlib
import glob
import io
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Iterable, List, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
METRICS_DIR = os.path.join(RESULTS_DIR, "metrics")
BENCH_RESULTS_JSON = os.path.join(RESULTS_DIR, "BENCH_results.json")
BASELINE_JSON = os.path.join(os.path.dirname(__file__), "BENCH_baseline.json")

#: Experiments whose synopses are memoized by the synopsis cache; the
#: harness runs these twice in the same worker so the warm run's cache
#: hits and wall time are observable in BENCH_results.json.
CACHE_RELEVANT = {
    "bench_e07_drift",
    "bench_e10_sample_seek",
    "bench_e14_matrix",
}

#: Fast subset for ``--smoke``: finishes in tens of seconds and still
#: covers a sketch kernel, an offline-cache path, and an online path.
SMOKE_SET = [
    "bench_p01_sketch_ingest",
    "bench_p02_scatter_gather",
    "bench_p03_fused_pipeline",
    "bench_p04_concurrent_serving",
    "bench_e10_sample_seek",
    "bench_e13_ola",
]


def write_report(name: str, lines: Iterable[str]) -> str:
    """Persist a claim table under benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines) + "\n"
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    print(f"\n[{name}]")
    print(text)
    return path


def table(headers: Sequence[str], rows: Sequence[Sequence]) -> List[str]:
    """Fixed-width text table (shared renderer with the audit reports)."""
    from repro.audit.report import format_table

    return format_table(headers, rows)


def _fmt(value) -> str:
    from repro.audit.report import format_value

    return format_value(value)


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark fixture.

    The claim computations are deterministic-ish and moderately heavy, so
    one timed round is both sufficient and what keeps the suite fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


# ----------------------------------------------------------------------
# Simulated-cost metrics sidecar
# ----------------------------------------------------------------------
def record_metric(experiment: str, key: str, value) -> None:
    """Record one machine-readable metric for an experiment.

    Benchmarks call this for quantities the harness should surface in
    ``BENCH_results.json`` (simulated I/O cost, rows/sec, speedups).
    Values accumulate in ``results/metrics/<experiment>.json``; the
    harness reads and deletes the sidecar after the experiment's run.
    """
    os.makedirs(METRICS_DIR, exist_ok=True)
    path = os.path.join(METRICS_DIR, f"{experiment}.json")
    data: Dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[key] = value
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)


def _consume_metrics(experiment: str) -> Dict[str, object]:
    path = os.path.join(METRICS_DIR, f"{experiment}.json")
    if not os.path.exists(path):
        return {}
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    with contextlib.suppress(OSError):
        os.remove(path)
    return data


# ----------------------------------------------------------------------
# Parallel runner
# ----------------------------------------------------------------------
def discover_experiments(smoke: bool = False) -> List[str]:
    """Paths of the experiment files to run, sorted by name."""
    bench_dir = os.path.dirname(os.path.abspath(__file__))
    if smoke:
        paths = [os.path.join(bench_dir, f"{n}.py") for n in SMOKE_SET]
        return [p for p in paths if os.path.exists(p)]
    return sorted(glob.glob(os.path.join(bench_dir, "bench_*.py")))


def _run_pytest_once(path: str) -> Dict[str, object]:
    """Run one experiment file in-process; returns timing + cache stats.

    The synopsis-cache *stats* are reset before the run (the cached
    entries are kept — that is the point of the warm pass) so the
    counters attribute to exactly this run.
    """
    import pytest

    from repro.engine.kernel_cache import get_kernel_cache
    from repro.obs.metrics import get_metrics
    from repro.storage.synopsis_cache import get_global_cache

    cache = get_global_cache()
    cache.stats.reset()
    kernel_cache = get_kernel_cache()
    kernel_cache.stats.reset()
    registry = get_metrics()
    registry.reset()
    buf = io.StringIO()
    start = time.perf_counter()
    with contextlib.redirect_stdout(buf):
        code = pytest.main(
            [path, "-q", "--benchmark-disable", "-p", "no:cacheprovider"]
        )
    wall = time.perf_counter() - start
    return {
        "exit_code": int(code),
        "wall_s": wall,
        "cache": cache.stats.as_dict(),
        "kernel_cache": kernel_cache.stats.as_dict(),
        # Engine-level counters/histograms accumulated during the run
        # (queries served per engine/rung, cache lookups, retries, ...).
        # Cache gauges are excluded: the cold/warm cache dicts above
        # already carry them attributed per run.
        "metrics_registry": registry.snapshot(include_caches=False),
        "output_tail": buf.getvalue()[-2000:],
    }


def _run_experiment(path: str) -> Dict[str, object]:
    """Worker entry: run one experiment (twice when cache-relevant).

    Top-level function so ``ProcessPoolExecutor`` can pickle it. Each
    worker process has its own fresh global synopsis cache, so the cold
    run's misses and the warm run's hits are isolated per experiment.
    """
    name = os.path.splitext(os.path.basename(path))[0]
    _consume_metrics(name)  # drop stale sidecars from earlier runs
    cold = _run_pytest_once(path)
    result: Dict[str, object] = {
        "name": name,
        "path": os.path.relpath(path, os.path.dirname(RESULTS_DIR)),
        "status": "ok" if cold["exit_code"] == 0 else "failed",
        "cold_wall_s": round(cold["wall_s"], 4),
        "cold_cache": cold["cache"],
        "kernel_cache": cold["kernel_cache"],
        "metrics_registry": cold["metrics_registry"],
        "metrics": _consume_metrics(name),
    }
    if cold["exit_code"] != 0:
        result["output_tail"] = cold["output_tail"]
        return result
    if name in CACHE_RELEVANT:
        warm = _run_pytest_once(path)
        _consume_metrics(name)
        result["warm_wall_s"] = round(warm["wall_s"], 4)
        result["warm_cache"] = warm["cache"]
        if warm["exit_code"] != 0:
            result["status"] = "failed"
            result["output_tail"] = warm["output_tail"]
    return result


def run_suite(
    smoke: bool = False,
    workers: Optional[int] = None,
    output_path: str = BENCH_RESULTS_JSON,
) -> Dict[str, object]:
    """Run the benchmark suite in parallel workers; emit BENCH_results.json.

    Returns the results document. Experiment failures are recorded in the
    document (``status: failed``) rather than raised, so one broken
    experiment does not hide the rest of the measurements.
    """
    paths = discover_experiments(smoke=smoke)
    if not paths:
        raise FileNotFoundError("no benchmark files discovered")
    if workers is None:
        workers = min(len(paths), max(os.cpu_count() or 1, 1))
    experiments: List[Dict[str, object]] = []
    start = time.perf_counter()
    if workers <= 1:
        for path in paths:
            experiments.append(_run_experiment(path))
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_experiment, p): p for p in paths}
            for fut in as_completed(futures):
                experiments.append(fut.result())
    experiments.sort(key=lambda e: e["name"])
    doc: Dict[str, object] = {
        "schema": 1,
        "mode": "smoke" if smoke else "full",
        "workers": workers,
        "total_wall_s": round(time.perf_counter() - start, 4),
        "experiments": experiments,
    }
    os.makedirs(os.path.dirname(output_path), exist_ok=True)
    with open(output_path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    return doc


# ----------------------------------------------------------------------
# Regression comparison
# ----------------------------------------------------------------------
def compare_results(
    new: Dict[str, object],
    old: Dict[str, object],
    threshold: float = 2.0,
    min_wall_s: float = 0.5,
) -> List[str]:
    """Regressions of ``new`` relative to ``old``; empty list == clean.

    Flags experiment failures, cold wall-time blowups beyond
    ``threshold``× (ignoring sub-``min_wall_s`` experiments, which are
    all scheduling noise), and cache-relevant experiments whose warm run
    stopped hitting the synopsis cache.
    """
    old_by_name = {e["name"]: e for e in old.get("experiments", [])}
    problems: List[str] = []
    for exp in new.get("experiments", []):
        name = exp["name"]
        if exp.get("status") != "ok":
            problems.append(f"{name}: FAILED")
            continue
        prev = old_by_name.get(name)
        if prev is None or prev.get("status") != "ok":
            continue
        old_wall = float(prev.get("cold_wall_s", 0.0))
        new_wall = float(exp.get("cold_wall_s", 0.0))
        if old_wall >= min_wall_s and new_wall > threshold * old_wall:
            problems.append(
                f"{name}: cold wall time {new_wall:.2f}s > "
                f"{threshold:g}x baseline {old_wall:.2f}s"
            )
        warm = exp.get("warm_cache")
        if warm is not None and prev.get("warm_cache", {}).get("hits", 0) > 0:
            if warm.get("hits", 0) == 0:
                problems.append(
                    f"{name}: warm run no longer hits the synopsis cache"
                )
        # Kernel-cache regression: an experiment whose baseline run
        # reused compiled kernels must keep reusing them — losing every
        # hit means plan signatures churn and each query recompiles.
        old_khits = (prev.get("kernel_cache") or {}).get("hits", 0)
        new_khits = (exp.get("kernel_cache") or {}).get("hits", 0)
        if old_khits > 0 and new_khits == 0:
            problems.append(
                f"{name}: kernel cache no longer hits "
                f"(baseline {old_khits} hits, now 0)"
            )
        if name == "bench_p03_fused_pipeline":
            problems.extend(_check_p03(exp, prev))
    return problems


def _check_p03(exp: Dict[str, object], prev: Dict[str, object]) -> List[str]:
    """Fused-pipeline claim guard: the measured speedup must not halve.

    The generic wall-time check above catches suite-level blowups; this
    one catches the targeted regression — the fused path quietly losing
    its edge over the materializing reference — even when absolute wall
    times stay inside the 2x envelope.
    """
    new_pipe = (exp.get("metrics") or {}).get("pipeline") or {}
    old_pipe = (prev.get("metrics") or {}).get("pipeline") or {}
    new_speedup = float(new_pipe.get("speedup", 0.0))
    old_speedup = float(old_pipe.get("speedup", 0.0))
    if old_speedup > 0 and new_speedup < old_speedup / 2.0:
        return [
            f"bench_p03_fused_pipeline: fused speedup {new_speedup:.2f}x "
            f"fell below half the baseline {old_speedup:.2f}x"
        ]
    return []


def check_against_baseline(
    doc: Dict[str, object],
    baseline_path: str = BASELINE_JSON,
    threshold: float = 2.0,
) -> List[str]:
    """Compare a results document against the committed baseline JSON.

    A missing baseline is not a regression (first run on a new machine);
    it is reported as an informational entry prefixed ``note:`` which
    callers should print but not fail on.
    """
    if not os.path.exists(baseline_path):
        return [f"note: no baseline at {baseline_path}; skipping comparison"]
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    return compare_results(doc, baseline, threshold=threshold)
