"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one claim from DESIGN.md's experiment index
(E1–E14). The measured series are written to ``benchmarks/results/`` so
EXPERIMENTS.md can cite them, and asserted on *shape* (who wins, rough
factors) rather than absolute numbers.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_report(name: str, lines: Iterable[str]) -> str:
    """Persist a claim table under benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines) + "\n"
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    print(f"\n[{name}]")
    print(text)
    return path


def table(headers: Sequence[str], rows: Sequence[Sequence]) -> List[str]:
    """Fixed-width text table."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    out = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        out.append("  ".join(_fmt(v).ljust(w) for v, w in zip(r, widths)))
    return out


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark fixture.

    The claim computations are deterministic-ish and moderately heavy, so
    one timed round is both sufficient and what keeps the suite fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
