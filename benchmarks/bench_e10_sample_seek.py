"""E10 — Sample+Seek: distribution guarantees by splitting large/small
groups.

Claims: (a) a measure-biased sample answers every *large* group (by
measure share) accurately; (b) small groups, hopeless for the sample, are
served exactly by index seeks at a cost proportional to their (small)
size; (c) the combined answer achieves low distribution precision (L2 on
group shares) that a same-size uniform sample cannot match on skew.
"""

import numpy as np
import pytest

from common import once, record_metric, table, write_report
from repro import Table
from repro.offline import (
    answer_group_by_sum,
    build_sample_seek,
    distribution_precision,
)
from repro.offline.sample_seek import GroupAnswer
from repro.sampling.row import srs_sample
from repro.workloads import zipf_group_table

NUM_ROWS = 250_000
NUM_GROUPS = 400
SAMPLE_SIZE = 8000


@pytest.fixture(scope="module")
def data():
    return Table(
        zipf_group_table(NUM_ROWS, num_groups=NUM_GROUPS, zipf_s=1.5, seed=20)
    )


def group_truth(data):
    out = {}
    for g in np.unique(data["group_id"]):
        out[int(g)] = float(data["value"][data["group_id"] == g].sum())
    return out


def test_e10_sample_seek_split(benchmark, data):
    def compute():
        # seed= (not a live rng) keeps the build deterministic, so the
        # synopsis cache can memoize it across runs in one process.
        syn = build_sample_seek(data, "value", "group_id", SAMPLE_SIZE, seed=21)
        answers, cost = answer_group_by_sum(syn, data)
        truth = group_truth(data)
        sampled = [a for a in answers if a.method == "sample"]
        seeked = [a for a in answers if a.method == "seek"]
        sample_errs = [abs(a.value - truth[a.key]) / truth[a.key] for a in sampled]
        dp = distribution_precision(answers, truth)
        # Uniform baseline at the same size.
        u = srs_sample(data, SAMPLE_SIZE, np.random.default_rng(22))
        weight = data.num_rows / SAMPLE_SIZE
        uniform_answers = []
        for g in np.unique(u.table["group_id"]):
            uniform_answers.append(
                GroupAnswer(
                    key=int(g),
                    value=float(
                        u.table["value"][u.table["group_id"] == g].sum()
                    )
                    * weight,
                    method="sample",
                )
            )
        dp_uniform = distribution_precision(uniform_answers, truth)
        return {
            "num_sampled": len(sampled),
            "num_seeked": len(seeked),
            "max_large_group_err": max(sample_errs),
            "median_large_group_err": float(np.median(sample_errs)),
            "distribution_precision": dp,
            "distribution_precision_uniform": dp_uniform,
            "cost": cost,
        }

    out = once(benchmark, compute)
    record_metric("bench_e10_sample_seek", "simulated_cost", out["cost"])
    record_metric(
        "bench_e10_sample_seek",
        "distribution_precision",
        out["distribution_precision"],
    )
    write_report(
        "e10_sample_seek",
        table(
            ["metric", "value"],
            [
                ("large groups from sample", out["num_sampled"]),
                ("small groups via seek (exact)", out["num_seeked"]),
                ("max large-group relerr", f"{out['max_large_group_err']:.3%}"),
                ("median large-group relerr", f"{out['median_large_group_err']:.3%}"),
                ("distribution precision (S+S)", f"{out['distribution_precision']:.4f}"),
                ("distribution precision (uniform)", f"{out['distribution_precision_uniform']:.4f}"),
            ],
        ),
    )
    # Shape: the split actually happens, large groups are accurate, and
    # the distribution guarantee beats the uniform baseline.
    assert out["num_seeked"] > 0 and out["num_sampled"] > 0
    assert out["max_large_group_err"] < 0.35
    assert out["median_large_group_err"] < 0.10
    assert out["distribution_precision"] < out["distribution_precision_uniform"]
    assert out["distribution_precision"] < 0.02


def test_e10_seek_cost_proportional_to_small_groups(benchmark, data):
    def compute():
        rows = []
        for sample_size in (2000, 8000, 32_000):
            syn = build_sample_seek(
                data, "value", "group_id", sample_size, seed=23
            )
            answers, cost = answer_group_by_sum(syn, data)
            seeks = sum(1 for a in answers if a.method == "seek")
            rows.append((sample_size, seeks, round(cost, 1)))
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e10_seek_cost",
        table(["sample size", "groups seeked", "total cost"], rows),
    )
    # Shape: a bigger sample covers more groups, so fewer seeks are needed.
    assert rows[0][1] > rows[-1][1]
