"""E3 — stratified sampling restores small-group accuracy.

Claim: for the same storage, a stratified sample (senate/congress) bounds
the worst group's error where uniform sampling's tail groups are garbage
(or missing), at modest extra error on the biggest groups. Neyman
allocation additionally wins when per-stratum variances differ.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import Table
from repro.sampling.row import srs_sample
from repro.sampling.stratified import group_estimates, stratified_sample
from repro.workloads import zipf_group_table

SAMPLE_SIZE = 8000
TRIALS = 8


@pytest.fixture(scope="module")
def data():
    return Table(zipf_group_table(300_000, num_groups=150, zipf_s=1.4, seed=6))


def truth_by_group(data):
    out = {}
    for g in np.unique(data["group_id"]):
        out[int(g)] = float(data["value"][data["group_id"] == g].sum())
    return out


def per_group_errors_uniform(data, truth, seed):
    s = srs_sample(data, SAMPLE_SIZE, np.random.default_rng(seed))
    weight = data.num_rows / SAMPLE_SIZE
    est = {}
    for g in np.unique(s.table["group_id"]):
        est[int(g)] = float(s.table["value"][s.table["group_id"] == g].sum()) * weight
    errors = {}
    for g, t in truth.items():
        e = est.get(g)
        errors[g] = abs(e - t) / t if e is not None else 1.0  # missing group
    return errors


def per_group_errors_stratified(data, truth, policy, seed):
    s = stratified_sample(
        data, "group_id", SAMPLE_SIZE, policy=policy,
        measure_column="value" if policy == "neyman" else None,
        min_per_stratum=10, rng=np.random.default_rng(seed),
    )
    ests = group_estimates(s, "group_id", "value", "sum")
    return {g: abs(ests[g].value - t) / t for g, t in truth.items() if g in ests}


def test_e03_worst_group_error(benchmark, data):
    def compute():
        truth = truth_by_group(data)
        rows = []
        for name, fn in (
            ("uniform", lambda seed: per_group_errors_uniform(data, truth, seed)),
            ("senate", lambda seed: per_group_errors_stratified(data, truth, "senate", seed)),
            ("congress", lambda seed: per_group_errors_stratified(data, truth, "congress", seed)),
            ("neyman", lambda seed: per_group_errors_stratified(data, truth, "neyman", seed)),
        ):
            worst, median, biggest = [], [], []
            big_group = max(truth, key=truth.get)
            for trial in range(TRIALS):
                errors = fn(trial)
                worst.append(max(errors.values()))
                median.append(float(np.median(list(errors.values()))))
                biggest.append(errors.get(big_group, 1.0))
            rows.append(
                (
                    name,
                    float(np.mean(worst)),
                    float(np.mean(median)),
                    float(np.mean(biggest)),
                )
            )
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e03_stratified",
        table(
            ["allocation", "worst-group err", "median-group err", "biggest-group err"],
            [(n, f"{w:.3f}", f"{m:.3f}", f"{b:.4f}") for n, w, m, b in rows],
        ),
    )
    by_name = {r[0]: r for r in rows}
    # Shape: stratified allocations beat uniform on the worst group by a
    # wide margin...
    assert by_name["senate"][1] < 0.5 * by_name["uniform"][1]
    assert by_name["congress"][1] < 0.5 * by_name["uniform"][1]
    # ...while the biggest group stays accurate for congress (it blends
    # proportional mass back in).
    assert by_name["congress"][3] < 0.2


def test_e03_group_coverage(benchmark, data):
    def compute():
        total = len(np.unique(data["group_id"]))
        uniform_seen = []
        strat_seen = []
        for trial in range(TRIALS):
            u = srs_sample(data, SAMPLE_SIZE, np.random.default_rng(trial))
            uniform_seen.append(len(np.unique(u.table["group_id"])))
            st = stratified_sample(
                data, "group_id", SAMPLE_SIZE, "senate",
                rng=np.random.default_rng(trial),
            )
            strat_seen.append(len(np.unique(st.table["group_id"])))
        return total, float(np.mean(uniform_seen)), float(np.mean(strat_seen))

    total, uniform_seen, strat_seen = once(benchmark, compute)
    write_report(
        "e03_coverage",
        table(
            ["sampler", "groups present (of %d)" % total],
            [("uniform", uniform_seen), ("stratified-senate", strat_seen)],
        ),
    )
    assert strat_seen == total
    assert uniform_seen <= total
