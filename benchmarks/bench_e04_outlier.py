"""E4 — outlier indexing fixes heavy-tailed SUM.

Claim: on heavy-tailed measures the uniform-sample SUM estimator's error
is dominated by whether the sample caught the outliers; splitting the top
1% into an exactly-aggregated outlier index shrinks the sampled part's
variance by the trimmed-variance ratio, and measure-biased sampling
achieves a similar effect without an index. Sweep the tail weight σ.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import Table
from repro.sampling.measure_biased import estimate_sum as mb_sum
from repro.sampling.measure_biased import measure_biased_sample
from repro.sampling.outlier import (
    build_outlier_index,
    estimate_sum_with_outliers,
    variance_reduction,
)
from repro.sampling.row import bernoulli_sample
from repro.workloads import heavy_tailed_table

SIGMAS = [0.5, 1.0, 1.5, 2.0, 2.5]
RATE = 0.01
TRIALS = 15
NUM_ROWS = 150_000


def median_err(errs):
    return float(np.median(errs))


def test_e04_error_by_tail_weight(benchmark):
    def compute():
        rows = []
        for sigma in SIGMAS:
            data = Table(heavy_tailed_table(NUM_ROWS, sigma=sigma, seed=8))
            truth = float(data["value"].sum())
            index = build_outlier_index(data, "value", 0.01)
            uniform_errs, outlier_errs, biased_errs = [], [], []
            for trial in range(TRIALS):
                rng = np.random.default_rng(9000 + trial)
                u = bernoulli_sample(data, RATE, rng)
                uniform_errs.append(
                    abs(u.estimate_sum("value").value - truth) / truth
                )
                est, _ = estimate_sum_with_outliers(index, RATE, rng)
                outlier_errs.append(abs(est.value - truth) / truth)
                mb = measure_biased_sample(
                    data, "value", int(NUM_ROWS * RATE), rng
                )
                biased_errs.append(abs(mb_sum(mb).value - truth) / truth)
            rows.append(
                (
                    sigma,
                    median_err(uniform_errs),
                    median_err(outlier_errs),
                    median_err(biased_errs),
                    variance_reduction(data, "value", 0.01),
                )
            )
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e04_outlier",
        table(
            ["sigma", "uniform err", "outlier-index err", "measure-biased err",
             "trimmed-variance ratio"],
            [
                (s, f"{u:.4%}", f"{o:.4%}", f"{b:.4%}", f"{v:.1f}")
                for s, u, o, b, v in rows
            ],
        ),
    )
    # Shape: at heavy tails both remedies beat uniform sampling clearly;
    # at light tails everyone is fine.
    light = rows[0]
    heavy = rows[-1]
    assert heavy[1] > 3 * heavy[2]  # outlier index >=3x better than uniform
    assert heavy[1] > 3 * heavy[3]  # measure-biased too
    assert light[1] < 0.05  # nothing pathological on benign data
    # The variance-reduction knob grows with tail weight.
    assert rows[-1][4] > rows[0][4]
