"""A4 — ablation: the bi-level sampling design space.

Design choice under test: the library's block samplers read whole blocks
(row_rate = 1). The bi-level scheme shows the alternative: at a fixed
effective row fraction, raising the block rate (and thinning within
blocks) buys statistical efficiency on clustered layouts at linear I/O
cost — a continuous dial between pure block sampling and pure row
sampling. On shuffled layouts the dial does nothing, confirming the
clustering is the whole story.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import Table
from repro.sampling.bilevel import variance_tradeoff_curve
from repro.workloads import clustered_values

EFFECTIVE = 0.05
BLOCK = 256


def build(layout):
    t = Table(clustered_values(40_000, block_size=BLOCK, seed=43), block_size=BLOCK)
    if layout == "shuffled":
        t = t.take(np.random.default_rng(44).permutation(t.num_rows))
    return t


def test_a04_bilevel_design_space(benchmark):
    def compute():
        out = {}
        for layout in ("clustered", "shuffled"):
            t = build(layout)
            out[layout] = variance_tradeoff_curve(
                t, "value", EFFECTIVE, trials=15, seed=45
            )
        return out

    curves = once(benchmark, compute)
    rows = []
    for layout, curve in curves.items():
        for q, io, rmse in curve:
            rows.append((layout, q, f"{io:.2f}", f"{rmse:.4f}"))
    write_report(
        "a04_bilevel",
        table(["layout", "block rate", "I/O fraction", "SUM rmse"], rows),
    )
    clustered = curves["clustered"]
    shuffled = curves["shuffled"]
    # Clustered: error falls several-fold moving from pure-block to
    # pure-row at the same effective fraction...
    assert clustered[0][2] > 3 * clustered[-1][2]
    # ...while I/O rises linearly with the block rate.
    assert clustered[-1][1] > 10 * clustered[0][1]
    # Shuffled: the dial is flat (within noise) — blocks are already
    # random subsets.
    assert shuffled[0][2] < 3 * shuffled[-1][2]
