"""E2 — selective predicates and rare groups break uniform sampling.

Claims: (a) relative error of a sampled aggregate explodes as predicate
selectivity drops (effective sample size shrinks with the match count);
(b) uniform samples lose small groups of a Zipf-distributed group-by
entirely; (c) the pilot planner detects the selective regime and refuses
(falls back to exact) instead of returning a silently bad answer.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import Database, InfeasiblePlanError, ErrorSpec, Table
from repro.estimators.closed_form import bernoulli_sum
from repro.online import PilotPlanner
from repro.sampling.row import srs_sample
from repro.sql import bind_sql
from repro.workloads import selectivity_table, zipf_group_table

SELECTIVITIES = [0.3, 0.1, 0.03, 0.01, 0.003, 0.001, 0.0003]
RATE = 0.01
TRIALS = 25


@pytest.fixture(scope="module")
def data():
    return Table(selectivity_table(400_000, seed=3), block_size=1024)


def test_e02_error_vs_selectivity(benchmark, data):
    def compute():
        rows = []
        values = data["value"]
        selector = data["selector"]
        for sel in SELECTIVITIES:
            match = selector < sel
            truth = float(values[match].sum())
            errs = []
            for trial in range(TRIALS):
                rng = np.random.default_rng(7000 + trial)
                keep = rng.random(data.num_rows) < RATE
                est = bernoulli_sum(values[keep & match], RATE)
                errs.append(abs(est.value - truth) / truth if truth else np.inf)
            rows.append((sel, float(np.median(errs))))
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e02_selectivity",
        table(
            ["selectivity", f"median relerr @ {RATE:.0%} sample"],
            [(s, f"{e:.4%}") for s, e in rows],
        ),
    )
    # Shape: error grows monotonically-ish as selectivity drops, and the
    # most selective setting is at least 10x worse than the least.
    assert rows[-1][1] > 10 * rows[0][1]


def test_e02_group_loss(benchmark):
    def compute():
        data = Table(zipf_group_table(300_000, num_groups=1000, zipf_s=1.4, seed=4))
        total_groups = len(np.unique(data["group_id"]))
        rows = []
        for size in (1000, 3000, 10_000, 30_000):
            seen = []
            for trial in range(10):
                s = srs_sample(data, size, np.random.default_rng(trial))
                seen.append(len(np.unique(s.table["group_id"])))
            rows.append((size, total_groups, float(np.mean(seen))))
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e02_group_loss",
        table(
            ["sample size", "true groups", "groups seen (mean)"],
            rows,
        ),
    )
    # Shape: a 1k-row uniform sample of a 1000-group Zipf table misses a
    # large share of the groups.
    assert rows[0][2] < 0.7 * rows[0][1]
    assert rows[-1][2] > rows[0][2]


def test_e02_planner_refuses_selective_queries(benchmark):
    db = Database()
    db.create_table("t", selectivity_table(400_000, seed=5), block_size=1024)

    def compute():
        out = []
        for sel in (0.3, 0.001, 0.00001):
            bound = bind_sql(
                f"SELECT SUM(value) AS s FROM t WHERE selector < {sel}", db
            )
            try:
                res = PilotPlanner(db, seed=1).run(bound, ErrorSpec(0.05, 0.95))
                out.append((sel, "approximate", res.diagnostics["sampling_rate"]))
            except InfeasiblePlanError:
                out.append((sel, "fallback-to-exact", None))
        return out

    rows = once(benchmark, compute)
    write_report(
        "e02_planner_refusal",
        table(["selectivity", "decision", "rate"], rows),
    )
    assert rows[0][1] == "approximate"
    assert rows[-1][1] == "fallback-to-exact"
