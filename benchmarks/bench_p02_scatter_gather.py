"""P2 — scatter-gather fan-out: N-shard serving vs the single-table path.

The robustness layer must not tax the happy path: fanning an aggregate
out to shard workers and merging partials has to cost no more than
running the same query through the single-table engine. Each shard
worker skips the per-query plan machinery (the query is bound once, the
shard scan is a straight columnar pass), so even on one core the fan-out
amortizes; with real cores the shards run in parallel on top.

We time SUM+COUNT with a selective predicate over 2M rows, single-table
engine vs scatter-gather at 1/2/4/8 shards, best-of-3 per point, and at
each shard count take the better of sequential and pooled workers (a
deployment picks its pool width; on a 1-core container sequential IS the
right width). The claim pinned: >= 4 shards is no slower than the
single-table path, within a noise allowance.
"""

import os
import time

import numpy as np
import pytest

from common import once, record_metric, table, write_report
from repro import Database
from repro.sharding import ScatterGatherExecutor, ShardedTable

N_ROWS = 2_000_000
SHARD_COUNTS = (1, 2, 4, 8)
QUERY = "SELECT SUM(v) AS s, COUNT(*) AS c FROM events WHERE v > 5"
#: allowed slowdown of >=4-shard scatter-gather vs single-table (noise
#: allowance on shared/1-core runners; the recorded ratio is the claim)
MAX_RATIO = 1.25
REPEATS = 3


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(3)
    db = Database()
    db.create_table(
        "events",
        {
            "v": rng.exponential(10.0, N_ROWS),
            "k": rng.integers(0, 1000, N_ROWS),
        },
    )
    return db


def _best(fn, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_p02_scatter_gather(benchmark, world):
    db = world
    base = db.table("events")
    exact = db.sql(QUERY).table["s"][0]

    def compute():
        single = _best(lambda: db.sql(QUERY))
        rows = []
        ratios = {}
        for shards in SHARD_COUNTS:
            sharded = ShardedTable.from_table(base, shards)
            widths = (1,) if shards == 1 else (1, os.cpu_count() or 1)
            timings = {}
            for width in widths:
                ex = ScatterGatherExecutor(sharded, max_workers=width)
                result = ex.sql(QUERY)
                assert abs(result.table["s"][0] - exact) < 1e-4
                timings[width] = _best(lambda: ex.sql(QUERY))
            best_width = min(timings, key=timings.get)
            elapsed = timings[best_width]
            ratios[shards] = elapsed / single
            rows.append(
                (
                    shards,
                    best_width,
                    f"{elapsed * 1e3:.1f}",
                    f"{ratios[shards]:.2f}x",
                )
            )
            record_metric(
                "bench_p02_scatter_gather",
                f"shards_{shards}",
                {
                    "seconds": elapsed,
                    "ratio_vs_single": ratios[shards],
                    "workers": best_width,
                },
            )
        record_metric(
            "bench_p02_scatter_gather", "single_table_seconds", single
        )
        return single, rows, ratios

    single, rows, ratios = once(benchmark, compute)
    write_report(
        "P02_scatter_gather",
        [
            f"scatter-gather vs single-table, {N_ROWS:,} rows, "
            f"single-table {single * 1e3:.1f} ms (best of {REPEATS})",
            "",
            *table(["shards", "workers", "ms", "vs single"], rows),
        ],
    )
    for shards in SHARD_COUNTS:
        if shards >= 4:
            assert ratios[shards] <= MAX_RATIO, (
                f"{shards}-shard scatter-gather is {ratios[shards]:.2f}x "
                f"the single-table path (allowed {MAX_RATIO:g}x)"
            )
