"""E7 — precomputed samples vs. workload drift.

Claim: offline sample selection is excellent on the workload it was built
for, and its coverage/answerability decays as the live workload drifts —
the fundamental generality limit of offline AQP. We build a BlinkDB-style
catalog for workload A, then evaluate coverage and served-query share as
the live workload drifts toward B.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import ApproximateResult, Database
from repro.offline import BlinkDBSelector, SynopsisCatalog, workload_coverage
from repro.workloads import WorkloadGenerator, WorkloadSpec, drift

DRIFTS = [0.0, 0.25, 0.5, 0.75, 1.0]


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(18)
    n = 300_000
    db = Database()
    db.create_table(
        "logs",
        {
            "value": rng.exponential(25.0, n),
            "country": rng.integers(0, 25, n),
            "device": rng.integers(0, 6, n),
            "app_version": rng.integers(0, 12, n),
            "hour": rng.integers(0, 24, n),
        },
        block_size=1024,
    )
    spec = WorkloadSpec(
        table="logs",
        column_weights={
            "country": 10.0,
            "device": 5.0,
            "app_version": 0.4,
            "hour": 0.1,
        },
        measure="value",
        selector=None,
    )
    catalog = SynopsisCatalog(db)
    selector = BlinkDBSelector(db, budget_rows=80_000, rows_per_stratum=1500, seed=18)
    selector.build_for_workload(
        WorkloadGenerator(spec, seed=1).sample_templates(100)
    )
    return db, catalog, spec


def test_e07_coverage_decay(benchmark, setup):
    db, catalog, spec = setup

    def compute():
        rows = []
        for amount in DRIFTS:
            live = WorkloadGenerator(drift(spec, amount), seed=2).sample_templates(200)
            rows.append((amount, workload_coverage(catalog, live)))
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e07_coverage_decay",
        table(["drift", "catalog coverage"], [(d, f"{c:.1%}") for d, c in rows]),
    )
    # Shape: near-full coverage at zero drift, collapsing under full drift.
    assert rows[0][1] > 0.9
    assert rows[-1][1] < 0.5
    assert all(rows[i][1] >= rows[i + 1][1] - 0.05 for i in range(len(rows) - 1))


def test_e07_served_share_end_to_end(benchmark, setup):
    db, catalog, spec = setup

    def compute():
        rows = []
        for amount in DRIFTS:
            gen = WorkloadGenerator(drift(spec, amount), seed=3)
            served = 0
            queries = gen.sample_sql(20)
            for sql in queries:
                res = db.sql(sql + " ERROR WITHIN 20% CONFIDENCE 90%", seed=4)
                if (
                    isinstance(res, ApproximateResult)
                    and res.technique == "offline_sample"
                ):
                    served += 1
            rows.append((amount, served / len(queries)))
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e07_served_share",
        table(
            ["drift", "queries served from precomputed samples"],
            [(d, f"{s:.0%}") for d, s in rows],
        ),
    )
    assert rows[0][1] > rows[-1][1]
