"""E14 — the No-Silver-Bullet matrix, measured.

The capstone: run a suite of query classes through every applicable
technique and score each technique on the paper's three axes with
*measured* values —

* generality: share of the query suite it answered within spec,
* guarantee:  whether its errors were bounded before execution
              (pilot/offline refuse rather than miss; quickr answers but
              may miss; exact is trivially bounded),
* speedup:    median cost-model speedup on the queries it answered.

Assertion: no technique maximizes all three — the thesis, measured.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro import ApproximateResult, Database, ErrorSpec
from repro.core.exceptions import InfeasiblePlanError, UnsupportedQueryError
from repro.offline import BlinkDBSelector, QueryTemplate, SynopsisCatalog
from repro.online import PilotPlanner, QuickrPlanner
from repro.offline.rewriter import OfflineRewriter
from repro.sql import bind_sql

SPEC = ErrorSpec(0.10, 0.95)


@pytest.fixture(scope="module")
def suite():
    rng = np.random.default_rng(31)
    n = 300_000
    db = Database()
    db.create_table(
        "facts",
        {
            "amount": rng.exponential(40.0, n),
            "heavy": rng.lognormal(3.0, 2.2, n),
            "cat": rng.integers(0, 8, n),
            "many": rng.integers(0, 2000, n),
            "sel": rng.random(n),
        },
        block_size=1024,
    )
    db.create_table("dim", {"k": np.arange(8), "zone": np.arange(8) % 3})
    catalog = SynopsisCatalog(db)
    BlinkDBSelector(db, budget_rows=80_000, rows_per_stratum=4000, seed=31).build_for_workload(
        [QueryTemplate("facts", ("cat",), 1.0)]
    )
    queries = {
        "scalar_sum": "SELECT SUM(amount) AS a FROM facts",
        "scalar_avg": "SELECT AVG(amount) AS a FROM facts",
        "grouped": "SELECT cat, SUM(amount) AS a FROM facts GROUP BY cat",
        "filtered": "SELECT SUM(amount) AS a FROM facts WHERE sel < 0.2",
        "selective": "SELECT SUM(amount) AS a FROM facts WHERE sel < 0.0001",
        "heavy_tail": "SELECT SUM(heavy) AS a FROM facts",
        "join": (
            "SELECT d.zone AS z, SUM(f.amount) AS a FROM facts f "
            "JOIN dim d ON f.cat = d.k GROUP BY d.zone"
        ),
        "many_groups": "SELECT many, COUNT(*) AS c FROM facts GROUP BY many",
        "max": "SELECT MAX(amount) AS a FROM facts",
        "distinct": "SELECT COUNT(DISTINCT many) AS d FROM facts",
    }
    return db, queries


def truth_table(db, sql):
    exact = db.sql(sql)
    return exact


def within_spec(db, sql, res):
    exact = db.sql(sql)
    approx_rows = res.to_pylist()
    exact_rows = exact.to_pylist()
    if len(approx_rows) != len(exact_rows):
        return False
    key_cols = [
        c for c in res.table.column_names if c not in res.ci_low
    ]
    exact_by_key = {
        tuple(r[k] for k in key_cols): r for r in exact_rows
    }
    for row in approx_rows:
        key = tuple(row[k] for k in key_cols)
        truth = exact_by_key.get(key)
        if truth is None:
            return False
        for col in res.ci_low:
            t = truth[col]
            if t == 0:
                continue
            if abs(row[col] - t) / abs(t) > SPEC.relative_error:
                return False
    return True


def run_technique(db, sql, technique, seed=7):
    bound = bind_sql(sql, db)
    if technique == "pilot":
        return PilotPlanner(db, seed=seed).run(bound, SPEC)
    if technique == "quickr":
        return QuickrPlanner(db, seed=seed).run(bound, SPEC)
    if technique == "offline":
        return OfflineRewriter(db).run(bound, SPEC)
    raise ValueError(technique)


def test_e14_measured_matrix(benchmark, suite):
    db, queries = suite

    def compute():
        rows = []
        for technique in ("pilot", "quickr", "offline"):
            answered = 0
            correct = 0
            speedups = []
            refused = 0
            for name, sql in queries.items():
                try:
                    res = run_technique(db, sql, technique)
                except (InfeasiblePlanError, UnsupportedQueryError):
                    refused += 1
                    continue
                answered += 1
                if within_spec(db, sql, res):
                    correct += 1
                speedups.append(res.speedup)
            total = len(queries)
            rows.append(
                (
                    technique,
                    answered / total,
                    (correct / answered) if answered else 0.0,
                    float(np.median(speedups)) if speedups else 0.0,
                    refused,
                )
            )
        rows.append(("exact", 1.0, 1.0, 1.0, 0))
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e14_matrix",
        table(
            ["technique", "generality (answered)", "within-spec share",
             "median speedup", "refusals"],
            [
                (t, f"{g:.0%}", f"{c:.0%}", f"{s:.2f}x", r)
                for t, g, c, s, r in rows
            ],
        ),
    )
    by = {r[0]: r for r in rows}
    # The thesis, measured: for every technique at least one axis is weak.
    for name, gen, correct, speedup, _ in rows:
        wins_generality = gen >= 0.99
        wins_guarantee = correct >= 0.99
        wins_speedup = speedup >= 2.0
        assert not (wins_generality and wins_guarantee and wins_speedup), name
    # And each axis has a winner somewhere (the frontier is non-trivial):
    assert by["exact"][1] == 1.0  # exact wins generality
    assert max(by["pilot"][3], by["offline"][3]) > 2.0  # someone wins speedup
    assert by["pilot"][2] >= by["quickr"][2]  # guarantees beat best-effort


def test_e14_refusals_are_the_guarantee(benchmark, suite):
    """Pilot/offline achieve their within-spec share *because* they refuse
    the queries they cannot bound; quickr answers everything linear and
    eats the misses."""
    db, queries = suite

    def compute():
        out = {}
        for technique in ("pilot", "quickr"):
            decisions = []
            for name, sql in queries.items():
                try:
                    res = run_technique(db, sql, technique, seed=8)
                    decisions.append((name, "answered"))
                except (InfeasiblePlanError, UnsupportedQueryError):
                    decisions.append((name, "refused"))
            out[technique] = decisions
        return out

    decisions = once(benchmark, compute)
    rows = [
        (name, dict(decisions["pilot"])[name], dict(decisions["quickr"])[name])
        for name, _ in decisions["pilot"]
    ]
    write_report(
        "e14_decisions",
        table(["query", "pilot", "quickr"], rows),
    )
    pilot_refusals = sum(1 for _, d in decisions["pilot"] if d == "refused")
    quickr_refusals = sum(1 for _, d in decisions["quickr"] if d == "refused")
    assert pilot_refusals >= quickr_refusals
    # Both must refuse the non-linear aggregates.
    assert dict(decisions["pilot"])["max"] == "refused"
    assert dict(decisions["quickr"])["distinct"] == "refused"
