"""E12 — histograms and wavelets: tiny space, narrow query class.

Claims: (a) for 1-D range aggregates, bucket synopses answer from a few
hundred numbers with single-digit-percent error where any sampling scheme
needs thousands of rows; (b) the bucketing rule matters on skew
(V-optimal ≤ MaxDiff ≤ equi-depth ≤ equi-width in range-count error);
(c) wavelets match histograms at equal space on smooth data; (d) the
moment the query leaves the synopsis's class (a predicate on another
column), the histogram is useless — the generality cliff.
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro.histograms import equi_depth, equi_width, maxdiff, v_optimal
from repro.sampling.row import srs_sample
from repro import Table
from repro.wavelets import build_wavelet_synopsis

NUM_ROWS = 200_000
BUCKETS = 64
RANGES = 60


@pytest.fixture(scope="module")
def skewed():
    rng = np.random.default_rng(25)
    return np.concatenate(
        [
            rng.normal(20, 2, int(NUM_ROWS * 0.6)),
            rng.lognormal(4.0, 0.7, int(NUM_ROWS * 0.4)),
        ]
    )


def range_queries(data, rng):
    lo_domain, hi_domain = float(data.min()), float(np.quantile(data, 0.99))
    for _ in range(RANGES):
        lo = rng.uniform(lo_domain, hi_domain)
        hi = lo + rng.uniform(0.02, 0.3) * (hi_domain - lo_domain)
        yield lo, hi


def test_e12_builder_comparison(benchmark, skewed):
    def compute():
        rng = np.random.default_rng(26)
        queries = list(range_queries(skewed, rng))
        truths = [float(np.sum((skewed >= lo) & (skewed <= hi))) for lo, hi in queries]
        synopses = {
            "equi_width": equi_width(skewed, BUCKETS),
            "equi_depth": equi_depth(skewed, BUCKETS),
            "maxdiff": maxdiff(skewed, BUCKETS),
            "v_optimal": v_optimal(skewed, BUCKETS),
        }
        wavelet = build_wavelet_synopsis(
            skewed, num_cells=1024, keep_coefficients=BUCKETS
        )
        rows = []
        for name, h in synopses.items():
            errs = [
                abs(h.range_count(lo, hi) - t) / max(t, 1.0)
                for (lo, hi), t in zip(queries, truths)
            ]
            rows.append((name, h.memory_entries(), float(np.mean(errs))))
        werrs = [
            abs(wavelet.range_sum(lo, hi) - t) / max(t, 1.0)
            for (lo, hi), t in zip(queries, truths)
        ]
        rows.append(("haar_wavelet", wavelet.memory_entries(), float(np.mean(werrs))))
        # Sampling baseline at 'equal memory' (~BUCKETS rows!) and at 2k rows.
        for size in (BUCKETS, 2000):
            errs = []
            for trial in range(10):
                s = srs_sample(
                    Table({"v": skewed}), size, np.random.default_rng(trial)
                )
                w = len(skewed) / size
                for (lo, hi), t in zip(queries[:20], truths[:20]):
                    est = float(
                        np.sum((s.table["v"] >= lo) & (s.table["v"] <= hi))
                    ) * w
                    errs.append(abs(est - t) / max(t, 1.0))
            rows.append((f"sample_{size}_rows", size, float(np.mean(errs))))
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e12_range_count",
        table(
            ["synopsis", "entries", "mean relerr on range counts"],
            [(n, m, f"{e:.3%}") for n, m, e in rows],
        ),
    )
    by = {r[0]: r[2] for r in rows}
    # Shape: smarter bucketing strictly helps on skew...
    assert by["v_optimal"] < by["equi_width"]
    assert by["equi_depth"] < by["equi_width"]
    # ...and any decent histogram crushes a same-memory sample.
    assert by["v_optimal"] < by[f"sample_{BUCKETS}_rows"] / 5
    # A 2000-row sample (30x the memory) is needed to get competitive.
    assert by[f"sample_2000_rows"] < 5 * by["equi_depth"]


def test_e12_generality_cliff(benchmark, skewed):
    """A histogram on column v cannot answer a query filtered on another
    column — it does not even have the information; a sample can."""
    rng = np.random.default_rng(27)
    other = rng.integers(0, 4, len(skewed))
    data = Table({"v": skewed, "grp": other})

    def compute():
        truth = float(np.sum(skewed[(other == 2) & (skewed < 50)]))
        # Sample handles the conjunctive predicate fine:
        s = srs_sample(data, 5000, np.random.default_rng(28))
        mask = (s.table["grp"] == 2) & (s.table["v"] < 50)
        sample_est = float(np.sum(s.table["v"][mask])) * (len(skewed) / 5000)
        # Best the histogram can do: assume independence and scale by 1/4.
        h = equi_depth(skewed, BUCKETS)
        hist_est = h.range_sum(None, 50) * 0.25
        return truth, sample_est, hist_est

    truth, sample_est, hist_est = once(benchmark, compute)
    write_report(
        "e12_generality",
        table(
            ["estimator", "SUM(v) WHERE grp=2 AND v<50", "relerr"],
            [
                ("truth", f"{truth:.0f}", "-"),
                ("5000-row sample", f"{sample_est:.0f}",
                 f"{abs(sample_est - truth) / truth:.2%}"),
                ("histogram + independence guess", f"{hist_est:.0f}",
                 f"{abs(hist_est - truth) / truth:.2%}"),
            ],
        ),
    )
    assert abs(sample_est - truth) / truth < 0.1
    # The histogram answer is a guess; we don't assert it is wrong (the
    # independence assumption may luck out), only that the sample is
    # reliable — the asymmetry in *guarantees* is the point.
