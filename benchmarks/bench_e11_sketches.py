"""E11 — sketches trade memory for accuracy exactly as their bounds say.

Claims: per-sketch accuracy follows the published bound as memory grows —
Count-Min's additive εN error halves as width doubles, Count-Sketch's L2
error beats CM on heavy-hitter-free mass, GK's rank error tracks ε, and
mergeability is lossless (distributed ingestion gives the same state).
"""

import numpy as np
import pytest

from common import once, table, write_report
from repro.sketches import CountMinSketch, CountSketch, GKQuantileSketch

STREAM = 400_000


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(24)
    vals = rng.zipf(1.3, STREAM)
    return vals[vals < 100_000]


def test_e11_countmin_memory_curve(benchmark, stream):
    truth = np.bincount(stream)
    probes = np.flatnonzero(truth)[:500]

    def compute():
        rows = []
        for width in (512, 2048, 8192, 32768):
            cm = CountMinSketch.with_shape(depth=5, width=width, seed=1)
            cm.add(stream)
            over = cm.query(probes) - truth[probes]
            rows.append(
                (
                    cm.memory_bytes(),
                    float(np.mean(over)),
                    float(np.max(over)),
                    cm.error_bound,
                )
            )
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e11_countmin",
        table(
            ["bytes", "mean overestimate", "max overestimate", "εN bound"],
            [(b, f"{m:.1f}", f"{mx:.0f}", f"{bd:.0f}") for b, m, mx, bd in rows],
        ),
    )
    # Shape: error shrinks as memory grows; every max stays within a few
    # multiples of the bound-at-that-width (bound holds w.h.p. per row).
    assert rows[-1][1] < rows[0][1] / 4
    for _, _, mx, bound in rows:
        assert mx <= 3 * bound


def test_e11_countsketch_vs_countmin_bias(benchmark, stream):
    truth = np.bincount(stream)
    light = np.flatnonzero((truth > 0) & (truth < 10))[:300]

    def compute():
        cm = CountMinSketch.with_shape(depth=5, width=4096, seed=2)
        cs = CountSketch(depth=5, width=4096, seed=2)
        cm.add(stream)
        cs.add(stream)
        cm_err = cm.query(light) - truth[light]
        cs_err = cs.query(light) - truth[light]
        return (
            float(np.mean(cm_err)),
            float(np.mean(cs_err)),
            float(np.mean(np.abs(cs_err))),
        )

    cm_bias, cs_bias, cs_abs = once(benchmark, compute)
    write_report(
        "e11_bias",
        table(
            ["sketch", "mean signed error on light items"],
            [("count-min (one-sided)", f"{cm_bias:.2f}"),
             ("count-sketch (unbiased)", f"{cs_bias:.2f}")],
        ),
    )
    # Shape: CM is systematically positive on light items; CS is centered.
    assert cm_bias > 0
    assert abs(cs_bias) < cm_bias / 2


def test_e11_gk_epsilon_curve(benchmark, rng):
    data = rng.lognormal(0, 1, 50_000)
    sorted_data = np.sort(data)

    def compute():
        rows = []
        for eps in (0.05, 0.02, 0.01, 0.005):
            g = GKQuantileSketch(epsilon=eps)
            g.add(data)
            worst = 0.0
            for phi in np.linspace(0.05, 0.95, 19):
                est = g.query(phi)
                rank = np.searchsorted(sorted_data, est) / len(data)
                worst = max(worst, abs(rank - phi))
            rows.append((eps, g.memory_entries(), worst))
        return rows

    rows = once(benchmark, compute)
    write_report(
        "e11_gk",
        table(
            ["epsilon", "entries stored", "worst rank error"],
            [(e, n, f"{w:.4f}") for e, n, w in rows],
        ),
    )
    for eps, _, worst in rows:
        assert worst <= 2 * eps + 1e-9
    assert rows[-1][1] > rows[0][1]  # tighter ε costs more entries


def test_e11_merge_losslessness(benchmark, stream):
    def compute():
        half = len(stream) // 2
        whole = CountMinSketch.with_shape(5, 2048, seed=3)
        whole.add(stream)
        a = CountMinSketch.with_shape(5, 2048, seed=3)
        b = CountMinSketch.with_shape(5, 2048, seed=3)
        a.add(stream[:half])
        b.add(stream[half:])
        merged = a.merge(b)
        return bool(np.array_equal(merged.counters, whole.counters))

    identical = once(benchmark, compute)
    write_report(
        "e11_merge",
        ["distributed (merge of halves) == centralized ingest: %s" % identical],
    )
    assert identical
